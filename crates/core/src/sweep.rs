//! Parallel frequency-sweep engine: one spec, one cache, every grid.
//!
//! Every frequency-grid computation in the workspace — Bode responses,
//! margin scans, noise folding, spur tables, dense closed-loop solves —
//! is a map of an expensive pure function over an ordered set of
//! frequencies. This module provides the shared vocabulary for those
//! maps:
//!
//! * [`SweepSpec`] — *what* to evaluate: the [`FrequencyGrid`], the
//!   harmonic-truncation policy ([`TruncationSpec`], fixed or
//!   tail-tolerance-driven) and the thread budget
//!   ([`ThreadBudget`](htmpll_par::ThreadBudget)).
//! * [`SweepCache`] — *what to reuse*: λ(s) values and dense closed-loop
//!   factorizations memoized by the bit patterns of `s` (and the
//!   truncation order), so repeated evaluations at the same Laplace
//!   point — across overlapping grids, spur lines on reference
//!   harmonics, or refinement passes — skip the HTM assembly and LU
//!   refactorization entirely.
//! * Grid entry points on the model types:
//!   [`EffectiveGain::eval_grid`], [`PllModel::h00_grid`],
//!   [`PllModel::closed_loop_htm_grid`],
//!   [`PllModel::closed_loop_htm_grid_robust`] (per-point
//!   [`PointQuality`] verdicts instead of first-failure aborts),
//!   [`NoiseModel::output_psd_grid`], [`LeakageSpurs::scan`] and the
//!   generic [`bode_grid`].
//!
//! All of them run on the `htmpll-par` deterministic pool: results are
//! **bitwise-identical for any thread count**, because each grid point
//! is evaluated by a pure function and placed by index.
//!
//! ```
//! use htmpll_core::{PllDesign, PllModel, SweepSpec};
//!
//! let m = PllModel::builder(PllDesign::reference_design(0.1).unwrap())
//!     .build()
//!     .unwrap();
//! let spec = SweepSpec::log(1e-2, 2.0, 64).unwrap();
//! let h = m.h00_grid(&spec);
//! assert_eq!(h.len(), 64);
//! assert!(h[0].abs() > 0.9); // in-band: the loop tracks the reference
//! ```

use crate::closed_loop::PllModel;
use crate::error::CoreError;
use crate::lambda::EffectiveGain;
use crate::noise::NoiseModel;
use crate::quality::{GridOutcome, PointOutcome, PointQuality};
use crate::spurs::LeakageSpurs;
use htmpll_htm::{ClosedLoopFactor, Htm, SolveScratch, Truncation, TruncationSpec};
use htmpll_lti::{bode_from_values, BodePoint, FrequencyGrid, GridError};
use htmpll_num::hash::Fnv1a;
use htmpll_num::{Complex, SolveReport};
use htmpll_par::{par_map, par_map_with_cancel, Deadline, ThreadBudget};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a cache mutex, recovering from poisoning: the protected maps
/// are memoization tables whose entries are written atomically (insert
/// of a fully computed value), so a panicked writer cannot leave them
/// torn — the worst case is a missing entry, i.e. a recomputation.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Hard ceiling on automatically chosen truncation orders for **matrix**
/// paths. The tail-tolerance heuristic
/// ([`EffectiveGain::suggest_truncation`]) can suggest orders in the
/// tens of thousands for scalar truncated sums; a dense HTM at that
/// order would be absurd (dimension `2K+1`), and in practice the matrix
/// paths converge far earlier because the closed form carries the exact
/// λ. Auto resolution clamps to this bound.
pub const MAX_AUTO_TRUNCATION: usize = 64;

/// Default per-map entry cap for [`SweepCache`] — generous (a dense
/// K=24 entry is ~38 KB, so the default bounds the dense map at around
/// a gigabyte) but finite, so long interactive sessions cannot grow
/// without limit. Override with the `HTMPLL_CACHE_CAP` environment
/// variable or [`SweepCache::with_capacity`].
pub const DEFAULT_CACHE_CAP: usize = 32_768;

/// Environment variable overriding the [`SweepCache`] entry cap.
pub const CACHE_CAP_ENV: &str = "HTMPLL_CACHE_CAP";

fn env_cache_cap() -> usize {
    match std::env::var(CACHE_CAP_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => DEFAULT_CACHE_CAP,
        },
        Err(_) => DEFAULT_CACHE_CAP,
    }
}

/// Which closed-loop kernels a sweep runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KernelPolicy {
    /// Dispatch on the open loop's structured representation: rank-one
    /// and diagonal closed forms, banded factorization, dense ladder
    /// only as fallback. The fast default.
    #[default]
    Structured,
    /// Force the dense escalating ladder — the strict reference
    /// kernels, used by cross-checks and benchmarks.
    Dense,
}

impl KernelPolicy {
    /// Stable one-byte tag for cache keys.
    fn as_byte(self) -> u8 {
        match self {
            KernelPolicy::Structured => 0,
            KernelPolicy::Dense => 1,
        }
    }

    /// Human-readable name (`structured` / `dense`).
    pub fn name(self) -> &'static str {
        match self {
            KernelPolicy::Structured => "structured",
            KernelPolicy::Dense => "dense",
        }
    }
}

/// Per-worker scratch for sweep loops: reusable solve buffers threaded
/// through [`par_map_with`](htmpll_par::par_map_with) so the grid loop
/// avoids per-point staging allocations.
#[derive(Debug, Default)]
pub struct SweepWorkspace {
    scratch: SolveScratch,
}

impl SweepWorkspace {
    /// A fresh workspace; buffers grow on first use.
    pub fn new() -> SweepWorkspace {
        SweepWorkspace::default()
    }
}

/// A frequency sweep specification: grid + truncation policy + thread
/// budget. One `SweepSpec` drives every grid entry point in the crate,
/// replacing per-call-site `(start, stop, n, k, threads)` tuples.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Frequencies to evaluate, in sweep order.
    pub grid: FrequencyGrid,
    /// Harmonic truncation policy for HTM-valued sweeps; ignored by
    /// scalar closed-form sweeps. Defaults to `Auto { tol: 1e-3 }`.
    pub trunc: TruncationSpec,
    /// Worker-thread budget; defaults to `Auto` (the `HTMPLL_THREADS`
    /// environment variable, then the machine's parallelism).
    pub threads: ThreadBudget,
    /// Which closed-loop kernels dense sweeps use; defaults to
    /// [`KernelPolicy::Structured`].
    pub kernel: KernelPolicy,
    /// Cooperative budget for robust grid sweeps: once it expires, the
    /// remaining points are skipped with a
    /// [`DEADLINE_REASON`](crate::quality::DEADLINE_REASON)-prefixed
    /// `Failed` verdict instead of wedging a worker. Defaults to
    /// [`Deadline::none`] (no budget, zero overhead).
    pub deadline: Deadline,
}

impl SweepSpec {
    /// Wraps an existing grid with default truncation and thread policy.
    pub fn new(grid: impl Into<FrequencyGrid>) -> SweepSpec {
        SweepSpec {
            grid: grid.into(),
            trunc: TruncationSpec::default(),
            threads: ThreadBudget::Auto,
            kernel: KernelPolicy::default(),
            deadline: Deadline::none(),
        }
    }

    /// Log-spaced sweep over `[start, stop]` with `n` points.
    ///
    /// # Errors
    ///
    /// Propagates [`GridError`] for bad endpoints or point counts.
    pub fn log(start: f64, stop: f64, n: usize) -> Result<SweepSpec, GridError> {
        Ok(SweepSpec::new(FrequencyGrid::log(start, stop, n)?))
    }

    /// Linearly spaced sweep over `[start, stop]` with `n` points.
    ///
    /// # Errors
    ///
    /// Propagates [`GridError`] for bad endpoints or point counts.
    pub fn linear(start: f64, stop: f64, n: usize) -> Result<SweepSpec, GridError> {
        Ok(SweepSpec::new(FrequencyGrid::linear(start, stop, n)?))
    }

    /// Sets the truncation policy (a fixed [`Truncation`] coerces).
    #[must_use]
    pub fn with_truncation(mut self, trunc: impl Into<TruncationSpec>) -> SweepSpec {
        self.trunc = trunc.into();
        self
    }

    /// Requests automatic truncation with harmonic-sum tail below `tol`.
    #[must_use]
    pub fn with_tol(mut self, tol: f64) -> SweepSpec {
        self.trunc = Truncation::auto(tol);
        self
    }

    /// Sets the thread budget (`usize` and `Option<usize>` coerce;
    /// `0`/`None` mean auto).
    #[must_use]
    pub fn with_threads(mut self, threads: impl Into<ThreadBudget>) -> SweepSpec {
        self.threads = threads.into();
        self
    }

    /// Sets the closed-loop kernel policy.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelPolicy) -> SweepSpec {
        self.kernel = kernel;
        self
    }

    /// Sets the cooperative deadline (clones share the caller's budget,
    /// so one request-level deadline can bound several sweeps).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> SweepSpec {
        self.deadline = deadline;
        self
    }
}

/// One dense closed-loop solve, kept whole so later callers can both
/// read the closed-loop HTM and re-solve against new right-hand sides.
/// Solved through the structure-dispatching factor path (closed forms
/// for rank-one/diagonal loops, banded LU, then the escalating dense
/// ladder), so the solve carries its own verdict: check
/// [`DenseSolve::quality`] before trusting fine structure near a
/// closed-loop pole.
#[derive(Debug)]
pub struct DenseSolve {
    /// Factorization of `I + G̃(s)` (of the Tikhonov-perturbed matrix
    /// when `quality` is [`PointQuality::Perturbed`]) — a structured
    /// closed form when the loop admits one, otherwise a robust LU.
    pub lu: ClosedLoopFactor,
    /// The closed-loop HTM `(I + G̃)⁻¹G̃`.
    pub htm: Htm,
    /// Solver evidence: stages tried, residual, condition estimate.
    pub report: SolveReport,
    /// The graded verdict derived from `report`.
    pub quality: PointQuality,
}

/// λ cache key: `(model fingerprint, s.re bits, s.im bits)`. The
/// fingerprint makes one cache safe to share across different models —
/// a prerequisite for cross-request reuse in `plltool serve`.
type PointKey = (u64, u64, u64);
/// Dense-solve key: λ key plus truncation order and kernel-policy byte.
type DenseKey = (u64, u64, u64, usize, u8);

fn point_key(fingerprint: u64, s: Complex) -> PointKey {
    (fingerprint, s.re.to_bits(), s.im.to_bits())
}

/// A bounded map with least-recently-used eviction. Recency is a
/// monotone tick stamped on every touch; when an insert would exceed
/// the cap, the oldest ~12% of entries (at least one) are dropped so
/// the sort cost amortizes across many inserts. Eviction only affects
/// *which* points are recomputed, never their values — recomputation
/// is pure and bit-reproducible — so bounded caches preserve the
/// sweep determinism guarantees.
#[derive(Debug)]
struct Lru<K, V> {
    map: HashMap<K, (V, u64)>,
    tick: u64,
    cap: usize,
    evicted: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V> Lru<K, V> {
    fn new(cap: usize) -> Lru<K, V> {
        Lru {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
            evicted: 0,
        }
    }

    fn get(&mut self, k: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(k).map(|entry| {
            entry.1 = tick;
            &entry.0
        })
    }

    fn insert(&mut self, k: K, v: V) {
        // Fault site `cache.evict`: an eviction storm drops the whole
        // shard. Harmless by construction — eviction only changes which
        // points recompute, and recomputation is bit-reproducible — so
        // chaos runs use it to stress the recompute path.
        if htmpll_fault::fires("cache.evict", self.tick) && !self.map.is_empty() {
            let n = self.map.len() as u64;
            self.map.clear();
            self.evicted += n;
            htmpll_obs::counter!("core", "sweep.cache_evictions").add(n);
        }
        if self.map.len() >= self.cap && !self.map.contains_key(&k) {
            let drop_n = (self.cap / 8).max(1);
            let mut stamps: Vec<(u64, K)> = self
                .map
                .iter()
                .map(|(key, (_, tick))| (*tick, key.clone()))
                .collect();
            stamps.sort_unstable_by_key(|(tick, _)| *tick);
            for (_, key) in stamps.into_iter().take(drop_n) {
                self.map.remove(&key);
                self.evicted += 1;
            }
            htmpll_obs::counter!("core", "sweep.cache_evictions").add(drop_n as u64);
            htmpll_obs::instant("core", || {
                format!("cache{{evict,n={drop_n},cap={}}}", self.cap)
            });
        }
        self.tick += 1;
        self.map.insert(k, (v, self.tick));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A point-in-time view of [`SweepCache`] occupancy and traffic,
/// readable without the obs layer (the counters are plain atomics on
/// the cache itself), so a long-running service can report hit rates
/// even when metric collection is filtered off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// λ and dense lookups answered from memory.
    pub hits: u64,
    /// λ and dense lookups that had to compute.
    pub misses: u64,
    /// Entries evicted (λ and dense combined) since construction.
    pub evictions: u64,
    /// Memoized λ points currently held.
    pub lambda_entries: usize,
    /// Memoized dense solves currently held (including failures).
    pub dense_entries: usize,
    /// Number of independently locked shards.
    pub shards: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (`0` when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One independently locked slice of the cache; keys are distributed
/// across shards by hash so concurrent workers (and concurrent service
/// requests) rarely contend on the same mutex.
#[derive(Debug)]
struct Shard {
    lambda: Mutex<Lru<PointKey, Complex>>,
    dense: Mutex<Lru<DenseKey, Result<Arc<DenseSolve>, String>>>,
}

/// Upper bound on shard count; keys spread by hash, so a handful of
/// locks is enough to decongest any realistic worker count.
const MAX_SHARDS: usize = 16;

/// Memoization shared across sweeps — and, since the keys carry the
/// model fingerprint ([`PllModel::fingerprint`]), safely shared across
/// **different models**: λ(s) values and dense closed-loop
/// factorizations, keyed by the **bit patterns** of the Laplace point
/// (and the truncation order for matrix entries). Bitwise keys make the
/// cache exact — no tolerance tuning — and deterministic: a hit returns
/// the identical value the first evaluation produced.
///
/// The cache is internally synchronized and sharded: keys hash to one
/// of several independently locked maps, so pool workers and concurrent
/// service requests contend only when they touch the same shard. Values
/// are computed outside the lock, so a race costs at most one duplicate
/// evaluation of the same point (both producing the same bits).
///
/// Memory is bounded: the shards together hold at most `cap` entries
/// per map kind (the `HTMPLL_CACHE_CAP` environment variable,
/// defaulting to [`DEFAULT_CACHE_CAP`]) with per-shard LRU eviction,
/// counted by the `sweep.cache_evictions` observability counter and
/// [`SweepCache::evictions`]. Traffic totals are kept in plain atomics
/// and surfaced by [`SweepCache::stats`].
#[derive(Debug)]
pub struct SweepCache {
    shards: Box<[Shard]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SweepCache {
    fn default() -> SweepCache {
        SweepCache::new()
    }
}

impl SweepCache {
    /// An empty cache capped at `HTMPLL_CACHE_CAP` entries per map
    /// ([`DEFAULT_CACHE_CAP`] when unset or unparsable).
    pub fn new() -> SweepCache {
        SweepCache::with_capacity(env_cache_cap())
    }

    /// An empty cache holding at most `cap` entries per map kind
    /// (clamped to at least 1), spread over `min(16, cap)` shards
    /// (rounded down to a power of two) so the aggregate never exceeds
    /// `cap`.
    pub fn with_capacity(cap: usize) -> SweepCache {
        let cap = cap.max(1);
        let mut shards = 1usize;
        while shards * 2 <= cap.min(MAX_SHARDS) {
            shards *= 2;
        }
        let per_shard = (cap / shards).max(1);
        let shards = (0..shards)
            .map(|_| Shard {
                lambda: Mutex::new(Lru::new(per_shard)),
                dense: Mutex::new(Lru::new(per_shard)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SweepCache {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, fingerprint: u64, s: Complex, trunc: usize, kernel: u8) -> &Shard {
        let mut h = Fnv1a::new();
        h.write_u64(fingerprint);
        h.write_u64(s.re.to_bits());
        h.write_u64(s.im.to_bits());
        h.write_u64(trunc as u64);
        h.write_u64(kernel as u64);
        // Shard count is a power of two; fold the high bits in so the
        // mask never sees only FNV's low-entropy tail.
        let hash = h.finish();
        let idx = ((hash >> 32) ^ hash) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// λ(s) through the cache.
    pub fn lambda(&self, lam: &EffectiveGain, s: Complex) -> Complex {
        let key = point_key(lam.fingerprint(), s);
        let shard = self.shard_for(key.0, s, 0, 0);
        if let Some(&v) = lock(&shard.lambda).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            htmpll_obs::counter!("core", "sweep.lambda_cache.hit").inc();
            htmpll_obs::instant_at("core", htmpll_obs::Level::Trace, || {
                "cache{lambda,hit}".to_string()
            });
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        htmpll_obs::counter!("core", "sweep.lambda_cache.miss").inc();
        htmpll_obs::instant_at("core", htmpll_obs::Level::Trace, || {
            "cache{lambda,miss}".to_string()
        });
        let v = lam.eval(s);
        lock(&shard.lambda).insert(key, v);
        v
    }

    /// Dense closed-loop solve at `(s, trunc)` through the cache and
    /// the escalating solver: HTM assembly + factorization happen at
    /// most once per key, **including failures** (a failed point is
    /// memoized by its reason and not retried).
    ///
    /// # Errors
    ///
    /// The failure reason when no usable value exists at this point —
    /// non-finite `s`, non-finite open-loop entries, or a non-finite
    /// solve result. A merely singular `I + G̃` does **not** error: the
    /// Tikhonov rung produces a value graded
    /// [`PointQuality::Perturbed`].
    pub fn dense_robust(
        &self,
        model: &PllModel,
        s: Complex,
        trunc: Truncation,
    ) -> Result<Arc<DenseSolve>, String> {
        self.dense_robust_with(
            model,
            s,
            trunc,
            KernelPolicy::default(),
            &mut SweepWorkspace::new(),
        )
    }

    /// [`SweepCache::dense_robust`] with an explicit kernel policy and
    /// a caller-owned workspace, so hot sweep loops reuse their solve
    /// buffers across points. Structured and dense kernels memoize
    /// under distinct keys: a cache warmed by one policy never answers
    /// for the other.
    ///
    /// # Errors
    ///
    /// As [`SweepCache::dense_robust`].
    pub fn dense_robust_with(
        &self,
        model: &PllModel,
        s: Complex,
        trunc: Truncation,
        kernel: KernelPolicy,
        ws: &mut SweepWorkspace,
    ) -> Result<Arc<DenseSolve>, String> {
        let (fp, re, im) = point_key(model.fingerprint(), s);
        let key = (fp, re, im, trunc.order(), kernel.as_byte());
        let shard = self.shard_for(fp, s, trunc.order(), kernel.as_byte());
        if let Some(v) = lock(&shard.dense).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            htmpll_obs::counter!("core", "sweep.dense_cache.hit").inc();
            htmpll_obs::instant_at("core", htmpll_obs::Level::Trace, || {
                format!("cache{{dense,hit,k={}}}", trunc.order())
            });
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        htmpll_obs::counter!("core", "sweep.dense_cache.miss").inc();
        htmpll_obs::instant_at("core", htmpll_obs::Level::Trace, || {
            format!("cache{{dense,miss,k={}}}", trunc.order())
        });
        let entry = compute_dense(model, s, trunc, kernel, ws);
        lock(&shard.dense).insert(key, entry.clone());
        entry
    }

    /// Strict variant of [`SweepCache::dense_robust`]: identical cache
    /// and solver behavior, failure mapped into [`CoreError`].
    ///
    /// # Errors
    ///
    /// [`CoreError::SweepFailed`] when the point has no usable value.
    pub fn dense(
        &self,
        model: &PllModel,
        s: Complex,
        trunc: Truncation,
    ) -> Result<Arc<DenseSolve>, CoreError> {
        self.dense_robust(model, s, trunc)
            .map_err(|reason| CoreError::SweepFailed { reason })
    }

    /// Number of memoized λ points.
    pub fn lambda_entries(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.lambda).len()).sum()
    }

    /// Number of memoized dense solves (including memoized failures).
    pub fn dense_entries(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.dense).len()).sum()
    }

    /// Total entries evicted from this cache (λ and dense combined)
    /// since construction.
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| lock(&s.lambda).evicted + lock(&s.dense).evicted)
            .sum()
    }

    /// Lookups answered from memory since construction (λ and dense).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute since construction (λ and dense).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshot of traffic and occupancy; see [`CacheStats`].
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            lambda_entries: self.lambda_entries(),
            dense_entries: self.dense_entries(),
            shards: self.shards.len(),
        }
    }
}

/// The uncached dense-point computation behind
/// [`SweepCache::dense_robust`], with the NaN/∞ boundary guards and the
/// `robust.*` verdict counters.
fn compute_dense(
    model: &PllModel,
    s: Complex,
    trunc: Truncation,
    kernel: KernelPolicy,
    ws: &mut SweepWorkspace,
) -> Result<Arc<DenseSolve>, String> {
    if !(s.re.is_finite() && s.im.is_finite()) {
        htmpll_obs::counter!("core", "robust.failed").inc();
        htmpll_obs::instant("core", || {
            format!("quality{{verdict=failed,s={s},k={}}}", trunc.order())
        });
        return Err(format!("non-finite Laplace point {s}"));
    }
    // Per-point solve latency: the span quantiles (p50/p99) are what
    // `plltool profile` attributes each phase with. Trace tier: on the
    // structured kernel a point costs ~3µs, so even one registry span
    // here would blow the <10% default-tracing overhead budget.
    let _point = htmpll_obs::span_at("core", "sweep_point", htmpll_obs::Level::Trace);
    let open = model.open_loop_htm(s, trunc);
    let open = match kernel {
        KernelPolicy::Structured => open,
        // Materialize the open loop so the solve goes through the
        // strict dense ladder regardless of available structure.
        KernelPolicy::Dense => open.densified(),
    };
    match open.closed_loop_factored_robust_with(&mut ws.scratch) {
        Ok((lu, htm, report)) => {
            if !htm.is_finite() {
                htmpll_obs::counter!("core", "robust.failed").inc();
                htmpll_obs::instant("core", || {
                    format!("quality{{verdict=failed,s={s},k={}}}", trunc.order())
                });
                return Err(format!("non-finite closed-loop HTM at s = {s}"));
            }
            let quality = PointQuality::from_report(&report);
            match quality {
                PointQuality::Exact => htmpll_obs::counter!("core", "robust.exact").inc(),
                PointQuality::Refined => htmpll_obs::counter!("core", "robust.refined").inc(),
                PointQuality::Perturbed => htmpll_obs::counter!("core", "robust.perturbed").inc(),
                PointQuality::Failed { .. } => htmpll_obs::counter!("core", "robust.failed").inc(),
            }
            if quality.is_degraded() {
                // Verdict transition away from Exact, with the point that
                // caused it — the timeline shows *where* a sweep degrades.
                htmpll_obs::instant("core", || {
                    format!(
                        "quality{{verdict={},s={s},k={}}}",
                        quality.name(),
                        trunc.order()
                    )
                });
            }
            if report.escalated() {
                htmpll_obs::counter!("core", "robust.escalated").inc();
            }
            Ok(Arc::new(DenseSolve {
                lu,
                htm,
                report,
                quality,
            }))
        }
        Err(e) => {
            htmpll_obs::counter!("core", "robust.failed").inc();
            htmpll_obs::instant("core", || {
                format!("quality{{verdict=failed,s={s},k={}}}", trunc.order())
            });
            Err(format!("closed-loop solve at s = {s}: {e}"))
        }
    }
}

/// Sweeps an arbitrary frequency response over `spec.grid` on the
/// parallel pool and assembles Bode points (magnitude + sequentially
/// unwrapped phase). Bitwise-identical to the sequential
/// [`bode_sweep`](htmpll_lti::bode_sweep) for any thread count.
pub fn bode_grid<F: Fn(f64) -> Complex + Sync>(f: F, spec: &SweepSpec) -> Vec<BodePoint> {
    let values = par_map(spec.threads, spec.grid.points(), |_, &w| f(w));
    bode_from_values(spec.grid.points(), &values)
}

/// Grid-point block size for the batched λ sweep: large enough to fill
/// the SIMD lanes of [`EffectiveGain::eval_jw_batch`], small enough to
/// keep the parallel pool load-balanced. Chunk boundaries are fixed by
/// index, so the partition — and with it every block result — is
/// independent of the thread count.
const LAMBDA_CHUNK: usize = 32;

impl EffectiveGain {
    /// Exact λ(jω) over `spec.grid`, evaluated on the parallel pool in
    /// [`LAMBDA_CHUNK`]-point blocks through the SIMD batch path.
    /// Bitwise identical to pointwise [`EffectiveGain::eval_jw`] calls
    /// at any thread count.
    pub fn eval_grid(&self, spec: &SweepSpec) -> Vec<Complex> {
        let _span =
            htmpll_obs::span_labeled("core", "sweep.lambda", || format!("n={}", spec.grid.len()));
        let chunks: Vec<&[f64]> = spec.grid.points().chunks(LAMBDA_CHUNK).collect();
        let blocks = par_map(spec.threads, &chunks, |_, ws| {
            let mut out = vec![Complex::ZERO; ws.len()];
            self.eval_jw_batch(ws, &mut out);
            out
        });
        blocks.into_iter().flatten().collect()
    }
}

impl PllModel {
    /// Resolves a truncation policy against this model: fixed orders
    /// pass through; `Auto { tol }` asks the effective gain for the
    /// order whose harmonic-sum tail stays below `tol`, clamped to
    /// [`MAX_AUTO_TRUNCATION`] (matrix dimensions must stay sane).
    pub fn resolve_truncation(&self, spec: impl Into<TruncationSpec>) -> Truncation {
        spec.into().resolve_with(|tol| {
            self.lambda()
                .suggest_truncation(tol)
                .min(MAX_AUTO_TRUNCATION)
        })
    }

    /// Closed-loop baseband transfer `H₀,₀(jω)` over `spec.grid`, on the
    /// parallel pool.
    pub fn h00_grid(&self, spec: &SweepSpec) -> Vec<Complex> {
        let _span =
            htmpll_obs::span_labeled("core", "sweep.h00", || format!("n={}", spec.grid.len()));
        par_map(spec.threads, spec.grid.points(), |_, &w| self.h00(w))
    }

    /// LTI-approximation closed loop `A/(1+A)` over `spec.grid`.
    pub fn h00_lti_grid(&self, spec: &SweepSpec) -> Vec<Complex> {
        par_map(spec.threads, spec.grid.points(), |_, &w| self.h00_lti(w))
    }

    /// The truncation-escalation ladder for one starting order: the
    /// order itself, then double, then [`MAX_AUTO_TRUNCATION`] (deduped,
    /// ascending). Higher orders push the truncation tail — and with it
    /// the conditioning of `I + G̃` — down when the starting order's
    /// solve degrades.
    fn truncation_ladder(start: usize) -> Vec<usize> {
        let mut orders = vec![start];
        let doubled = (start.max(1) * 2).min(MAX_AUTO_TRUNCATION);
        if doubled > start {
            orders.push(doubled);
        }
        if MAX_AUTO_TRUNCATION > *orders.last().unwrap_or(&start) {
            orders.push(MAX_AUTO_TRUNCATION);
        }
        orders
    }

    /// One dense grid point through the cache, escalating the
    /// truncation order when the solve degrades. Pure per point (cache
    /// hits return the identical bits the first evaluation produced),
    /// so grid results are bitwise-identical for any thread count.
    fn dense_point_escalating(
        &self,
        s: Complex,
        trunc: Truncation,
        kernel: KernelPolicy,
        cache: &SweepCache,
        ws: &mut SweepWorkspace,
        deadline: &Deadline,
    ) -> PointOutcome<Htm> {
        let mut best: Option<PointOutcome<Htm>> = None;
        for (attempt, &k) in Self::truncation_ladder(trunc.order()).iter().enumerate() {
            // First rung of the degradation ladder: under deadline
            // pressure, settle for the starting order's verdict instead
            // of burning the remaining budget on higher-K retries.
            if attempt > 0 && deadline.pressed(0.5) {
                htmpll_obs::counter!("core", "robust.trunc_capped").inc();
                break;
            }
            let outcome = match cache.dense_robust_with(self, s, Truncation::new(k), kernel, ws) {
                Ok(d) => PointOutcome {
                    value: Some(d.htm.clone()),
                    quality: d.quality.clone(),
                    cond: d.report.cond_estimate,
                    residual: d.report.residual,
                },
                Err(reason) => PointOutcome::failed(reason),
            };
            if !outcome.quality.is_degraded() {
                if attempt > 0 {
                    htmpll_obs::counter!("core", "robust.trunc_escalated").inc();
                    htmpll_obs::instant("core", || {
                        format!("quality{{trunc-escalated,s={s},k={k}}}")
                    });
                }
                return outcome;
            }
            // Keep the least-bad attempt: a Perturbed value beats Failed;
            // the first Perturbed (lowest order) wins ties.
            let keep = match &best {
                None => true,
                Some(b) => b.value.is_none() && outcome.value.is_some(),
            };
            if keep {
                best = Some(outcome);
            }
        }
        best.unwrap_or_else(|| PointOutcome::failed("empty truncation ladder"))
    }

    /// Full dense closed-loop HTM at every grid frequency (`s = jω`),
    /// solved on the parallel pool with the truncation from
    /// `spec.trunc` — **graceful**: no point aborts the sweep. Each
    /// point carries a [`PointQuality`] verdict; a degraded solve
    /// automatically retries at higher truncation orders (up to
    /// [`MAX_AUTO_TRUNCATION`]) before settling for a `Perturbed` or
    /// `Failed` verdict. Repeated frequencies (and repeated calls
    /// through the same `cache`) reuse assembled HTMs and
    /// factorizations, including memoized failures.
    pub fn closed_loop_htm_grid_robust(
        &self,
        spec: &SweepSpec,
        cache: &SweepCache,
    ) -> GridOutcome<Htm> {
        let trunc = self.resolve_truncation(spec.trunc);
        let _span = htmpll_obs::span_labeled("core", "sweep.htm_dense", || {
            format!(
                "n={} dim={} kernel={}",
                spec.grid.len(),
                trunc.dim(),
                spec.kernel.name()
            )
        });
        let slots = par_map_with_cancel(
            spec.threads,
            spec.grid.points(),
            &spec.deadline,
            SweepWorkspace::new,
            |ws, _, &w| {
                // Fault sites, keyed by the frequency's bit pattern so a
                // given point faults identically at every thread count.
                htmpll_fault::panic_if("sweep.panic", w.to_bits());
                htmpll_fault::slow_if("sweep.slow", w.to_bits());
                if htmpll_fault::fires("sweep.nan", w.to_bits()) {
                    // Poison the Laplace point — but **bypass the cache**:
                    // a faulted value must never be memoized where
                    // non-faulted requests could observe it.
                    return match compute_dense(
                        self,
                        Complex::new(f64::NAN, w),
                        trunc,
                        spec.kernel,
                        ws,
                    ) {
                        Ok(d) => PointOutcome {
                            value: Some(d.htm.clone()),
                            quality: d.quality.clone(),
                            cond: d.report.cond_estimate,
                            residual: d.report.residual,
                        },
                        Err(reason) => PointOutcome::failed(reason),
                    };
                }
                self.dense_point_escalating(
                    Complex::from_im(w),
                    trunc,
                    spec.kernel,
                    cache,
                    ws,
                    &spec.deadline,
                )
            },
        );
        let points = slots
            .into_iter()
            .map(|slot| slot.unwrap_or_else(PointOutcome::deadline_exceeded))
            .collect();
        GridOutcome { points }
    }

    /// Strict collapse of
    /// [`closed_loop_htm_grid_robust`](PllModel::closed_loop_htm_grid_robust):
    /// plain HTM values, erroring on the first point with no usable
    /// value. Points the escalating solver rescued (`Refined`,
    /// `Perturbed`) pass through; use the robust variant to see the
    /// verdicts.
    ///
    /// # Errors
    ///
    /// [`CoreError::SweepFailed`] naming the first failed grid point.
    pub fn closed_loop_htm_grid_cached(
        &self,
        spec: &SweepSpec,
        cache: &SweepCache,
    ) -> Result<Vec<Htm>, CoreError> {
        self.closed_loop_htm_grid_robust(spec, cache).into_strict()
    }

    /// [`closed_loop_htm_grid_cached`](PllModel::closed_loop_htm_grid_cached)
    /// with a fresh single-sweep cache.
    ///
    /// # Errors
    ///
    /// [`CoreError::SweepFailed`] naming the first failed grid point.
    pub fn closed_loop_htm_grid(&self, spec: &SweepSpec) -> Result<Vec<Htm>, CoreError> {
        self.closed_loop_htm_grid_cached(spec, &SweepCache::new())
    }
}

impl NoiseModel<'_> {
    /// Output phase PSD over `spec.grid`, folding evaluated point-wise
    /// on the parallel pool. The PSD closures are shared across workers,
    /// hence the `Sync` bounds.
    pub fn output_psd_grid<R, V>(&self, spec: &SweepSpec, ref_psd: &R, vco_psd: &V) -> Vec<f64>
    where
        R: Fn(f64) -> f64 + Sync,
        V: Fn(f64) -> f64 + Sync,
    {
        let _span =
            htmpll_obs::span_labeled("core", "sweep.noise", || format!("n={}", spec.grid.len()));
        par_map(spec.threads, spec.grid.points(), |_, &w| {
            self.output_psd(w, ref_psd, vco_psd)
        })
    }

    /// LTI-approximation output PSD over `spec.grid`.
    pub fn output_psd_lti_grid<R, V>(&self, spec: &SweepSpec, ref_psd: &R, vco_psd: &V) -> Vec<f64>
    where
        R: Fn(f64) -> f64 + Sync,
        V: Fn(f64) -> f64 + Sync,
    {
        par_map(spec.threads, spec.grid.points(), |_, &w| {
            self.output_psd_lti(w, ref_psd, vco_psd)
        })
    }
}

/// One predicted reference-spur line, as produced by
/// [`LeakageSpurs::scan`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpurLine {
    /// Reference-harmonic index of the line (at `k·ω₀`).
    pub k: i64,
    /// Complex sideband amplitude `θ̃_k` (time units).
    pub sideband: Complex,
    /// Spur level at the synthesizer output, dBc.
    pub level_dbc: f64,
}

impl LeakageSpurs<'_> {
    /// Predicts the spur lines at `k·ω₀` for `k = 1..=k_max`, evaluated
    /// on the parallel pool.
    pub fn scan(&self, k_max: i64, threads: ThreadBudget) -> Vec<SpurLine> {
        let ks: Vec<i64> = (1..=k_max.max(0)).collect();
        let _span = htmpll_obs::span_labeled("core", "sweep.spurs", || format!("n={}", ks.len()));
        par_map(threads, &ks, |_, &k| SpurLine {
            k,
            sideband: self.sideband(k),
            level_dbc: self.level_dbc(k),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PllDesign;
    use htmpll_lti::bode_sweep;

    fn model(ratio: f64) -> PllModel {
        PllModel::builder(PllDesign::reference_design(ratio).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn spec_builders_compose() {
        let spec = SweepSpec::log(0.1, 10.0, 21)
            .unwrap()
            .with_truncation(Truncation::new(5))
            .with_threads(2);
        assert_eq!(spec.grid.len(), 21);
        assert!(matches!(spec.trunc, TruncationSpec::Fixed(t) if t.order() == 5));
        let auto = SweepSpec::linear(0.0, 1.0, 3).unwrap().with_tol(1e-2);
        assert!(matches!(auto.trunc, TruncationSpec::Auto { tol } if tol == 1e-2));
    }

    #[test]
    fn lambda_grid_matches_pointwise() {
        let m = model(0.2);
        let spec = SweepSpec::log(1e-2, 2.0, 33).unwrap().with_threads(3);
        let grid_vals = m.lambda().eval_grid(&spec);
        for (&w, v) in spec.grid.points().iter().zip(&grid_vals) {
            let direct = m.lambda().eval_jw(w);
            assert_eq!(direct.re.to_bits(), v.re.to_bits());
            assert_eq!(direct.im.to_bits(), v.im.to_bits());
        }
    }

    #[test]
    fn bode_grid_matches_sequential_sweep() {
        let m = model(0.15);
        let spec = SweepSpec::log(1e-2, 3.0, 40).unwrap().with_threads(4);
        let par = bode_grid(|w| m.h00(w), &spec);
        let seq = bode_sweep(|w| m.h00(w), spec.grid.points());
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.mag_db.to_bits(), s.mag_db.to_bits());
            assert_eq!(p.phase_deg.to_bits(), s.phase_deg.to_bits());
        }
    }

    #[test]
    fn dense_cache_reuses_factorizations() {
        let m = model(0.25);
        let cache = SweepCache::new();
        let spec = SweepSpec::log(0.1, 2.0, 12)
            .unwrap()
            .with_truncation(Truncation::new(4))
            .with_threads(2);
        let a = m.closed_loop_htm_grid_cached(&spec, &cache).unwrap();
        assert_eq!(cache.dense_entries(), 12);
        // Second pass over the same grid: every point is a hit.
        let b = m.closed_loop_htm_grid_cached(&spec, &cache).unwrap();
        assert_eq!(cache.dense_entries(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_matrix().max_diff(y.as_matrix()), 0.0);
        }
        // And the cached result matches the uncached dense reference —
        // to rounding, not bitwise: the structured default closes the
        // rank-one loop by Sherman–Morrison, not the dense LU.
        let reference = m
            .closed_loop_htm_dense(Complex::from_im(spec.grid.points()[3]), Truncation::new(4))
            .unwrap();
        assert!(a[3].as_matrix().max_diff(reference.as_matrix()) < 1e-12);
    }

    #[test]
    fn kernel_policies_agree_and_cache_separately() {
        let m = model(0.25);
        let cache = SweepCache::new();
        let spec = SweepSpec::log(0.1, 2.0, 8)
            .unwrap()
            .with_truncation(Truncation::new(4))
            .with_threads(2);
        let fast = m.closed_loop_htm_grid_cached(&spec, &cache).unwrap();
        assert_eq!(cache.dense_entries(), 8);
        let strict = m
            .closed_loop_htm_grid_cached(&spec.clone().with_kernel(KernelPolicy::Dense), &cache)
            .unwrap();
        // Distinct keys: the dense pass added its own 8 entries.
        assert_eq!(cache.dense_entries(), 16);
        for (x, y) in fast.iter().zip(&strict) {
            assert!(x.as_matrix().max_diff(y.as_matrix()) < 1e-10);
        }
    }

    #[test]
    fn bounded_cache_evicts_lru() {
        let m = model(0.25);
        let cache = SweepCache::with_capacity(4);
        let spec = SweepSpec::log(0.1, 2.0, 12)
            .unwrap()
            .with_truncation(Truncation::new(3))
            .with_threads(1);
        let a = m.closed_loop_htm_grid_cached(&spec, &cache).unwrap();
        assert!(cache.dense_entries() <= 4);
        assert!(cache.evictions() > 0);
        // Evicted points recompute to the identical bits.
        let b = m.closed_loop_htm_grid_cached(&spec, &cache).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_matrix().max_diff(y.as_matrix()), 0.0);
        }
    }

    #[test]
    fn robust_grid_survives_on_pole_points() {
        // ω = ω₀ sits exactly on an aliased-integrator pole of the
        // open-loop HTM: the entries are non-finite there. The robust
        // grid must finish, fail that point with a verdict, and keep
        // full-precision values everywhere else.
        let m = model(0.2);
        let w0 = m.design().omega_ref();
        let grid = vec![0.1 * w0, w0, 0.45 * w0];
        let spec = SweepSpec::new(grid)
            .with_truncation(Truncation::new(4))
            .with_threads(2);
        let cache = SweepCache::new();
        let out = m.closed_loop_htm_grid_robust(&spec, &cache);
        assert_eq!(out.len(), 3);
        assert!(out.points[0].value.is_some());
        assert!(!out.points[0].quality.is_degraded());
        assert!(
            matches!(out.points[1].quality, PointQuality::Failed { .. }),
            "{:?}",
            out.points[1].quality
        );
        assert!(out.points[1].value.is_none());
        assert!(out.points[2].value.is_some());
        let s = out.summary();
        assert_eq!(s.failed, 1);
        assert_eq!(s.total(), 3);
        // The strict collapse names the failed point instead of
        // propagating a bare LuError.
        let err = m
            .closed_loop_htm_grid_robust(&spec, &cache)
            .into_strict()
            .unwrap_err();
        assert!(err.to_string().contains("grid point 1"), "{err}");
    }

    #[test]
    fn robust_grid_verdicts_thread_deterministic() {
        let m = model(0.3);
        let w0 = m.design().omega_ref();
        let grid = vec![0.05 * w0, w0, 0.3 * w0, 0.49 * w0];
        let spec = SweepSpec::new(grid).with_truncation(Truncation::new(3));
        let a = m.closed_loop_htm_grid_robust(&spec.clone().with_threads(1), &SweepCache::new());
        let b = m.closed_loop_htm_grid_robust(&spec.with_threads(4), &SweepCache::new());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.quality, y.quality);
            assert_eq!(x.cond.to_bits(), y.cond.to_bits());
            assert_eq!(x.residual.to_bits(), y.residual.to_bits());
            match (&x.value, &y.value) {
                (Some(hx), Some(hy)) => {
                    assert_eq!(hx.as_matrix().max_diff(hy.as_matrix()), 0.0);
                }
                (None, None) => {}
                _ => panic!("value presence differs between thread counts"),
            }
        }
    }

    #[test]
    fn deadline_yields_partial_grid_with_deadline_verdicts() {
        let m = model(0.2);
        let full_spec = SweepSpec::log(0.1, 2.0, 16)
            .unwrap()
            .with_truncation(Truncation::new(3))
            .with_threads(1);
        let full = m.closed_loop_htm_grid_robust(&full_spec, &SweepCache::new());
        let spec = full_spec.with_deadline(Deadline::after_checks(5));
        let out = m.closed_loop_htm_grid_robust(&spec, &SweepCache::new());
        assert_eq!(out.len(), 16);
        let done = out.points.iter().filter(|p| p.value.is_some()).count();
        assert!(done > 0 && done < 16, "{done} of 16 completed");
        for (p, f) in out.points.iter().zip(&full.points) {
            match &p.value {
                // Completed points are bitwise identical to the
                // uncancelled run — cancellation decides whether, not what.
                Some(h) => {
                    let fh = f.value.as_ref().expect("full run has every point");
                    assert_eq!(h.as_matrix().max_diff(fh.as_matrix()), 0.0);
                }
                None => assert!(p.is_deadline_exceeded(), "{:?}", p.quality),
            }
        }
        assert_eq!(out.summary().failed, 16 - done);
    }

    #[test]
    fn truncation_ladder_shapes() {
        assert_eq!(
            PllModel::truncation_ladder(4),
            vec![4, 8, MAX_AUTO_TRUNCATION]
        );
        assert_eq!(
            PllModel::truncation_ladder(40),
            vec![40, MAX_AUTO_TRUNCATION]
        );
        assert_eq!(
            PllModel::truncation_ladder(MAX_AUTO_TRUNCATION),
            vec![MAX_AUTO_TRUNCATION]
        );
        assert_eq!(
            PllModel::truncation_ladder(0),
            vec![0, 2, MAX_AUTO_TRUNCATION]
        );
    }

    #[test]
    fn failed_points_are_memoized() {
        let m = model(0.2);
        let w0 = m.design().omega_ref();
        let cache = SweepCache::new();
        let t = Truncation::new(2);
        let first = cache.dense_robust(&m, Complex::from_im(w0), t);
        let second = cache.dense_robust(&m, Complex::from_im(w0), t);
        assert!(first.is_err());
        assert_eq!(first.unwrap_err(), second.unwrap_err());
        assert_eq!(cache.dense_entries(), 1);
        // Strict wrapper maps the memoized reason into CoreError.
        let strict = cache.dense(&m, Complex::from_im(w0), t);
        assert!(matches!(strict, Err(CoreError::SweepFailed { .. })));
    }

    #[test]
    fn cache_is_safe_across_models() {
        // Keys carry the model fingerprint, so one cache shared by two
        // different designs must keep their values apart.
        let a = model(0.2);
        let b = model(0.3);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), model(0.2).fingerprint());
        let cache = SweepCache::new();
        let s = Complex::from_im(0.7);
        let va = cache.lambda(a.lambda(), s);
        let vb = cache.lambda(b.lambda(), s);
        assert_eq!(cache.lambda_entries(), 2);
        assert_eq!(va.re.to_bits(), a.lambda().eval(s).re.to_bits());
        assert_eq!(vb.re.to_bits(), b.lambda().eval(s).re.to_bits());
        assert_ne!(va.re.to_bits(), vb.re.to_bits());
        let t = Truncation::new(3);
        let da = cache.dense_robust(&a, s, t).unwrap();
        let db = cache.dense_robust(&b, s, t).unwrap();
        assert_eq!(cache.dense_entries(), 2);
        assert!(da.htm.as_matrix().max_diff(db.htm.as_matrix()) > 1e-6);
        // Round trips stay hits for the right model.
        let da2 = cache.dense_robust(&a, s, t).unwrap();
        assert_eq!(da.htm.as_matrix().max_diff(da2.htm.as_matrix()), 0.0);
        assert_eq!(cache.dense_entries(), 2);
    }

    #[test]
    fn cache_stats_count_traffic() {
        let m = model(0.2);
        let cache = SweepCache::new();
        let s = Complex::from_im(0.7);
        cache.lambda(m.lambda(), s);
        cache.lambda(m.lambda(), s);
        let st = cache.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.lambda_entries, 1);
        assert_eq!(st.dense_entries, 0);
        assert!(st.shards.is_power_of_two());
        assert!((st.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn sharding_respects_total_capacity() {
        // A tiny cap still means at most `cap` entries in aggregate,
        // however many shards the capacity was split across.
        for cap in [1usize, 2, 3, 4, 7, 16] {
            let cache = SweepCache::with_capacity(cap);
            let m = model(0.25);
            for i in 0..40 {
                let s = Complex::from_im(0.1 + 0.01 * i as f64);
                let _ = cache.lambda(m.lambda(), s);
            }
            assert!(
                cache.lambda_entries() <= cap,
                "cap {cap}: {} entries",
                cache.lambda_entries()
            );
        }
    }

    #[test]
    fn lambda_cache_hits_are_identical() {
        let m = model(0.2);
        let cache = SweepCache::new();
        let s = Complex::from_im(0.7);
        let first = cache.lambda(m.lambda(), s);
        let second = cache.lambda(m.lambda(), s);
        assert_eq!(first.re.to_bits(), second.re.to_bits());
        assert_eq!(cache.lambda_entries(), 1);
    }

    #[test]
    fn auto_truncation_is_clamped() {
        let m = model(0.2);
        let t = m.resolve_truncation(Truncation::auto(1e-12));
        assert!(t.order() <= MAX_AUTO_TRUNCATION);
        let fixed = m.resolve_truncation(Truncation::new(7));
        assert_eq!(fixed.order(), 7);
    }

    #[test]
    fn noise_grid_matches_pointwise() {
        let m = model(0.1);
        let n = NoiseModel::new(&m, 4);
        let spec = SweepSpec::log(1e-2, 2.0, 17).unwrap().with_threads(2);
        let flat = |_: f64| 1e-12;
        let vco = |f: f64| 1e-12 / (1.0 + f * f);
        let grid_vals = n.output_psd_grid(&spec, &flat, &vco);
        for (&w, v) in spec.grid.points().iter().zip(&grid_vals) {
            assert_eq!(n.output_psd(w, &flat, &vco).to_bits(), v.to_bits());
        }
        let lti_vals = n.output_psd_lti_grid(&spec, &flat, &vco);
        assert!(lti_vals.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn spur_scan_matches_pointwise() {
        let m = model(0.1);
        let s = LeakageSpurs::new(&m, 1e-3 * m.design().icp());
        let lines = s.scan(5, ThreadBudget::Fixed(2));
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert_eq!(line.sideband, s.sideband(line.k));
            assert_eq!(line.level_dbc.to_bits(), s.level_dbc(line.k).to_bits());
        }
        assert!(s.scan(0, ThreadBudget::Auto).is_empty());
    }
}
