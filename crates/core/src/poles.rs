//! Closed-loop poles of the time-varying loop.
//!
//! The closed loop `H̃ = Ṽ𝟙ᵀ/(1 + λ)` has its poles where
//! `1 + λ(s) = 0`. Because `λ` is `ω₀`-periodic along the imaginary
//! axis, each zero of `1 + λ` in the fundamental strip
//! `|Im s| ≤ ω₀/2` represents an infinite comb of closed-loop poles
//! `s* + jmω₀` — the time-varying analogue of a pole pair, carrying the
//! loop's true damping and ringing frequency.
//!
//! [`dominant_poles`] locates them by complex Newton iteration on
//! `1 + λ(s)` (the derivative is exact, from the lattice-sum identity),
//! seeded from the LTI closed-loop poles — which the time-varying poles
//! continuously deform away from as `ω_UG/ω₀` grows.
//!
//! ```
//! use htmpll_core::{poles::dominant_poles, PllDesign, PllModel};
//!
//! let model = PllModel::builder(PllDesign::reference_design(0.1).unwrap()).build().unwrap();
//! let poles = dominant_poles(&model).unwrap();
//! // A stable loop: every strip pole in the left half plane.
//! assert!(poles.iter().all(|p| p.re < 0.0));
//! ```

use crate::closed_loop::PllModel;
use crate::error::CoreError;
use htmpll_num::Complex;

/// Newton refinement of a zero of `1 + λ(s)` from an initial guess.
///
/// Returns `None` when the iteration leaves the fundamental strip, dies
/// on a vanishing derivative, or fails to converge.
pub fn refine_pole(model: &PllModel, seed: Complex, tol: f64) -> Option<Complex> {
    let lam = model.lambda();
    let w0 = model.design().omega_ref();
    let mut s = seed;
    for iter in 0..80 {
        let f = Complex::ONE + lam.eval(s);
        let df = lam.eval_deriv(s);
        if !f.is_finite() || !df.is_finite() || df.abs() < 1e-300 {
            return None;
        }
        let step = f / df;
        s -= step;
        // Fold back into the fundamental strip (λ is ω₀-periodic, so the
        // zero set is too; keep the canonical representative).
        if s.im.abs() > 0.75 * w0 {
            s.im -= w0 * (s.im / w0).round();
        }
        if step.abs() < tol * (1.0 + s.abs()) {
            // Verify residual.
            if (Complex::ONE + lam.eval(s)).abs() < 1e-6 {
                htmpll_obs::counter!("core", "poles.refine.converged").inc();
                htmpll_obs::record!("core", "poles.refine.iters").record((iter + 1) as f64);
                return Some(s);
            }
            htmpll_obs::counter!("core", "poles.refine.rejected").inc();
            return None;
        }
    }
    htmpll_obs::counter!("core", "poles.refine.exhausted").inc();
    None
}

/// Locates the dominant closed-loop poles of the time-varying loop in
/// the upper half of the fundamental strip: Newton on `1 + λ(s)` seeded
/// from (a) the LTI closed-loop poles and (b) the local minima of
/// `|1 + λ|` over a strip grid — the latter is what finds the
/// **alias-born pole pair** near `Im s ≈ ω₀/2` that has *no LTI
/// counterpart* and carries the fast-loop ringing. Results are deduped
/// and sorted by decreasing real part (least damped first); conjugates
/// are implied.
///
/// # Errors
///
/// Propagates LTI pole extraction failures; returns an empty vector when
/// no Newton run converges.
pub fn dominant_poles(model: &PllModel) -> Result<Vec<Complex>, CoreError> {
    let _span = htmpll_obs::span("core", "dominant_poles");
    let cl = model.open_loop().feedback_unity()?;
    let mut seeds: Vec<Complex> = cl
        .poles()?
        .into_iter()
        .map(|p| if p.im < 0.0 { p.conj() } else { p })
        .collect();

    // Strip grid: local minima of |1 + λ| over Re ∈ [−3ω_UG, +ω_UG],
    // Im ∈ [−0.1, 0.6]·ω₀ — deliberately past the strip edge ω₀/2, where
    // the alias-born pole pair lives for fast loops (results fold back
    // to the canonical strip inside the Newton refinement).
    let w0 = model.design().omega_ref();
    let lam = model.lambda();
    const NR: usize = 30;
    const NI: usize = 30;
    let mut grid = vec![[0.0f64; NI]; NR];
    let re_at = |i: usize| -3.0 + 4.0 * i as f64 / (NR - 1) as f64;
    let im_at = |j: usize| w0 * (-0.1 + 0.7 * j as f64 / (NI - 1) as f64);
    for (i, row) in grid.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = (Complex::ONE + lam.eval(Complex::new(re_at(i), im_at(j)))).abs();
        }
    }
    for i in 1..NR - 1 {
        for j in 1..NI - 1 {
            let v = grid[i][j];
            if v < grid[i - 1][j] && v < grid[i + 1][j] && v < grid[i][j - 1] && v < grid[i][j + 1]
            {
                seeds.push(Complex::new(re_at(i), im_at(j)));
            }
        }
    }

    let mut found: Vec<Complex> = Vec::new();
    for seed in seeds {
        if let Some(p) = refine_pole(model, seed, 1e-12) {
            // Canonical representative: fold into |Im| ≤ ω₀/2, upper half.
            let mut p = p;
            p.im -= w0 * (p.im / w0).round();
            let p = if p.im < 0.0 { p.conj() } else { p };
            if !found
                .iter()
                .any(|q| (*q - p).abs() < 1e-6 * (1.0 + p.abs()))
            {
                found.push(p);
            }
        }
    }
    found.sort_by(|a, b| b.re.partial_cmp(&a.re).unwrap_or(std::cmp::Ordering::Equal));
    Ok(found)
}

/// The effective damping ratio of a complex pole `p = −σ ± jω_d`:
/// `ζ = σ/|p|`. Real poles return 1.
pub fn damping_ratio(pole: Complex) -> f64 {
    if pole.im == 0.0 {
        1.0
    } else {
        (-pole.re / pole.abs()).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PllDesign;

    fn model(ratio: f64) -> PllModel {
        PllModel::builder(PllDesign::reference_design(ratio).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn slow_loop_poles_match_lti() {
        let m = model(0.01);
        let tv = dominant_poles(&m).unwrap();
        let lti = m.open_loop().feedback_unity().unwrap().poles().unwrap();
        assert!(!tv.is_empty());
        for p in &tv {
            let nearest = lti
                .iter()
                .map(|q| (*q - *p).abs().min((q.conj() - *p).abs()))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest < 1e-2 * (1.0 + p.abs()),
                "pole {p} far from LTI set"
            );
        }
    }

    #[test]
    fn poles_satisfy_characteristic_equation() {
        let m = model(0.2);
        for p in dominant_poles(&m).unwrap() {
            let residual = (Complex::ONE + m.lambda().eval(p)).abs();
            assert!(residual < 1e-8, "residual {residual} at {p}");
        }
    }

    #[test]
    fn subharmonic_pole_marches_to_instability() {
        // The LTI closed loop of this shape has all-real poles. Around
        // ratio ≈ 0.19 two of them collide and lock onto the strip edge
        // Im = ω₀/2 — a subharmonic mode ringing at **half the reference
        // rate** — and its decay rate shrinks monotonically until it
        // crosses into the right half plane at the stability limit.
        let mut last_re = f64::NEG_INFINITY;
        for ratio in [0.2, 0.22, 0.25, 0.27] {
            let m = model(ratio);
            let w0 = m.design().omega_ref();
            let poles = dominant_poles(&m).unwrap();
            let edge = poles
                .iter()
                .filter(|p| (p.im - 0.5 * w0).abs() < 1e-6 * w0)
                .map(|p| p.re)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                edge.is_finite(),
                "no subharmonic pole at ratio {ratio}: {poles:?}"
            );
            assert!(edge < 0.0, "still stable at {ratio}: Re {edge}");
            assert!(
                edge > last_re,
                "ratio {ratio}: Re {edge} must increase toward 0 (was {last_re})"
            );
            last_re = edge;
        }
        // Within striking distance of the axis just below the limit.
        assert!(last_re > -0.1, "{last_re}");
    }

    #[test]
    fn unstable_loop_has_rhp_pole() {
        let m = model(0.3); // beyond the sampling limit
        let poles = dominant_poles(&m).unwrap();
        assert!(
            poles.iter().any(|p| p.re > 0.0),
            "expected an RHP pole, got {poles:?}"
        );
    }

    #[test]
    fn alias_pole_frequency_matches_peaking_frequency() {
        // The subharmonic pole's imaginary part must sit where |H00|
        // peaks (the band-edge resonance in Fig. 6).
        let m = model(0.25);
        let poles = dominant_poles(&m).unwrap();
        let w0 = m.design().omega_ref();
        let alias = poles.iter().find(|p| p.im > 0.25 * w0).expect("alias pole");
        // Peak of |H00| over a fine scan.
        let mut peak_w = 0.0;
        let mut peak = 0.0f64;
        let mut w = 0.5;
        while w < 0.5 * w0 {
            let h = m.h00(w).abs();
            if h > peak {
                peak = h;
                peak_w = w;
            }
            w += 0.002;
        }
        assert!(
            (alias.im - peak_w).abs() < 0.1 * peak_w,
            "pole Im {} vs peak at {peak_w}",
            alias.im
        );
    }

    #[test]
    fn damping_ratio_edges() {
        assert_eq!(damping_ratio(Complex::from_re(-2.0)), 1.0);
        let z = damping_ratio(Complex::new(-1.0, 1.0));
        assert!((z - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!(damping_ratio(Complex::new(1.0, 1.0)) < 0.0);
    }
}
