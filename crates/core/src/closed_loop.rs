//! Closed-loop PLL model: from reference phase to VCO phase.
//!
//! [`PllModel`] assembles the building-block HTMs of the loop
//! (PFD sampler → loop filter → VCO) and closes the feedback
//! `θ̃ = (I + G̃)⁻¹ G̃ θ̃_ref` (paper eq. 26–28). Because the sampler is
//! rank one, `G̃(s) = Ṽ(s)·𝟙ᵀ` and the Sherman–Morrison–Woodbury
//! identity collapses the inverse to the closed form of eq. 34:
//!
//! ```text
//! H̃(s) = Ṽ(s)·𝟙ᵀ / (1 + λ(s)),     λ(s) = 𝟙ᵀ Ṽ(s)
//! ```
//!
//! For a time-invariant VCO, `Ṽ_n(s) = A(s + jnω₀)` and
//! `H_{n,m}(s) = A(s + jnω₀)/(1 + λ(s))` — the baseband element
//! `H_{0,0}` is the paper's eq. 38, the quantity plotted in Fig. 6.
//!
//! ```
//! use htmpll_core::{PllDesign, PllModel};
//!
//! let model = PllModel::builder(PllDesign::reference_design(0.1).unwrap()).build().unwrap();
//! let h = model.h00(0.5); // closed-loop baseband transfer at ω = 0.5·ω_UG... (rad/s)
//! assert!(h.abs() > 0.9 && h.abs() < 1.2); // in-band: follows the reference
//! ```

use crate::design::PllDesign;
use crate::error::CoreError;
use crate::lambda::EffectiveGain;
use htmpll_htm::{
    closed_loop_rank_one, Htm, HtmBlock, LtiHtm, SamplerHtm, Truncation, TruncationSpec, VcoHtm,
};
use htmpll_num::Complex;

/// A PLL small-signal model ready for frequency-domain evaluation.
#[derive(Debug, Clone)]
pub struct PllModel {
    design: PllDesign,
    /// Centered ISF Fourier coefficients of the VCO (length 1 ⇒
    /// time-invariant).
    vco_isf: Vec<Complex>,
    lambda: EffectiveGain,
    /// Extra LTI factor in the forward path (e.g. a Padé delay block);
    /// unity when absent. Folded into `lambda` at construction and
    /// applied explicitly by the matrix-assembly paths.
    extra_lti: Option<htmpll_lti::Tf>,
    /// Identity hash over everything the HTM assembly reads; see
    /// [`PllModel::fingerprint`].
    fingerprint: u64,
}

/// Staged construction of a [`PllModel`]: start from a [`PllDesign`],
/// optionally add a loop latency and/or a time-varying VCO ISF, then
/// [`build`](PllModelBuilder::build). Unlike the legacy constructors,
/// the builder composes freely — a delayed loop with a time-varying VCO
/// is one chain:
///
/// ```
/// use htmpll_core::{PllDesign, PllModel};
/// use htmpll_num::Complex;
///
/// let d = PllDesign::reference_design(0.1).unwrap();
/// let v0 = d.v0();
/// let m = PllModel::builder(d)
///     .loop_delay(0.05, 4)
///     .vco_isf(vec![
///         Complex::from_re(0.2 * v0),
///         Complex::from_re(v0),
///         Complex::from_re(0.2 * v0),
///     ])
///     .build()
///     .unwrap();
/// assert!(!m.is_time_invariant());
/// ```
#[derive(Debug, Clone)]
pub struct PllModelBuilder {
    design: PllDesign,
    delay: Option<(f64, usize)>,
    vco_isf: Option<Vec<Complex>>,
}

impl PllModelBuilder {
    /// Adds a loop latency `tau` (divider pipeline, PFD logic,
    /// charge-pump switching), folded into the open-loop gain via a
    /// diagonal Padé-`(order,order)` delay approximant. The delayed gain
    /// stays rational, so the **exact** lattice-sum `λ(s)` still
    /// applies; choose `order ≳ ω₀·τ` for accuracy across the first
    /// Nyquist band.
    #[must_use]
    pub fn loop_delay(mut self, tau: f64, order: usize) -> PllModelBuilder {
        self.delay = Some((tau, order));
        self
    }

    /// Describes a **time-varying** VCO by its centered ISF Fourier
    /// coefficients `[v_{−K}, …, v₀, …, v_{+K}]` (odd length; the center
    /// coefficient is the nominal sensitivity `v₀`). The scalar λ-based
    /// closed form still applies (the PFD HTM stays rank one); only the
    /// column `Ṽ(s)` changes. The `λ` evaluator is built from the `v₀`
    /// (time-invariant) part, which is exact for λ because
    /// `𝟙ᵀ H̃_VCO H̃_LF 𝟙` sums every row: off-center ISF terms
    /// contribute through the same lattice sums with shifted arguments,
    /// handled in [`lambda_tv`](PllModel::lambda_tv).
    #[must_use]
    pub fn vco_isf(mut self, vco_isf: Vec<Complex>) -> PllModelBuilder {
        self.vco_isf = Some(vco_isf);
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] — even-length or empty ISF
    ///   list (`"vco_isf length"`), or a negative/non-finite delay
    ///   (`"loop delay tau"`).
    /// * Padé construction and effective-gain failures (improper loop,
    ///   pole extraction) are propagated.
    pub fn build(self) -> Result<PllModel, CoreError> {
        let PllModelBuilder {
            design,
            delay,
            vco_isf,
        } = self;
        if let Some(isf) = &vco_isf {
            if isf.is_empty() || isf.len() % 2 == 0 {
                return Err(CoreError::InvalidParameter {
                    name: "vco_isf length",
                    value: isf.len() as f64,
                });
            }
        }
        let mut open = design.open_loop_gain();
        let mut extra_lti = None;
        if let Some((tau, order)) = delay {
            if !tau.is_finite() || tau < 0.0 {
                return Err(CoreError::InvalidParameter {
                    name: "loop delay tau",
                    value: tau,
                });
            }
            let pade = htmpll_lti::pade_delay(tau, order)?;
            open = &open * &pade;
            extra_lti = Some(pade);
        }
        let lambda = EffectiveGain::new(&open, design.omega_ref())?;
        let vco_isf = vco_isf.unwrap_or_else(|| vec![Complex::from_re(design.v0())]);
        // The matrix paths read the loop-filter factor, the extra LTI
        // factor and the ISF column separately (not only their product
        // folded into λ), so all of them enter the identity hash: two
        // models hash equal only if every HTM block they assemble is
        // bit-identical.
        let mut h = htmpll_num::hash::Fnv1a::new();
        h.write_str("htmpll.model");
        h.write_u64(lambda.fingerprint());
        let hlf = design.loop_filter_tf();
        h.write_u64(hlf.num().coeffs().len() as u64);
        for &c in hlf.num().coeffs() {
            h.write_f64(c);
        }
        for &c in hlf.den().coeffs() {
            h.write_f64(c);
        }
        h.write_u64(vco_isf.len() as u64);
        for v in &vco_isf {
            h.write_f64(v.re);
            h.write_f64(v.im);
        }
        if let Some(extra) = &extra_lti {
            h.write_u64(extra.num().coeffs().len() as u64);
            for &c in extra.num().coeffs() {
                h.write_f64(c);
            }
            for &c in extra.den().coeffs() {
                h.write_f64(c);
            }
        }
        Ok(PllModel {
            design,
            vco_isf,
            lambda,
            extra_lti,
            fingerprint: h.finish(),
        })
    }
}

impl PllModel {
    /// Starts a [`PllModelBuilder`] for `design`. With no further
    /// options, [`build`](PllModelBuilder::build) produces the
    /// time-invariant VCO model (`v(t) ≡ K_vco/N`) matching the paper's
    /// §5 experimental setup.
    pub fn builder(design: PllDesign) -> PllModelBuilder {
        PllModelBuilder {
            design,
            delay: None,
            vco_isf: None,
        }
    }

    /// Stable identity hash over everything the frequency-domain
    /// evaluators read: the open-loop gain (including any folded delay),
    /// the loop-filter factor, the VCO ISF harmonics and `ω₀` — all by
    /// coefficient **bit patterns**. Two models with equal fingerprints
    /// produce bitwise-identical λ values and HTMs at every Laplace
    /// point, which is what lets one [`SweepCache`](crate::SweepCache)
    /// be shared across models (and across service requests) safely.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The underlying design.
    pub fn design(&self) -> &PllDesign {
        &self.design
    }

    /// The effective open-loop gain evaluator (time-invariant part).
    pub fn lambda(&self) -> &EffectiveGain {
        &self.lambda
    }

    /// True when the VCO model is time-invariant.
    pub fn is_time_invariant(&self) -> bool {
        self.vco_isf.len() == 1
    }

    /// The LTI open-loop gain `A(s)`.
    pub fn open_loop(&self) -> &htmpll_lti::Tf {
        self.lambda.open_loop()
    }

    /// Time-varying effective gain `λ(s) = 𝟙ᵀṼ(s)` including all ISF
    /// harmonics, evaluated by truncated summation over `trunc` (a fixed
    /// [`Truncation`] or an `Auto` tolerance, resolved via
    /// [`resolve_truncation`](PllModel::resolve_truncation)).
    ///
    /// Falls back to the exact lattice-sum value for time-invariant
    /// VCOs regardless of `trunc`.
    pub fn lambda_tv(&self, s: Complex, trunc: impl Into<TruncationSpec>) -> Complex {
        if self.is_time_invariant() {
            return self.lambda.eval(s);
        }
        self.v_column(s, trunc).iter().copied().sum()
    }

    /// The rank-one column `Ṽ(s) = (ω₀/2π)·H̃_VCO·H̃_LF·𝟙` (paper
    /// eq. 29), in harmonic order `−K..K`.
    pub fn v_column(&self, s: Complex, trunc: impl Into<TruncationSpec>) -> Vec<Complex> {
        let trunc = self.resolve_truncation(trunc);
        let w0 = self.design.omega_ref();
        let weight = w0 / (2.0 * std::f64::consts::PI);
        let hlf = self.design.loop_filter_tf();
        trunc
            .harmonics()
            .map(|n| {
                // (H_VCO·H_LF·𝟙)_n = Σ_m v_{n−m}/(s+jnω₀) · H_LF(s+jmω₀)
                let pole = (s + Complex::from_im(n as f64 * w0)).recip();
                let mut acc = Complex::ZERO;
                for m in trunc.harmonics() {
                    let isf = self.isf_coeff(n - m);
                    if isf == Complex::ZERO {
                        continue;
                    }
                    let u = s + Complex::from_im(m as f64 * w0);
                    let mut fwd = hlf.eval(u);
                    if let Some(extra) = &self.extra_lti {
                        fwd *= extra.eval(u);
                    }
                    acc += isf * fwd;
                }
                acc * pole * weight
            })
            .collect()
    }

    fn isf_coeff(&self, k: i64) -> Complex {
        let half = (self.vco_isf.len() / 2) as i64;
        if k.abs() <= half {
            self.vco_isf[(k + half) as usize]
        } else {
            Complex::ZERO
        }
    }

    /// Closed-loop baseband→baseband transfer `H₀,₀(jω) = A(jω)/(1+λ(jω))`
    /// (paper eq. 38) — the Fig.-6 quantity. Exact-λ path (time-invariant
    /// VCO).
    pub fn h00(&self, omega: f64) -> Complex {
        self.h_band(0, omega)
    }

    /// Closed-loop band transfer `H_{n,m}(jω) = A(j(ω + nω₀))/(1+λ(jω))`
    /// — for the rank-one loop this is independent of the input band `m`:
    /// the sampler aliases all input bands identically (paper eq. 36).
    pub fn h_band(&self, n: i64, omega: f64) -> Complex {
        let s = Complex::from_im(omega);
        let shifted = s + Complex::from_im(n as f64 * self.design.omega_ref());
        self.open_loop().eval(shifted) / (Complex::ONE + self.lambda.eval(s))
    }

    /// Classical LTI closed loop `A(jω)/(1 + A(jω))` — the textbook
    /// approximation Fig. 6 compares against.
    pub fn h00_lti(&self, omega: f64) -> Complex {
        let a = self.open_loop().eval_jw(omega);
        a / (Complex::ONE + a)
    }

    /// Error transfer from reference phase to phase error
    /// `θ_ref − θ` at baseband: `1 − H₀,₀(jω)`.
    pub fn error_transfer(&self, omega: f64) -> Complex {
        Complex::ONE - self.h00(omega)
    }

    /// Full closed-loop HTM at Laplace point `s` via the rank-one
    /// Sherman–Morrison closed form (works for time-varying VCOs too).
    /// The result keeps the structured rank-one representation — O(n)
    /// storage, densified lazily only if a consumer asks for the full
    /// matrix.
    pub fn closed_loop_htm(&self, s: Complex, trunc: impl Into<TruncationSpec>) -> Htm {
        let trunc = self.resolve_truncation(trunc);
        let v = self.v_column(s, trunc);
        let ones = vec![Complex::ONE; trunc.dim()];
        let (repr, _) = closed_loop_rank_one(&v, &ones);
        Htm::from_repr(trunc, self.design.omega_ref(), repr)
    }

    /// Assembles the **open-loop** HTM `G̃(s) = H̃_VCO·(H̃_LF·H̃_PFD)`
    /// — the input to the reference closed-loop solve, exposed so sweep
    /// caches can factor it once per Laplace point. The association
    /// order is chosen for structure propagation: the rank-one PFD is
    /// absorbed first (`Diag·RankOne` and `BT·RankOne` both stay rank
    /// one), so the whole product is assembled in O(n·b) and the repr
    /// the closed-loop solver sees admits the Sherman–Morrison closed
    /// form.
    pub fn open_loop_htm(&self, s: Complex, trunc: Truncation) -> Htm {
        let w0 = self.design.omega_ref();
        let pfd = SamplerHtm::new(w0);
        let mut fwd_tf = self.design.loop_filter_tf();
        if let Some(extra) = &self.extra_lti {
            fwd_tf = &fwd_tf * extra;
        }
        let lf = LtiHtm::new(fwd_tf, w0);
        let vco = VcoHtm::new(self.vco_isf.clone(), w0);
        &vco.htm(s, trunc) * &(&lf.htm(s, trunc) * &pfd.htm(s, trunc))
    }

    /// Full closed-loop HTM via dense block assembly and LU solve — the
    /// O(n³) reference path used to validate the closed form and to
    /// support non-rank-one extensions.
    ///
    /// # Errors
    ///
    /// Propagates the solve error when evaluated exactly on a closed-loop
    /// pole.
    pub fn closed_loop_htm_dense(
        &self,
        s: Complex,
        trunc: impl Into<TruncationSpec>,
    ) -> Result<Htm, CoreError> {
        let trunc = self.resolve_truncation(trunc);
        let _span = htmpll_obs::span_labeled("core", "closed_loop_htm_dense", || {
            format!("dim={}", trunc.dim())
        });
        Ok(self.open_loop_htm(s, trunc).closed_loop()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(ratio: f64) -> PllModel {
        PllModel::builder(PllDesign::reference_design(ratio).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn smw_matches_dense_closed_loop() {
        let m = model(0.3);
        let t = Truncation::new(6);
        for &(re, im) in &[(0.0, 0.4), (0.02, 1.3), (0.0, 2.7)] {
            let s = Complex::new(re, im);
            let fast = m.closed_loop_htm(s, t);
            let dense = m.closed_loop_htm_dense(s, t).unwrap();
            let err = fast.as_matrix().max_diff(dense.as_matrix());
            assert!(err < 1e-10, "s={s}: err {err}");
        }
    }

    #[test]
    fn h00_matches_htm_element_at_large_truncation() {
        // The closed-form H₀₀ uses the exact λ; the HTM path truncates.
        // They must agree as K grows.
        let m = model(0.3);
        let w = 0.8;
        let exact = m.h00(w);
        let err_at = |k: usize| {
            let htm = m.closed_loop_htm(Complex::from_im(w), Truncation::new(k));
            (htm.band(0, 0) - exact).abs()
        };
        // Truncated λ converges like 1/K: require closeness at K = 200
        // and monotone improvement over K = 25.
        assert!(err_at(200) < 1e-2 * exact.abs(), "err {}", err_at(200));
        assert!(err_at(200) < err_at(25));
    }

    #[test]
    fn band_transfer_independent_of_input_band() {
        let m = model(0.25);
        let t = Truncation::new(4);
        let htm = m.closed_loop_htm(Complex::from_im(0.5), t);
        // Rank-one structure: H_{n,m} constant across m.
        for n in t.harmonics() {
            let base = htm.band(n, 0);
            for mm in t.harmonics() {
                assert!((htm.band(n, mm) - base).abs() < 1e-12 * (1.0 + base.abs()));
            }
        }
    }

    #[test]
    fn slow_loop_reduces_to_lti() {
        let m = model(0.01);
        for w in [0.05, 0.2, 1.0, 3.0] {
            let tv = m.h00(w);
            let lti = m.h00_lti(w);
            assert!(
                (tv - lti).abs() < 0.02 * (1.0 + lti.abs()),
                "w={w}: {tv} vs {lti}"
            );
        }
    }

    #[test]
    fn fast_loop_departs_from_lti() {
        let m = model(0.25);
        // Near the passband edge the time-varying response peaks well
        // above the LTI prediction.
        let mut max_ratio: f64 = 0.0;
        for k in 0..30 {
            let w = 0.5 + 1.5 * k as f64 / 29.0;
            let ratio = m.h00(w).abs() / m.h00_lti(w).abs();
            max_ratio = max_ratio.max(ratio);
        }
        assert!(max_ratio > 1.2, "expected visible peaking, got {max_ratio}");
    }

    #[test]
    fn dc_tracking() {
        // Type-2 loop: H₀₀ → 1 as ω → 0 (the PLL tracks reference phase).
        let m = model(0.2);
        let h = m.h00(1e-4);
        assert!((h - Complex::ONE).abs() < 1e-3, "{h}");
        assert!(m.error_transfer(1e-4).abs() < 1e-3);
    }

    #[test]
    fn time_varying_vco_changes_response() {
        let d = PllDesign::reference_design(0.2).unwrap();
        let ti = PllModel::builder(d.clone()).build().unwrap();
        let v0 = d.v0();
        let tv = PllModel::builder(d)
            .vco_isf(vec![
                Complex::from_re(0.4 * v0),
                Complex::from_re(v0),
                Complex::from_re(0.4 * v0),
            ])
            .build()
            .unwrap();
        assert!(ti.is_time_invariant());
        assert!(!tv.is_time_invariant());
        let t = Truncation::new(8);
        let s = Complex::from_im(0.6);
        let a = ti.closed_loop_htm(s, t).band(0, 0);
        let b = tv.closed_loop_htm(s, t).band(0, 0);
        assert!((a - b).abs() > 1e-3 * a.abs(), "TV ISF should matter");
        // And the TV path still matches its dense reference.
        let dense = tv.closed_loop_htm_dense(s, t).unwrap();
        let fast = tv.closed_loop_htm(s, t);
        assert!(fast.as_matrix().max_diff(dense.as_matrix()) < 1e-10);
    }

    #[test]
    fn loop_delay_erodes_effective_margin() {
        use crate::analysis::analyze;
        let design = PllDesign::reference_design(0.1).unwrap();
        let t_ref = 1.0 / design.f_ref();
        let plain = analyze(&PllModel::builder(design.clone()).build().unwrap()).unwrap();
        let quarter = analyze(
            &PllModel::builder(design.clone())
                .loop_delay(0.25 * t_ref, 6)
                .build()
                .unwrap(),
        )
        .unwrap();
        let half = analyze(
            &PllModel::builder(design)
                .loop_delay(0.5 * t_ref, 6)
                .build()
                .unwrap(),
        )
        .unwrap();
        // Delay always costs effective margin, monotonically in τ. (The
        // loss is smaller than the naive ω·τ because the delay also
        // reshapes the alias interference and moves the crossover down —
        // verified against an exact-delay truncated sum below.)
        assert!(quarter.phase_margin_eff_deg < plain.phase_margin_eff_deg);
        assert!(half.phase_margin_eff_deg < quarter.phase_margin_eff_deg);
        assert!(quarter.omega_ug_eff < plain.omega_ug_eff);
    }

    #[test]
    fn pade_delay_lambda_matches_exact_delay_sum() {
        // The Padé-rationalized λ must reproduce the exact-delay
        // truncated sum Σ A(u)·e^{−uτ} across the band.
        let design = PllDesign::reference_design(0.1).unwrap();
        let t_ref = 1.0 / design.f_ref();
        let tau = 0.25 * t_ref;
        let w0 = design.omega_ref();
        let a = design.open_loop_gain();
        let model = PllModel::builder(design)
            .loop_delay(tau, 6)
            .build()
            .unwrap();
        for w in [0.2, 0.7, 1.3, 0.45 * w0] {
            let s = Complex::from_im(w);
            let mut exact = Complex::ZERO;
            for m in -2000i64..=2000 {
                let u = s + Complex::from_im(m as f64 * w0);
                exact += a.eval(u) * (-u.scale(tau)).exp();
            }
            let pade = model.lambda().eval(s);
            assert!(
                (pade - exact).abs() < 2e-3 * (1.0 + exact.abs()),
                "w={w}: pade {pade} vs exact {exact}"
            );
        }
    }

    #[test]
    fn zero_delay_matches_plain_model() {
        let design = PllDesign::reference_design(0.15).unwrap();
        let plain = PllModel::builder(design.clone()).build().unwrap();
        let delayed = PllModel::builder(design)
            .loop_delay(0.0, 4)
            .build()
            .unwrap();
        for w in [0.2, 1.0, 2.5] {
            assert!((plain.h00(w) - delayed.h00(w)).abs() < 1e-9);
        }
    }

    #[test]
    fn lambda_tv_reduces_to_exact_for_ti() {
        let m = model(0.3);
        let s = Complex::from_im(0.9);
        let a = m.lambda_tv(s, Truncation::new(5));
        let b = m.lambda().eval(s);
        assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
    }
}
