//! Time-domain transients from the time-varying frequency-domain model.
//!
//! The HTM analysis lives in the frequency domain, but designers care
//! about step responses. Because the closed-loop baseband transfer
//! `H₀,₀(jω)` of a **stable** loop is the Fourier transform of a real,
//! causal, decaying kernel, the response to a reference phase step is
//! recovered by numerical inversion:
//!
//! ```text
//! y_step(t) = 1/2 + (1/π) ∫₀^∞ Re[ H₀,₀(jω)·e^{jωt} / (jω) ] dω
//! ```
//!
//! (the principal-value form of the inverse transform of `H/(jω)`;
//! the `1/2` is the half-residue of the pole at the origin, and
//! `H₀,₀(0) = 1` for a type-2 loop). Integration runs over a log grid
//! to `ω_max` — the kernel's smoothness makes the paper's exact-`λ`
//! evaluation cheap enough to sample densely.
//!
//! This predicts the *baseband component* of the true LPTV response;
//! the simulator's step response additionally carries the once-per-`T`
//! correction ripple (content in the other bands), so comparisons use
//! the period-averaged simulated waveform.
//!
//! ```no_run
//! use htmpll_core::{transient::step_response, PllDesign, PllModel};
//!
//! let model = PllModel::builder(PllDesign::reference_design(0.1).unwrap()).build().unwrap();
//! let y = step_response(&model, &[1.0, 5.0, 30.0]);
//! assert!((y[2] - 1.0).abs() < 0.05); // settles to unity (type-2 loop)
//! ```

use crate::closed_loop::PllModel;
use htmpll_num::quad::integrate;
use htmpll_num::Complex;

/// Number of logarithmic subdivisions per decade used by the inversion
/// integral.
const SEGMENTS_PER_DECADE: usize = 6;

/// Evaluates the closed-loop response to a **unit reference phase step**
/// at the given times (time units of `θ`; the reply settles to 1 for a
/// type-2 loop).
///
/// Valid for stable loops only: the inversion integral of an unstable
/// `H₀,₀` does not converge to the (growing) true response.
pub fn step_response(model: &PllModel, ts: &[f64]) -> Vec<f64> {
    step_response_of(|w| model.h00(w), model.design().omega_ref(), ts)
}

/// Same inversion driven by an arbitrary baseband closed-loop response
/// `h(ω)` with `h(0) = 1` (used for LTI references and the
/// sample-and-hold model).
pub fn step_response_of<F: Fn(f64) -> Complex>(h: F, omega0: f64, ts: &[f64]) -> Vec<f64> {
    // Integration range: far below the loop dynamics up to several
    // reference harmonics (the integrand decays like 1/ω² past the loop
    // bandwidth; the notches at mω₀ are smooth in the integrand).
    let w_lo = 1e-4;
    let w_hi = 8.0 * omega0;
    let decades = (w_hi / w_lo).log10();
    let n_seg = (decades * SEGMENTS_PER_DECADE as f64).ceil() as usize;

    ts.iter()
        .map(|&t| {
            if t < 0.0 {
                return 0.0;
            }
            let integrand = |w: f64| {
                let v = h(w) * Complex::cis(w * t) / Complex::from_im(w);
                v.re
            };
            // Piecewise adaptive integration over log-spaced segments
            // keeps the oscillatory tail (period 2π/t) resolved without
            // a global fine grid.
            let mut acc = 0.0;
            for k in 0..n_seg {
                let a = w_lo * (w_hi / w_lo).powf(k as f64 / n_seg as f64);
                let b = w_lo * (w_hi / w_lo).powf((k + 1) as f64 / n_seg as f64);
                // Subdivide segments that span many oscillation periods.
                let osc = ((b - a) * t / (2.0 * std::f64::consts::PI)).ceil().max(1.0) as usize;
                for i in 0..osc {
                    let aa = a + (b - a) * i as f64 / osc as f64;
                    let bb = a + (b - a) * (i + 1) as f64 / osc as f64;
                    acc += integrate(integrand, aa, bb, 1e-10);
                }
            }
            // Analytic correction for the skipped [0, w_lo) head: there
            // the integrand is ≈ H(0)·sin(ωt)/ω, contributing
            // H(0)·Si(w_lo·t)/π — without it, late times drift by
            // ~w_lo·t/π.
            let h0 = h(w_lo).re;
            let x = w_lo * t;
            let si = x - x * x * x / 18.0 + x.powi(5) / 600.0; // Si series, x ≪ 1
            0.5 + (acc + h0 * si) / std::f64::consts::PI
        })
        .collect()
}

/// Phase response to a **unit reference frequency step** (a ramp in
/// reference phase, `θ_ref(t) = t`): the synthesizer hop-settling
/// waveform. Computed by the same inversion applied to `H/(jω)²`,
/// with the double-pole head handled analytically:
/// for `H(0) = 1`, `H′(0) = μ` (real for these loops),
///
/// ```text
/// y_ramp(t) = t + μ + (1/π)·∫₀^∞ Re[(H(jω) − 1 − jωμ)·e^{jωt}/(jω)²] dω
///             + tail corrections for the skipped [0, w_lo) head
/// ```
///
/// For a type-2 loop the tracking error `t − y_ramp(t)` settles to
/// zero; its transient is the hop-settling profile.
pub fn ramp_response_of<F: Fn(f64) -> Complex>(h: F, omega0: f64, ts: &[f64]) -> Vec<f64> {
    let w_lo = 1e-4;
    let w_hi = 8.0 * omega0;
    let decades = (w_hi / w_lo).log10();
    let n_seg = (decades * SEGMENTS_PER_DECADE as f64).ceil() as usize;

    // H′(0) by a centered difference at small ω (μ is the loop's
    // velocity-error coefficient; imaginary to first order: H(jω) ≈
    // 1 + jω·μ_c with μ_c = dH/d(jω)).
    let dw = w_lo;
    let mu = ((h(dw) - h(dw).conj()) / Complex::new(0.0, 2.0 * dw)).re;

    ts.iter()
        .map(|&t| {
            if t < 0.0 {
                return 0.0;
            }
            let integrand = |w: f64| {
                let num = h(w) - Complex::ONE - Complex::new(0.0, w * mu);
                let v = num * Complex::cis(w * t) / Complex::from_im(w).sqr();
                v.re
            };
            let mut acc = 0.0;
            for k in 0..n_seg {
                let a = w_lo * (w_hi / w_lo).powf(k as f64 / n_seg as f64);
                let b = w_lo * (w_hi / w_lo).powf((k + 1) as f64 / n_seg as f64);
                let osc = ((b - a) * t / (2.0 * std::f64::consts::PI)).ceil().max(1.0) as usize;
                for i in 0..osc {
                    let aa = a + (b - a) * i as f64 / osc as f64;
                    let bb = a + (b - a) * (i + 1) as f64 / osc as f64;
                    acc += integrate(integrand, aa, bb, 1e-10);
                }
            }
            // Skipped head [0, w_lo): integrand → Re[H″-ish] ≈ bounded;
            // its contribution is O(w_lo·t²) for small w_lo·t — include
            // the leading term via the value at w_lo.
            let head = integrand(w_lo) * w_lo;
            t + mu + (acc + head) / std::f64::consts::PI
        })
        .collect()
}

/// Frequency-step tracking error `e(t) = t − y_ramp(t)` of the
/// time-varying model — the hop-settling profile a synthesizer
/// datasheet quotes.
pub fn frequency_step_error(model: &PllModel, ts: &[f64]) -> Vec<f64> {
    let ys = ramp_response_of(|w| model.h00(w), model.design().omega_ref(), ts);
    ts.iter().zip(&ys).map(|(&t, y)| t - y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PllDesign;
    use htmpll_lti::response;
    use htmpll_lti::Tf;

    #[test]
    fn matches_exact_lti_step_for_slow_loop() {
        // For a very slow loop, H00 ≈ A/(1+A) and the inversion must
        // match the exact PFE-based step response of the LTI closed loop.
        let design = PllDesign::reference_design(0.02).unwrap();
        let model = PllModel::builder(design.clone()).build().unwrap();
        let cl: Tf = design.open_loop_gain().feedback_unity().unwrap();
        let ts = [0.5, 2.0, 5.0, 12.0];
        let exact = response::step_response(&cl, &ts).unwrap();
        let inverted = step_response(&model, &ts);
        for ((t, e), g) in ts.iter().zip(&exact).zip(&inverted) {
            assert!((e - g).abs() < 0.02, "t={t}: exact {e} vs inverted {g}");
        }
    }

    #[test]
    fn settles_to_unity() {
        let model = PllModel::builder(PllDesign::reference_design(0.15).unwrap())
            .build()
            .unwrap();
        let y = step_response(&model, &[40.0]);
        assert!((y[0] - 1.0).abs() < 0.02, "{}", y[0]);
    }

    #[test]
    fn starts_near_zero_and_is_causal() {
        let model = PllModel::builder(PllDesign::reference_design(0.15).unwrap())
            .build()
            .unwrap();
        let y = step_response(&model, &[-1.0, 0.05]);
        assert_eq!(y[0], 0.0);
        assert!(y[1].abs() < 0.2, "{}", y[1]);
    }

    #[test]
    fn ramp_error_settles_to_zero_for_type2() {
        let model = PllModel::builder(PllDesign::reference_design(0.1).unwrap())
            .build()
            .unwrap();
        let ts = [5.0, 15.0, 40.0];
        let errs = frequency_step_error(&model, &ts);
        // Transient at first, then zero velocity error (type-2 loop).
        assert!(errs[0].abs() > 1e-3, "{errs:?}");
        assert!(errs[2].abs() < 2e-2, "{errs:?}");
    }

    #[test]
    fn ramp_matches_exact_lti_in_slow_limit() {
        // Slow loop: invert H_LTI and compare against the exact PFE ramp
        // response (step response of H/s).
        let design = PllDesign::reference_design(0.02).unwrap();
        let cl = design.open_loop_gain().feedback_unity().unwrap();
        let model = PllModel::builder(design).build().unwrap();
        let ts = [2.0, 6.0, 12.0];
        let inverted = ramp_response_of(|w| model.h00_lti(w), model.design().omega_ref(), &ts);
        // Exact ramp response = inverse Laplace of H/s² = step response
        // of H/s.
        let h_over_s = &cl * &Tf::integrator();
        let exact = response::step_response(&h_over_s, &ts).unwrap();
        for ((t, a), b) in ts.iter().zip(&inverted).zip(&exact) {
            assert!(
                (a - b).abs() < 0.03 * (1.0 + b.abs()),
                "t={t}: inverted {a} vs exact {b}"
            );
        }
    }

    #[test]
    fn fast_loop_rings_more_than_lti_predicts() {
        // Approaching the sampling limit the time-varying loop's damping
        // collapses: the step overshoot exceeds the LTI prediction.
        let design = PllDesign::reference_design(0.25).unwrap();
        let model = PllModel::builder(design.clone()).build().unwrap();
        let cl = design.open_loop_gain().feedback_unity().unwrap();
        let ts: Vec<f64> = (1..60).map(|k| 0.25 * k as f64).collect();
        let tv = step_response(&model, &ts);
        let lti = response::step_response(&cl, &ts).unwrap();
        let peak_tv = tv.iter().cloned().fold(0.0f64, f64::max);
        let peak_lti = lti.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            peak_tv > peak_lti + 0.05,
            "tv peak {peak_tv} vs lti peak {peak_lti}"
        );
    }
}
