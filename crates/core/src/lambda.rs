//! The effective open-loop gain `λ(s)` of a sampled PLL.
//!
//! For a PLL with a sampling PFD and time-invariant VCO, closing the loop
//! through the rank-one PFD HTM yields (paper eq. 36–37)
//!
//! ```text
//! λ(s) = Σ_{m∈ℤ} A(s + jmω₀)
//! ```
//!
//! — the classical open-loop gain plus **all of its aliases**. The paper's
//! central claim is that loop stability is governed by the margins of
//! `λ(jω)`, not `A(jω)`; LTI analysis is the `λ ≈ A` approximation, valid
//! only while `ω_UG ≪ ω₀`.
//!
//! Two evaluation paths are provided:
//!
//! * **Exact** ([`EffectiveGain::eval`]): partial fractions of `A` plus
//!   the `coth` lattice-sum closed forms — this is the paper's "symbolic
//!   expressions" capability, exact for any rational strictly proper `A`.
//! * **Truncated** ([`EffectiveGain::eval_truncated`]): brute-force
//!   `Σ_{|m| ≤ M}`, the numerical cross-check and the path that
//!   generalizes to non-rational gains.
//!
//! ```
//! use htmpll_core::{EffectiveGain, PllDesign};
//! use htmpll_num::Complex;
//!
//! let d = PllDesign::reference_design(0.3).unwrap();
//! let lam = EffectiveGain::new(&d.open_loop_gain(), d.omega_ref()).unwrap();
//! let s = Complex::from_im(1.0);
//! let exact = lam.eval(s);
//! let approx = lam.eval_truncated(s, 4000);
//! assert!((exact - approx).abs() < 1e-3 * exact.abs());
//! ```

use crate::error::{positive, CoreError};
use htmpll_lti::{Pfe, Tf};
use htmpll_num::hash::Fnv1a;
use htmpll_num::simd;
use htmpll_num::special::{lattice_poly, lattice_sum, MAX_LATTICE_ORDER};
use htmpll_num::Complex;

/// Per-pole data hoisted out of the λ evaluation loop: the lattice
/// polynomial `P_r` and the `(π/ω₀)^r` prefactor are functions of the
/// pole order alone, so the batch path computes them once at
/// construction instead of on every grid point. The values are produced
/// by the exact expressions `lattice_sum` uses, keeping the batch
/// result bitwise identical to the scalar path.
#[derive(Debug, Clone)]
struct PreTerm {
    pole: Complex,
    coeff: Complex,
    poly: Vec<f64>,
    factor: Complex,
}

/// The effective open-loop gain `λ(s) = Σ_m A(s + jmω₀)`.
#[derive(Debug, Clone)]
pub struct EffectiveGain {
    a: Tf,
    pfe: Pfe,
    pre: Vec<PreTerm>,
    omega0: f64,
    fingerprint: u64,
}

/// Relative distance below which an alias point `s ± jmω₀` counts as
/// "near" a pole of `A(s)` and is evaluated through the partial-fraction
/// residue expansion instead of the monomial-basis rational form. Within
/// this neighborhood the expanded denominator polynomial cancels
/// catastrophically (down to an exact floating-point zero on the pole
/// itself), while the residue form divides by `(s − p)` directly and
/// stays accurate to the residue precision.
const NEAR_POLE_REL: f64 = 1e-6;

impl EffectiveGain {
    /// Prepares the exact evaluator for the open-loop gain `a`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::OpenLoopNotStrictlyProper`] — the harmonic sum
    ///   diverges for non-strictly-proper gains.
    /// * [`CoreError::InvalidParameter`] — non-positive `omega0`.
    /// * Pole extraction failures are propagated.
    /// * [`CoreError::InvalidParameter`] with name `"pole multiplicity"`
    ///   when a pole multiplicity exceeds the supported lattice order.
    pub fn new(a: &Tf, omega0: f64) -> Result<EffectiveGain, CoreError> {
        positive("omega0", omega0)?;
        if !a.is_strictly_proper() {
            return Err(CoreError::OpenLoopNotStrictlyProper);
        }
        let pfe = Pfe::expand(a, 1e-6)?;
        if pfe.max_order() > MAX_LATTICE_ORDER {
            return Err(CoreError::InvalidParameter {
                name: "pole multiplicity",
                value: pfe.max_order() as f64,
            });
        }
        let mut h = Fnv1a::new();
        h.write_str("htmpll.lambda");
        h.write_f64(omega0);
        h.write_u64(a.num().coeffs().len() as u64);
        for &c in a.num().coeffs() {
            h.write_f64(c);
        }
        for &c in a.den().coeffs() {
            h.write_f64(c);
        }
        let pre = pfe
            .terms
            .iter()
            .map(|t| PreTerm {
                pole: t.pole,
                coeff: t.coeff,
                poly: lattice_poly(t.order),
                factor: Complex::from_re(std::f64::consts::PI / omega0).powi(t.order as i32),
            })
            .collect();
        Ok(EffectiveGain {
            a: a.clone(),
            pfe,
            pre,
            omega0,
            fingerprint: h.finish(),
        })
    }

    /// Stable identity hash over the defining data (`A(s)` coefficient
    /// bit patterns and `ω₀`): two evaluators with the same fingerprint
    /// produce bitwise-identical values at every `s`, so caches keyed by
    /// `(fingerprint, s)` may be shared across models safely.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The underlying LTI open-loop gain `A(s)`.
    pub fn open_loop(&self) -> &Tf {
        &self.a
    }

    /// The partial-fraction expansion driving the exact evaluation.
    pub fn pfe(&self) -> &Pfe {
        &self.pfe
    }

    /// The reference fundamental `ω₀`.
    pub fn omega0(&self) -> f64 {
        self.omega0
    }

    /// Exact `λ(s)` via lattice sums: for
    /// `A(s) = Σ c_{i,r}/(s − p_i)^r`,
    /// `λ(s) = Σ c_{i,r}·S_r(s − p_i; ω₀)` with
    /// `S₁(z) = (π/ω₀)·coth(πz/ω₀)`.
    pub fn eval(&self, s: Complex) -> Complex {
        htmpll_obs::counter!("core", "lambda.eval").inc();
        let mut acc = Complex::ZERO;
        for term in &self.pfe.terms {
            acc += term.coeff * lattice_sum(s - term.pole, self.omega0, term.order);
        }
        acc
    }

    /// Exact `λ(jω)`.
    pub fn eval_jw(&self, omega: f64) -> Complex {
        self.eval(Complex::from_im(omega))
    }

    /// Exact `λ(jω)` at a batch of frequencies, written into `out`.
    ///
    /// The per-pole lattice polynomial and prefactor come precomputed
    /// from construction, the `coth` kernel is evaluated per lane, and
    /// the Horner/accumulate stage runs through the SIMD dispatch in
    /// [`htmpll_num::simd`]. Every lane performs exactly the operation
    /// sequence of [`eval_jw`](EffectiveGain::eval_jw), so the batch is
    /// **bitwise identical** to the pointwise path — grids may switch
    /// between them freely.
    ///
    /// # Panics
    ///
    /// Panics when `omegas` and `out` have different lengths.
    pub fn eval_jw_batch(&self, omegas: &[f64], out: &mut [Complex]) {
        assert_eq!(omegas.len(), out.len(), "batch length mismatch");
        htmpll_obs::counter!("core", "lambda.eval").add(omegas.len() as u64);
        const LANES: usize = 16;
        let scale = std::f64::consts::PI / self.omega0;
        for (ws, os) in omegas.chunks(LANES).zip(out.chunks_mut(LANES)) {
            let n = ws.len();
            let mut acc_re = [0.0_f64; LANES];
            let mut acc_im = [0.0_f64; LANES];
            let mut c_re = [0.0_f64; LANES];
            let mut c_im = [0.0_f64; LANES];
            for term in &self.pre {
                for (l, &w) in ws.iter().enumerate() {
                    let x = (Complex::from_im(w) - term.pole).scale(scale);
                    let c = x.coth();
                    c_re[l] = c.re;
                    c_im[l] = c.im;
                }
                simd::lambda_term_acc(
                    &mut acc_re[..n],
                    &mut acc_im[..n],
                    &c_re[..n],
                    &c_im[..n],
                    &term.poly,
                    term.factor,
                    term.coeff,
                );
            }
            for (l, o) in os.iter_mut().enumerate() {
                *o = Complex::new(acc_re[l], acc_im[l]);
            }
        }
    }

    /// Evaluates `A(z)` for one alias term, routing points that fall
    /// within [`NEAR_POLE_REL`] of a pole of `A` through the
    /// partial-fraction residue expansion. The monomial-basis rational
    /// form loses all significance there — the expanded denominator
    /// cancels catastrophically and can even evaluate to an exact zero,
    /// producing `inf`/`NaN` — while the residue form keeps the singular
    /// `c/(z − p)^r` factor explicit, matching the behavior of the exact
    /// lattice-sum path at the same point.
    fn eval_alias_term(&self, z: Complex) -> Complex {
        let scale = 1.0 + z.abs();
        if self.pfe.min_pole_distance(z) < NEAR_POLE_REL * scale {
            htmpll_obs::counter!("core", "lambda.near_pole_pfe").inc();
            // Floor the singular distance at the rounding scale: a
            // bitwise-on-pole alias saturates at the same ~1/ε magnitude
            // the exact coth/csch² kernels reach on that grid point,
            // instead of overflowing to inf/NaN.
            self.pfe.eval_floored(z, f64::EPSILON * scale)
        } else {
            self.a.eval(z)
        }
    }

    /// Truncated sum `Σ_{|m| ≤ terms} A(s + jmω₀)` — the numerical
    /// cross-check for [`eval`](EffectiveGain::eval).
    ///
    /// Alias terms landing within `~1e-6` (relative) of a pole of `A`
    /// are evaluated through the PFE residue expansion so the truncated
    /// path stays finite and agrees with the exact path even when
    /// `s ± jmω₀` grazes a pole.
    pub fn eval_truncated(&self, s: Complex, terms: usize) -> Complex {
        htmpll_obs::counter!("core", "lambda.eval_truncated").inc();
        htmpll_obs::record!("core", "lambda.eval_truncated.terms").record(terms as f64);
        let mut acc = self.eval_alias_term(s);
        for m in 1..=terms as i64 {
            let shift = Complex::from_im(m as f64 * self.omega0);
            acc += self.eval_alias_term(s + shift) + self.eval_alias_term(s - shift);
        }
        acc
    }

    /// The aliasing excess `λ(jω) − A(jω)`: what LTI analysis ignores.
    pub fn aliasing_excess(&self, omega: f64) -> Complex {
        self.eval_jw(omega) - self.a.eval_jw(omega)
    }

    /// Exact derivative `dλ/ds`, from the lattice-sum identity
    /// `d/ds S_r(s − p) = −r·S_{r+1}(s − p)`.
    ///
    /// # Panics
    ///
    /// Panics if a pole multiplicity reaches the maximum supported
    /// lattice order (the derivative needs one order more); loop
    /// transfer functions sit far below that bound.
    pub fn eval_deriv(&self, s: Complex) -> Complex {
        let mut acc = Complex::ZERO;
        for term in &self.pfe.terms {
            let z = s - term.pole;
            acc -= term.coeff * (term.order as f64) * lattice_sum(z, self.omega0, term.order + 1);
        }
        acc
    }

    /// Suggests a truncation order `K` such that the truncated harmonic
    /// sum's tail `|Σ_{|m|>K} A(s + jmω₀)|` stays below `tol` anywhere
    /// on the imaginary axis, from the open-loop gain's high-frequency
    /// asymptote `A(s) ≈ c·s^{−d}` (relative degree `d ≥ 2`):
    /// `tail ≈ 2c/((d−1)·ω₀^d·K^{d−1})`.
    ///
    /// # Panics
    ///
    /// Panics when `tol <= 0`.
    pub fn suggest_truncation(&self, tol: f64) -> usize {
        assert!(tol > 0.0, "tolerance must be positive");
        let d = self.a.relative_degree().max(2) as f64;
        let c = (self.a.num().leading() / self.a.den().leading()).abs();
        let k = (2.0 * c / ((d - 1.0) * self.omega0.powf(d) * tol)).powf(1.0 / (d - 1.0));
        let k = (k.ceil() as usize).max(2);
        htmpll_obs::counter!("core", "lambda.suggest_truncation").inc();
        htmpll_obs::record!("core", "lambda.suggest_truncation.k").record(k as f64);
        k
    }

    /// Renders the **closed-form symbolic expression** for `λ(s)` — the
    /// capability the paper highlights ("can be used to obtain both
    /// numerical results and symbolic expressions"). Each simple pole
    /// contributes a `coth` term and each repeated pole a `csch²`-family
    /// derivative term:
    ///
    /// ```text
    /// λ(s) = Σᵢ cᵢ·Sᵣ(s − pᵢ; ω₀),  S₁(z) = (π/ω₀)·coth(π·z/ω₀)
    /// ```
    pub fn symbolic(&self) -> String {
        let mut out = String::from("λ(s) =");
        for (k, term) in self.pfe.terms.iter().enumerate() {
            if k > 0 {
                out.push_str(
                    "
      +",
                );
            }
            let pole = if term.pole.abs() < 1e-12 {
                "s".to_string()
            } else {
                format!("(s - ({:.6}))", term.pole)
            };
            let kernel = match term.order {
                1 => format!("(π/ω₀)·coth(π·{pole}/ω₀)"),
                2 => format!("(π/ω₀)²·csch²(π·{pole}/ω₀)"),
                r => format!("S_{r}({pole}; ω₀)   [∂^{}coth]", r - 1),
            };
            out.push_str(&format!(" ({:.6})·{kernel}", term.coeff));
        }
        out.push_str(&format!(
            "
      with ω₀ = {:.6} rad/s",
            self.omega0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PllDesign;
    use htmpll_num::Poly;

    fn reference_lambda(ratio: f64) -> EffectiveGain {
        let d = PllDesign::reference_design(ratio).unwrap();
        EffectiveGain::new(&d.open_loop_gain(), d.omega_ref()).unwrap()
    }

    #[test]
    fn exact_matches_truncated_on_reference_loop() {
        let lam = reference_lambda(0.2);
        for w in [0.1, 0.5, 1.0, 2.0, 4.9] {
            let s = Complex::from_im(w);
            let exact = lam.eval(s);
            // The brute-force tail decays only like 1/M (the PFE has a
            // simple-pole component), so compare at two term counts and
            // require the longer sum to be closer to the exact value.
            let brute = lam.eval_truncated(s, 20_000);
            assert!(
                (exact - brute).abs() < 1e-4 * (1.0 + exact.abs()),
                "w={w}: exact {exact} vs brute {brute}"
            );
            let shorter = lam.eval_truncated(s, 2_000);
            assert!(
                (exact - brute).abs() < (exact - shorter).abs() + 1e-12,
                "w={w}: longer sum must approach the closed form"
            );
        }
    }

    #[test]
    fn slow_loop_lambda_approaches_a() {
        // ω_UG/ω₀ = 0.01: aliases sit 100× above crossover; near ω_UG the
        // LTI approximation is excellent.
        let lam = reference_lambda(0.01);
        let w = 1.0;
        let a = lam.open_loop().eval_jw(w);
        let l = lam.eval_jw(w);
        assert!(
            (l - a).abs() < 0.02 * a.abs(),
            "λ {l} should be close to A {a}"
        );
        assert!(lam.aliasing_excess(w).abs() < 0.02 * a.abs());
    }

    #[test]
    fn fast_loop_lambda_deviates_from_a() {
        // ω_UG/ω₀ = 0.5: the first alias lands right above crossover.
        let lam = reference_lambda(0.5);
        let w = 1.0;
        let a = lam.open_loop().eval_jw(w);
        let l = lam.eval_jw(w);
        assert!(
            (l - a).abs() > 0.2 * a.abs(),
            "λ {l} should deviate strongly from A {a}"
        );
    }

    #[test]
    fn conjugate_symmetry() {
        // A real ⇒ λ(s̄) = λ(s)̄; on the jω axis λ(−jω) = conj λ(jω).
        let lam = reference_lambda(0.3);
        let l_pos = lam.eval(Complex::from_im(0.7));
        let l_neg = lam.eval(Complex::from_im(-0.7));
        assert!((l_pos.conj() - l_neg).abs() < 1e-10 * l_pos.abs());
    }

    #[test]
    fn periodicity_in_omega0() {
        // λ(s + jω₀) = λ(s): the alias sum is invariant under a one-band
        // shift.
        let lam = reference_lambda(0.25);
        let s = Complex::new(0.1, 0.4);
        let a = lam.eval(s);
        let b = lam.eval(s + Complex::from_im(lam.omega0()));
        assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn batch_eval_bitwise_matches_pointwise() {
        let lam = reference_lambda(0.3);
        let w0 = lam.omega0();
        // Regular points, a dense span crossing lane boundaries, and
        // pole-grazing frequencies (λ blows up at k·ω₀; whatever bits
        // the scalar path produces there, the batch must reproduce).
        let mut omegas: Vec<f64> = (0..37).map(|i| 0.01 + 0.13 * i as f64).collect();
        omegas.extend([w0, 2.0 * w0, w0 + 1e-12, 0.0]);
        let mut batch = vec![Complex::ZERO; omegas.len()];
        lam.eval_jw_batch(&omegas, &mut batch);
        for (&w, v) in omegas.iter().zip(&batch) {
            let direct = lam.eval_jw(w);
            assert_eq!(direct.re.to_bits(), v.re.to_bits(), "w={w}");
            assert_eq!(direct.im.to_bits(), v.im.to_bits(), "w={w}");
        }
    }

    #[test]
    fn rejects_improper_gain() {
        let biproper = Tf::from_coeffs(vec![1.0, 1.0], vec![2.0, 1.0]).unwrap();
        assert!(matches!(
            EffectiveGain::new(&biproper, 1.0),
            Err(CoreError::OpenLoopNotStrictlyProper)
        ));
    }

    #[test]
    fn rejects_bad_omega() {
        let a = Tf::integrator();
        assert!(EffectiveGain::new(&a, 0.0).is_err());
    }

    #[test]
    fn simple_first_order_closed_form() {
        // A = 1/(s + 1): λ(s) = (π/ω₀)·coth(π(s+1)/ω₀).
        let a = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
        let lam = EffectiveGain::new(&a, 2.0).unwrap();
        let s = Complex::new(0.5, 0.3);
        let expect = Complex::from_re(std::f64::consts::PI / 2.0)
            * ((s + 1.0).scale(std::f64::consts::PI / 2.0)).coth();
        assert!((lam.eval(s) - expect).abs() < 1e-12);
    }

    #[test]
    fn suggested_truncation_meets_tolerance() {
        let lam = reference_lambda(0.2);
        for tol in [1e-2, 1e-3, 1e-4] {
            let k = lam.suggest_truncation(tol);
            // Actual tail at a representative point.
            let s = Complex::from_im(0.7);
            let exact = lam.eval(s);
            let truncated = lam.eval_truncated(s, k);
            let tail = (exact - truncated).abs();
            assert!(tail <= 2.0 * tol, "tol {tol}: K = {k} leaves tail {tail}");
            // And the bound is not wildly pessimistic (within 100×).
            if k > 4 {
                let loose = lam.eval_truncated(s, k / 4);
                assert!((exact - loose).abs() > tail);
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let lam = reference_lambda(0.2);
        let s = Complex::new(0.05, 0.6);
        let h = 1e-6;
        let fd =
            (lam.eval(s + Complex::from_re(h)) - lam.eval(s - Complex::from_re(h))) / (2.0 * h);
        let exact = lam.eval_deriv(s);
        assert!(
            (fd - exact).abs() < 1e-5 * (1.0 + exact.abs()),
            "fd {fd} vs exact {exact}"
        );
        // And along the imaginary direction (analyticity check).
        let fd_im = (lam.eval(s + Complex::from_im(h)) - lam.eval(s - Complex::from_im(h)))
            / Complex::new(0.0, 2.0 * h);
        assert!((fd_im - exact).abs() < 1e-5 * (1.0 + exact.abs()));
    }

    #[test]
    fn symbolic_rendering_lists_all_poles() {
        let lam = reference_lambda(0.2);
        let text = lam.symbolic();
        // The charge-pump loop: coth (simple poles) + csch² (double pole
        // at DC) terms, and the fundamental.
        assert!(text.contains("coth"), "{text}");
        assert!(text.contains("csch²"), "{text}");
        assert!(text.contains("ω₀ = 5"), "{text}");
        // One separator line between consecutive terms.
        assert_eq!(text.matches("\n      +").count() + 1, lam.pfe().terms.len());
    }

    #[test]
    fn truncated_is_finite_on_pole_grazing_alias_points() {
        // Doctor-grid adversarial points: each `s` here lands some alias
        // `s ± jmω₀` bitwise-on a pole of A (double integrator at 0 via
        // s = jmω₀ / s = 0; filter pole −4 via s = −4 + j·2ω₀). The raw
        // rational form evaluated num/0 → inf there; the PFE route must
        // stay finite at the pole-scale magnitude the exact path reports.
        let lam = reference_lambda(0.2); // ω₀ = 5; A poles: 0 (×2), −4
        let w0 = lam.omega0();
        for s in [
            Complex::from_im(w0),
            Complex::from_im(3.0 * w0),
            Complex::ZERO,
            Complex::new(-4.0, 2.0 * w0),
        ] {
            let t = lam.eval_truncated(s, 50);
            assert!(t.is_finite(), "s={s}: truncated returned {t}");
            assert!(t.abs() > 1e9, "s={s}: expected pole-scale value, got {t}");
        }
    }

    #[test]
    fn truncated_matches_exact_near_alias_poles() {
        // Walk toward two alias poles from δ = 1e-3 down to 1e-9. Both
        // paths lose precision like ~ε/δ (the coth kernel through its
        // argument reduction, the residue route through the stored δ),
        // so the agreement bound tracks that conditioning; the old
        // monomial-basis path diverged from it and went non-finite.
        let lam = reference_lambda(0.2);
        let w0 = lam.omega0();
        for &delta in &[1e-3, 1e-5, 1e-7, 1e-9] {
            for s in [
                Complex::new(delta, w0),              // m=−1 alias near pole 0
                Complex::new(-4.0 + delta, 2.0 * w0), // m=−2 alias near pole −4
            ] {
                let exact = lam.eval(s);
                let trunc = lam.eval_truncated(s, 20_000);
                assert!(trunc.is_finite(), "δ={delta}, s={s}: {trunc}");
                let rel = (exact - trunc).abs() / exact.abs();
                let bound = 1e-5 + 40.0 * f64::EPSILON / delta;
                assert!(
                    rel < bound,
                    "δ={delta}, s={s}: exact {exact} vs truncated {trunc} (rel {rel} > {bound})"
                );
            }
        }
    }

    #[test]
    fn double_pole_at_origin_handled() {
        // A = 1/s² — pure double integrator; λ via csch² identity.
        let a = Tf::new(Poly::constant(1.0), Poly::new(vec![0.0, 0.0, 1.0])).unwrap();
        let lam = EffectiveGain::new(&a, 1.0).unwrap();
        let s = Complex::new(0.2, 0.1);
        // Tail of the order-2 sum decays like 1/M: 30k terms ⇒ ~7e−5.
        let brute = lam.eval_truncated(s, 30_000);
        assert!((lam.eval(s) - brute).abs() < 1e-4);
    }
}
