//! Loop analysis: LTI vs time-varying margins, bandwidth and peaking.
//!
//! [`analyze`] produces the quantities the paper's Figs. 6–7 are built
//! from:
//!
//! * the classical margins of `A(jω)` (what LTI analysis predicts),
//! * the margins of the **effective** open-loop gain `λ(jω)` (what the
//!   loop actually sees once sampling is accounted for),
//! * closed-loop −3 dB bandwidth and passband peaking of `H₀,₀(jω)`,
//! * an HTM-Nyquist stability verdict on `λ`.
//!
//! ```
//! use htmpll_core::{analyze, PllDesign, PllModel};
//!
//! let m = PllModel::builder(PllDesign::reference_design(0.1).unwrap()).build().unwrap();
//! let r = analyze(&m).unwrap();
//! // Sampling always erodes the phase margin relative to LTI.
//! assert!(r.phase_margin_eff_deg < r.phase_margin_lti_deg);
//! assert!(r.omega_ug_eff >= r.omega_ug_lti);
//! ```

use crate::closed_loop::PllModel;
use crate::error::CoreError;
use crate::quality::{PointQuality, QualitySummary};
use crate::sweep::SweepCache;
use htmpll_htm::nyquist::{strip_contour, strip_zero_count_from_values};
use htmpll_lti::{
    bandwidth_3db_precomputed, margin_scan_grid, peaking_db_precomputed,
    stability_margins_precomputed, MarginError, Margins,
};
use htmpll_num::Complex;
use htmpll_par::{par_map_cancellable, Deadline, ThreadBudget};

/// Analysis products for one PLL model.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Ratio `ω_UG/ω₀` of LTI crossover to reference frequency — the
    /// paper's fast-loop knob.
    pub omega_ug_ratio: f64,
    /// LTI unity-gain frequency of `A(jω)` (rad/s).
    pub omega_ug_lti: f64,
    /// LTI phase margin of `A(jω)` (degrees) — the horizontal line in
    /// Fig. 7.
    pub phase_margin_lti_deg: f64,
    /// Unity-gain frequency of the effective gain `λ(jω)` (rad/s) —
    /// `ω_UG,eff`, upper plot of Fig. 7.
    pub omega_ug_eff: f64,
    /// Phase margin of `λ(jω)` (degrees) — lower plot of Fig. 7.
    pub phase_margin_eff_deg: f64,
    /// Closed-loop −3 dB bandwidth of `H₀,₀(jω)` (rad/s), if found.
    pub bandwidth_3db: Option<f64>,
    /// Passband peaking of `H₀,₀(jω)` in dB relative to DC.
    pub peaking_db: f64,
    /// Closed-loop peaking predicted by the LTI approximation, dB.
    pub peaking_lti_db: f64,
    /// HTM-Nyquist verdict on the effective gain.
    pub nyquist_stable: bool,
    /// True when `|λ(jω)|` never fell below unity inside the first
    /// Nyquist band: the loop is at or beyond the sampling stability
    /// limit and the reported effective margins are the band-edge
    /// values (`ω_UG,eff = ω₀/2`, phase margin from `arg λ(jω₀/2)`).
    pub beyond_sampling_limit: bool,
    /// Numerical-quality roll-up of every scan point behind this report
    /// (λ margin scan, closed-loop scans, Nyquist contour — non-finite
    /// values count as failed) plus a dense closed-loop probe at
    /// `s = jω_UG,eff`, whose condition estimate and verdict gauge how
    /// trustworthy the truncated `I + G̃` solves are at crossover.
    pub quality: QualitySummary,
}

impl AnalysisReport {
    /// Phase-margin degradation caused by time-varying (sampling)
    /// effects, in degrees: `PM_LTI − PM_eff`.
    pub fn phase_margin_degradation_deg(&self) -> f64 {
        self.phase_margin_lti_deg - self.phase_margin_eff_deg
    }

    /// Relative phase-margin degradation, as a fraction of the LTI
    /// prediction (the paper quotes "9 % worse" in this metric).
    pub fn phase_margin_degradation_rel(&self) -> f64 {
        self.phase_margin_degradation_deg() / self.phase_margin_lti_deg
    }
}

/// Frequency scan range used by margin extraction, relative to the LTI
/// unity-gain frequency.
const SCAN_DECADES_DOWN: f64 = 1e-4;

/// Analyzes a PLL model.
///
/// The scan window spans from `ω_UG·10⁻⁴` to just below `ω₀/2` for the
/// effective gain — `λ(jω)` is `ω₀`-periodic along the axis, so its
/// margins live in the first Nyquist band — and up to `100·ω_UG` for the
/// LTI gain.
///
/// # Errors
///
/// Propagates margin-extraction failures (e.g. a loop so slow/fast that
/// no unity crossing exists in the scan window).
pub fn analyze(model: &PllModel) -> Result<AnalysisReport, CoreError> {
    analyze_with(model, ThreadBudget::Auto)
}

/// [`analyze`] with an explicit thread budget for the margin, peaking
/// and Nyquist-contour scans. Every scan grid is evaluated on the
/// `htmpll-par` pool and the extractors run over the precomputed
/// values, so the report is **bitwise-identical for any thread count**
/// (including the sequential `Fixed(1)` path).
///
/// # Errors
///
/// Propagates margin-extraction failures (e.g. a loop so slow/fast that
/// no unity crossing exists in the scan window).
pub fn analyze_with(model: &PllModel, threads: ThreadBudget) -> Result<AnalysisReport, CoreError> {
    analyze_cached(model, threads, &SweepCache::new())
}

/// [`analyze_with`] routing every cacheable evaluation (the dense
/// closed-loop probe at the effective crossover) through a caller-owned
/// [`SweepCache`]. Since cache keys carry the model fingerprint, a
/// long-lived cache can be shared across calls **and across models**:
/// repeated analyses of the same design skip the HTM assembly and
/// factorization entirely. Cache reuse never changes results — hits
/// return the identical bits the first evaluation produced.
///
/// # Errors
///
/// Propagates margin-extraction failures (e.g. a loop so slow/fast that
/// no unity crossing exists in the scan window).
pub fn analyze_cached(
    model: &PllModel,
    threads: ThreadBudget,
    cache: &SweepCache,
) -> Result<AnalysisReport, CoreError> {
    analyze_deadline(model, threads, cache, &Deadline::none())
}

/// Collapses one cancellable scan into its values, or the deadline
/// error naming the phase that ran out of budget.
fn scan_or_deadline(
    slots: Vec<Option<Complex>>,
    phase: &'static str,
) -> Result<Vec<Complex>, CoreError> {
    let n = slots.len();
    let vals: Vec<Complex> = slots.into_iter().flatten().collect();
    if vals.len() < n {
        Err(CoreError::DeadlineExceeded { phase })
    } else {
        Ok(vals)
    }
}

/// [`analyze_cached`] under a cooperative [`Deadline`]: every scan grid
/// is cancellable, so an expired budget surfaces as
/// [`CoreError::DeadlineExceeded`] (naming the scan phase) instead of
/// running the remaining grids to completion. With
/// [`Deadline::none`] this is exactly [`analyze_cached`] — same scans,
/// same bits.
///
/// The margin extractors need the *whole* scan to bracket crossings, so
/// analysis has no partial-result mode: the deadline either leaves
/// enough budget for a full report or the analysis fails retryably.
///
/// # Errors
///
/// [`CoreError::DeadlineExceeded`] when the budget expires mid-scan;
/// otherwise as [`analyze_cached`].
pub fn analyze_deadline(
    model: &PllModel,
    threads: ThreadBudget,
    cache: &SweepCache,
    deadline: &Deadline,
) -> Result<AnalysisReport, CoreError> {
    let _span = htmpll_obs::span("core", "analyze");
    let a = model.open_loop().clone();
    let w0 = model.design().omega_ref();

    // Scan window scaled to the reference frequency so designs in
    // physical units (MHz references) and normalized units both work:
    // any practical loop crossover sits within [1e-7, 1e2]·ω₀.
    let lti_grid = margin_scan_grid(1e-7 * w0, 100.0 * w0);
    let lti_vals = scan_or_deadline(
        par_map_cancellable(threads, &lti_grid, deadline, |_, &w| a.eval_jw(w)),
        "LTI margin",
    )?;
    let lti = stability_margins_precomputed(|w| a.eval_jw(w), &lti_grid, &lti_vals)?;
    // λ has a pole at every multiple of ω₀ on the jω axis (the aliased
    // integrators); stay strictly inside the first band.
    let lam = model.lambda();
    let band_edge = 0.499_999 * w0;
    let lam_grid = margin_scan_grid(lti.omega_ug * SCAN_DECADES_DOWN, band_edge);
    let lam_vals = scan_or_deadline(
        par_map_cancellable(threads, &lam_grid, deadline, |_, &w| lam.eval_jw(w)),
        "effective-gain margin",
    )?;
    let (eff, beyond_limit) =
        match stability_margins_precomputed(|w| lam.eval_jw(w), &lam_grid, &lam_vals) {
            Ok(m) => (m, false),
            // |λ| ≥ 1 across the whole band: the loop has reached the
            // sampling stability limit. By the symmetry λ(j(ω₀−ω)) = λ̄(jω),
            // λ(jω₀/2) is real (and negative for these loops), so the
            // band-edge phase margin is the natural limiting value.
            Err(MarginError::NoUnityCrossing) => {
                let edge = lam.eval_jw(band_edge);
                (
                    Margins {
                        omega_ug: band_edge,
                        phase_margin_deg: 180.0 + edge.arg().to_degrees(),
                        omega_pc: Some(band_edge),
                        gain_margin_db: Some(-20.0 * edge.abs().log10()),
                    },
                    true,
                )
            }
            Err(e) => return Err(e.into()),
        };

    // H₀,₀(jω) = A(jω)/(1+λ(jω)) is a valid transfer function at any ω
    // (λ is entire along the axis except the aliased-integrator poles at
    // mω₀, where H₀,₀ has physical notches) — scan past the band edge so
    // wideband fast loops still report a −3 dB point. One grid, one
    // parallel evaluation, shared by the bandwidth and peaking
    // extractors (the legacy path evaluated it once per extractor).
    let w_ref = lti.omega_ug * SCAN_DECADES_DOWN;
    let h00_scan_hi = 100.0 * lti.omega_ug;
    let h_grid = margin_scan_grid(w_ref, h00_scan_hi);
    let h_vals = scan_or_deadline(
        par_map_cancellable(threads, &h_grid, deadline, |_, &w| model.h00(w)),
        "closed-loop",
    )?;
    let bw = bandwidth_3db_precomputed(|w| model.h00(w), w_ref, &h_grid, &h_vals);
    let pk = peaking_db_precomputed(|w| model.h00(w), w_ref, &h_vals);
    let hlti_vals = scan_or_deadline(
        par_map_cancellable(threads, &h_grid, deadline, |_, &w| model.h00_lti(w)),
        "LTI closed-loop",
    )?;
    let pk_lti = peaking_db_precomputed(|w| model.h00_lti(w), w_ref, &hlti_vals);
    // Zeros of 1 + λ in the right-half period strip, counted on a
    // contour offset slightly right of the jω-axis integrator poles.
    // The contour gains are evaluated on the pool; the winding count
    // depends only on the value sequence.
    let contour = strip_contour(w0, 1e-4 * lti.omega_ug, 4096);
    let contour_vals = scan_or_deadline(
        par_map_cancellable(threads, &contour, deadline, |_, &s| lam.eval(s)),
        "Nyquist contour",
    )?;
    let stable = strip_zero_count_from_values(&contour_vals) == 0;

    // Quality roll-up: every scalar scan point (non-finite → failed),
    // plus one dense closed-loop probe at the effective crossover for a
    // representative condition estimate of the truncated I+G̃ solves.
    let mut quality = QualitySummary::default();
    for v in lam_vals.iter().chain(&h_vals).chain(&contour_vals) {
        let q = if v.re.is_finite() && v.im.is_finite() {
            PointQuality::Exact
        } else {
            PointQuality::Failed {
                reason: "non-finite scan value".into(),
            }
        };
        quality.absorb(&q, 0.0, 0.0);
    }
    let probe_trunc = model.resolve_truncation(htmpll_htm::TruncationSpec::default());
    match cache.dense_robust(model, Complex::from_im(eff.omega_ug), probe_trunc) {
        Ok(d) => quality.absorb(&d.quality, d.report.cond_estimate, d.report.residual),
        Err(reason) => quality.absorb(&PointQuality::Failed { reason }, 0.0, 0.0),
    }

    Ok(AnalysisReport {
        omega_ug_ratio: lti.omega_ug / w0,
        omega_ug_lti: lti.omega_ug,
        phase_margin_lti_deg: lti.phase_margin_deg,
        omega_ug_eff: eff.omega_ug,
        phase_margin_eff_deg: eff.phase_margin_deg,
        bandwidth_3db: bw,
        peaking_db: pk,
        peaking_lti_db: pk_lti,
        nyquist_stable: stable,
        beyond_sampling_limit: beyond_limit,
        quality,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PllDesign;

    fn report(ratio: f64) -> AnalysisReport {
        let m = PllModel::builder(PllDesign::reference_design(ratio).unwrap())
            .build()
            .unwrap();
        analyze(&m).unwrap()
    }

    #[test]
    fn slow_loop_agrees_with_lti() {
        let r = report(0.02);
        assert!((r.omega_ug_eff / r.omega_ug_lti - 1.0).abs() < 0.02);
        assert!(r.phase_margin_degradation_deg() < 2.0);
        assert!(r.nyquist_stable);
        assert!((r.omega_ug_ratio - 0.02).abs() < 1e-4);
    }

    #[test]
    fn degradation_grows_with_ratio() {
        // The Fig.-7 monotonicity: faster loops lose more phase margin
        // and push ω_UG,eff further above ω_UG.
        let ratios = [0.05, 0.1, 0.15, 0.2, 0.25];
        let reports: Vec<AnalysisReport> = ratios.iter().map(|&r| report(r)).collect();
        for pair in reports.windows(2) {
            assert!(
                pair[1].phase_margin_eff_deg < pair[0].phase_margin_eff_deg,
                "PM must degrade: {} then {}",
                pair[0].phase_margin_eff_deg,
                pair[1].phase_margin_eff_deg
            );
            assert!(
                pair[1].omega_ug_eff / pair[1].omega_ug_lti
                    >= pair[0].omega_ug_eff / pair[0].omega_ug_lti - 1e-9
            );
        }
        // LTI margin is the same constant for every ratio (shape fixed).
        for r in &reports {
            assert!((r.phase_margin_lti_deg - reports[0].phase_margin_lti_deg).abs() < 1e-6);
        }
    }

    #[test]
    fn peaking_worsens_with_ratio() {
        let slow = report(0.05);
        let fast = report(0.25);
        assert!(
            fast.peaking_db > slow.peaking_db + 1.0,
            "peaking {} vs {}",
            fast.peaking_db,
            slow.peaking_db
        );
        // The LTI prediction barely moves (it is ratio-independent up to
        // the shared shape).
        assert!((fast.peaking_lti_db - slow.peaking_lti_db).abs() < 0.5);
    }

    #[test]
    fn effective_crossover_exceeds_lti() {
        for ratio in [0.05, 0.1, 0.2] {
            let r = report(ratio);
            assert!(
                r.omega_ug_eff >= r.omega_ug_lti * 0.999,
                "ratio {ratio}: {} vs {}",
                r.omega_ug_eff,
                r.omega_ug_lti
            );
        }
    }

    #[test]
    fn bandwidth_found_and_reasonable() {
        let r = report(0.1);
        let bw = r.bandwidth_3db.expect("bandwidth in scan window");
        // Closed-loop bandwidth sits around ω_UG,eff (within a factor ~3).
        assert!(
            bw > 0.5 * r.omega_ug_eff && bw < 5.0 * r.omega_ug_eff,
            "{bw}"
        );
    }

    #[test]
    fn degradation_metrics() {
        let r = report(0.2);
        let d = r.phase_margin_degradation_deg();
        assert!((r.phase_margin_lti_deg - r.phase_margin_eff_deg - d).abs() < 1e-12);
        assert!(r.phase_margin_degradation_rel() > 0.0);
        assert!(r.phase_margin_degradation_rel() < 1.5);
    }

    #[test]
    fn deadline_surfaces_as_retryable_error() {
        let m = PllModel::builder(PllDesign::reference_design(0.1).unwrap())
            .build()
            .unwrap();
        let err = analyze_deadline(
            &m,
            ThreadBudget::Fixed(1),
            &SweepCache::new(),
            &Deadline::after_checks(10),
        )
        .unwrap_err();
        assert!(
            err.to_string().starts_with(crate::quality::DEADLINE_REASON),
            "{err}"
        );
        // An unbounded deadline is exactly analyze_cached.
        let cache = SweepCache::new();
        let a = analyze_cached(&m, ThreadBudget::Fixed(2), &cache).unwrap();
        let b = analyze_deadline(&m, ThreadBudget::Fixed(2), &cache, &Deadline::none()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn beyond_sampling_limit_detected() {
        // With this loop shape the effective gain stays above 0 dB across
        // the whole band for fast loops: the sampling stability limit.
        let fast = report(0.4);
        assert!(fast.beyond_sampling_limit);
        assert!(!fast.nyquist_stable);
        assert!(fast.phase_margin_eff_deg.abs() < 1.0); // band-edge arg ≈ −180°
        let slow = report(0.1);
        assert!(!slow.beyond_sampling_limit);
        assert!(slow.nyquist_stable);
    }
}
