//! Loop-design optimization under time-varying constraints.
//!
//! The classic bandwidth trade: a wide loop suppresses VCO noise but
//! passes reference noise — and, in a sampled loop, also erodes the
//! *effective* phase margin in a way LTI analysis cannot see. This
//! module grid-searches the reference design family
//! (`ω_UG/ω₀` × zero/pole spread) for the lowest integrated output
//! phase noise subject to a minimum **effective** margin — the design
//! task the paper's method makes tractable.
//!
//! ```no_run
//! use htmpll_core::optimize::{optimize_loop, NoiseSpec, OptimizeSpec};
//! use htmpll_core::NoiseShape;
//!
//! let spec = OptimizeSpec {
//!     min_pm_eff_deg: 45.0,
//!     ratios: (0.02, 0.25, 12),
//!     spreads: vec![3.0, 4.0, 6.0],
//! };
//! let noise = NoiseSpec {
//!     reference: NoiseShape::White { level: 1e-12 },
//!     vco: NoiseShape::PowerLaw { level_at_ref: 1e-10, w_ref: 1.0, exponent: 2 },
//!     band: (1e-3, 0.45),
//! };
//! let best = optimize_loop(&spec, &noise).unwrap();
//! assert!(best.report.phase_margin_eff_deg >= 45.0);
//! ```

use crate::analysis::{analyze, AnalysisReport};
use crate::closed_loop::PllModel;
use crate::design::PllDesign;
use crate::error::CoreError;
use crate::noise::{NoiseModel, NoiseShape};

/// Search space and constraints for [`optimize_loop`].
#[derive(Debug, Clone)]
pub struct OptimizeSpec {
    /// Minimum acceptable phase margin of the **effective** gain `λ`
    /// (degrees). Candidates beyond the sampling limit are rejected
    /// outright.
    pub min_pm_eff_deg: f64,
    /// `(lo, hi, points)` sweep of `ω_UG/ω₀`.
    pub ratios: (f64, f64, usize),
    /// Zero/pole spread candidates (each gives LTI margin
    /// `atan(spread) − atan(1/spread)`).
    pub spreads: Vec<f64>,
}

/// Noise environment for the objective.
#[derive(Debug, Clone)]
pub struct NoiseSpec {
    /// Reference-path phase noise PSD.
    pub reference: NoiseShape,
    /// Free-running VCO phase noise PSD.
    pub vco: NoiseShape,
    /// Integration band `(w_lo, w_hi_frac·ω₀)` — the upper edge is a
    /// fraction of the reference frequency so the band scales with the
    /// candidate's `ω₀`.
    pub band: (f64, f64),
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The design.
    pub design: PllDesign,
    /// The loop-speed ratio it was built at.
    pub ratio: f64,
    /// The zero/pole spread it was built with.
    pub spread: f64,
    /// Full analysis report.
    pub report: AnalysisReport,
    /// Integrated output phase noise over the spec band (rad² in the
    /// chosen phase units).
    pub integrated_noise: f64,
}

/// Grid-searches the design family and returns the feasible candidate
/// with the lowest integrated output phase noise.
///
/// # Errors
///
/// Propagates construction/analysis failures; returns
/// [`CoreError::InvalidParameter`] (`"feasible set"`) when no candidate
/// meets the margin constraint.
pub fn optimize_loop(spec: &OptimizeSpec, noise: &NoiseSpec) -> Result<Candidate, CoreError> {
    let (lo, hi, n) = spec.ratios;
    let mut best: Option<Candidate> = None;
    for i in 0..n.max(1) {
        let ratio = lo + (hi - lo) * i as f64 / (n.max(2) - 1) as f64;
        for &spread in &spec.spreads {
            let design = PllDesign::reference_design_shaped(ratio, spread)?;
            let model = PllModel::builder(design.clone()).build()?;
            let report = analyze(&model)?;
            if report.beyond_sampling_limit
                || !report.nyquist_stable
                || report.phase_margin_eff_deg < spec.min_pm_eff_deg
            {
                continue;
            }
            let nm = NoiseModel::new(&model, 6);
            let w0 = design.omega_ref();
            let integrated = nm.integrated_phase_noise(
                noise.band.0,
                noise.band.1 * w0,
                &|w| noise.reference.psd(w),
                &|w| noise.vco.psd(w),
            );
            let cand = Candidate {
                design,
                ratio,
                spread,
                report,
                integrated_noise: integrated,
            };
            match &best {
                Some(b) if b.integrated_noise <= cand.integrated_noise => {}
                _ => best = Some(cand),
            }
        }
    }
    best.ok_or(CoreError::InvalidParameter {
        name: "feasible set",
        value: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise_env() -> NoiseSpec {
        NoiseSpec {
            reference: NoiseShape::White { level: 1e-12 },
            vco: NoiseShape::PowerLaw {
                level_at_ref: 3e-11,
                w_ref: 1.0,
                exponent: 2,
            },
            band: (1e-3, 0.45),
        }
    }

    #[test]
    fn finds_feasible_optimum() {
        let spec = OptimizeSpec {
            min_pm_eff_deg: 45.0,
            ratios: (0.03, 0.25, 8),
            spreads: vec![3.0, 4.0, 6.0],
        };
        let best = optimize_loop(&spec, &noise_env()).unwrap();
        assert!(best.report.phase_margin_eff_deg >= 45.0);
        assert!(best.integrated_noise.is_finite() && best.integrated_noise > 0.0);
        assert!(best.ratio >= 0.03 && best.ratio <= 0.25);
    }

    #[test]
    fn margin_constraint_binds() {
        // With VCO noise dominant, wider loops win — until the effective
        // margin floor stops them. A stricter floor must push the chosen
        // ratio DOWN.
        let loose = OptimizeSpec {
            min_pm_eff_deg: 30.0,
            ratios: (0.03, 0.25, 10),
            spreads: vec![4.0],
        };
        let strict = OptimizeSpec {
            min_pm_eff_deg: 55.0,
            ..loose.clone()
        };
        let env = noise_env();
        let a = optimize_loop(&loose, &env).unwrap();
        let b = optimize_loop(&strict, &env).unwrap();
        assert!(
            a.ratio > b.ratio,
            "loose {} should allow a faster loop than strict {}",
            a.ratio,
            b.ratio
        );
        // And the stricter design trades noise for margin.
        assert!(b.integrated_noise >= a.integrated_noise);
    }

    #[test]
    fn infeasible_spec_errors() {
        let spec = OptimizeSpec {
            min_pm_eff_deg: 89.0, // unreachable: LTI margin tops out < 80°
            ratios: (0.05, 0.2, 4),
            spreads: vec![4.0],
        };
        assert!(optimize_loop(&spec, &noise_env()).is_err());
    }

    #[test]
    fn reference_noise_dominant_prefers_narrow_loops() {
        // Flip the environment: huge reference noise, quiet VCO — the
        // optimizer should pick the slowest allowed loop.
        let env = NoiseSpec {
            reference: NoiseShape::White { level: 1e-8 },
            vco: NoiseShape::PowerLaw {
                level_at_ref: 1e-16,
                w_ref: 1.0,
                exponent: 2,
            },
            band: (1e-3, 0.45),
        };
        let spec = OptimizeSpec {
            min_pm_eff_deg: 20.0,
            ratios: (0.03, 0.25, 10),
            spreads: vec![4.0],
        };
        let best = optimize_loop(&spec, &env).unwrap();
        assert!(
            best.ratio < 0.06,
            "expected the slowest loop, got {}",
            best.ratio
        );
    }
}
