//! Per-point quality verdicts for graceful-degradation sweeps.
//!
//! Grid evaluations near the interesting regimes — ω_UG → ω₀, points on
//! or next to closed-loop poles, extreme truncations — used to abort the
//! whole sweep on the first ill-conditioned solve. The robust grid entry
//! points instead finish every point and attach a [`PointQuality`]
//! verdict, aggregated into a [`QualitySummary`] so callers (and the
//! `plltool doctor` health check) can see at a glance how much of a grid
//! degraded and how badly.

use crate::error::CoreError;
use htmpll_num::SolveReport;
use std::fmt;

/// Failure-reason prefix for points (and whole analyses) that ran out
/// of budget: every deadline-induced `Failed` verdict starts with this
/// string, so the service layer can distinguish "the budget expired"
/// (retryable with a larger `--deadline-ms`) from genuine numerical
/// failure.
pub const DEADLINE_REASON: &str = "deadline exceeded";

/// How trustworthy one grid point is.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub enum PointQuality {
    /// First-rung solve, condition and pivot-growth gates passed, no
    /// refinement correction needed: full working precision.
    Exact,
    /// The solve needed help — an iterative-refinement correction was
    /// kept or the solver escalated to complete pivoting — but the
    /// result satisfies the residual check against the *original*
    /// matrix. Trustworthy.
    Refined,
    /// The matrix was singular (or ill-conditioned beyond the gate) to
    /// working precision; the value solves a Tikhonov-perturbed nearby
    /// problem `A + δI`. Magnitudes are indicative, fine structure is
    /// not — treat as "the loop is on/near a pole here".
    Perturbed,
    /// No usable value could be produced (non-finite inputs, or the
    /// escalation ladder itself failed). The point's value is absent.
    Failed {
        /// Human-readable reason, e.g. the solver error.
        reason: String,
    },
}

impl PointQuality {
    /// True when the point carries a value (everything except
    /// [`PointQuality::Failed`]).
    pub fn is_usable(&self) -> bool {
        !matches!(self, PointQuality::Failed { .. })
    }

    /// True for the degraded verdicts (`Perturbed` or `Failed`).
    pub fn is_degraded(&self) -> bool {
        matches!(self, PointQuality::Perturbed | PointQuality::Failed { .. })
    }

    /// Short verdict slug without the failure reason (`exact`,
    /// `refined`, `perturbed`, `failed`) — for event labels and table
    /// columns where the full [`fmt::Display`] form is too wide.
    pub fn name(&self) -> &'static str {
        match self {
            PointQuality::Exact => "exact",
            PointQuality::Refined => "refined",
            PointQuality::Perturbed => "perturbed",
            PointQuality::Failed { .. } => "failed",
        }
    }

    /// Grades a solver report: `Perturbed` when the Tikhonov rung ran,
    /// `Refined` when the ladder escalated or a refinement correction
    /// was kept, `Exact` otherwise.
    pub fn from_report(report: &SolveReport) -> PointQuality {
        if report.perturbed {
            PointQuality::Perturbed
        } else if report.escalated() || report.refinement_kept {
            PointQuality::Refined
        } else {
            PointQuality::Exact
        }
    }
}

impl fmt::Display for PointQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointQuality::Exact => write!(f, "exact"),
            PointQuality::Refined => write!(f, "refined"),
            PointQuality::Perturbed => write!(f, "perturbed"),
            PointQuality::Failed { reason } => write!(f, "failed ({reason})"),
        }
    }
}

/// One evaluated grid point: the value (absent when the point failed),
/// its verdict and the numerical evidence behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome<T> {
    /// The computed value; `None` exactly when `quality` is `Failed`.
    pub value: Option<T>,
    /// The verdict.
    pub quality: PointQuality,
    /// Condition estimate of the accepted factorization (0.0 for
    /// scalar/closed-form points with no factorization).
    pub cond: f64,
    /// Relative backward residual of the solve (0.0 when not
    /// applicable).
    pub residual: f64,
}

impl<T> PointOutcome<T> {
    /// A full-precision point.
    pub fn exact(value: T) -> PointOutcome<T> {
        PointOutcome {
            value: Some(value),
            quality: PointQuality::Exact,
            cond: 0.0,
            residual: 0.0,
        }
    }

    /// A failed point with a reason.
    pub fn failed(reason: impl Into<String>) -> PointOutcome<T> {
        PointOutcome {
            value: None,
            quality: PointQuality::Failed {
                reason: reason.into(),
            },
            cond: 0.0,
            residual: 0.0,
        }
    }

    /// A point skipped because the sweep's budget expired before it was
    /// evaluated ([`DEADLINE_REASON`] as the failure reason).
    pub fn deadline_exceeded() -> PointOutcome<T> {
        PointOutcome::failed(DEADLINE_REASON)
    }

    /// True when this point failed because the budget expired rather
    /// than for a numerical reason.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(&self.quality, PointQuality::Failed { reason } if reason.starts_with(DEADLINE_REASON))
    }
}

/// A whole grid of [`PointOutcome`]s, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome<T> {
    /// One outcome per grid point, index-aligned with the input grid.
    pub points: Vec<PointOutcome<T>>,
}

impl<T> GridOutcome<T> {
    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Aggregates the verdicts.
    pub fn summary(&self) -> QualitySummary {
        let mut s = QualitySummary::default();
        for p in &self.points {
            s.absorb(&p.quality, p.cond, p.residual);
        }
        s
    }

    /// Collapses to plain values, erroring on the first `Failed` point
    /// (in grid order). Degraded-but-usable (`Perturbed`) points pass
    /// through — strict callers that also reject those should inspect
    /// [`GridOutcome::summary`].
    ///
    /// # Errors
    ///
    /// [`CoreError::SweepFailed`] naming the first failed point.
    pub fn into_strict(self) -> Result<Vec<T>, CoreError> {
        self.points
            .into_iter()
            .enumerate()
            .map(|(i, p)| match p.value {
                Some(v) => Ok(v),
                None => Err(CoreError::SweepFailed {
                    reason: format!("grid point {i}: {}", p.quality),
                }),
            })
            .collect()
    }
}

/// Aggregated verdict counts and worst-case numerical evidence for a
/// grid (or a whole analysis).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QualitySummary {
    /// Points at full working precision.
    pub exact: usize,
    /// Points that needed refinement or pivoting escalation.
    pub refined: usize,
    /// Points solved through a Tikhonov-perturbed nearby problem.
    pub perturbed: usize,
    /// Points with no usable value.
    pub failed: usize,
    /// Worst (largest) condition estimate seen across the grid.
    pub worst_cond: f64,
    /// Worst (largest) relative backward residual seen across the grid.
    pub worst_residual: f64,
}

impl QualitySummary {
    /// Folds one point's verdict into the summary.
    pub fn absorb(&mut self, q: &PointQuality, cond: f64, residual: f64) {
        match q {
            PointQuality::Exact => self.exact += 1,
            PointQuality::Refined => self.refined += 1,
            PointQuality::Perturbed => self.perturbed += 1,
            PointQuality::Failed { .. } => self.failed += 1,
        }
        if cond.is_finite() && cond > self.worst_cond {
            self.worst_cond = cond;
        }
        if residual.is_finite() && residual > self.worst_residual {
            self.worst_residual = residual;
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &QualitySummary) {
        self.exact += other.exact;
        self.refined += other.refined;
        self.perturbed += other.perturbed;
        self.failed += other.failed;
        self.worst_cond = self.worst_cond.max(other.worst_cond);
        self.worst_residual = self.worst_residual.max(other.worst_residual);
    }

    /// Total points absorbed.
    pub fn total(&self) -> usize {
        self.exact + self.refined + self.perturbed + self.failed
    }

    /// Degraded points (`Perturbed` + `Failed`).
    pub fn degraded(&self) -> usize {
        self.perturbed + self.failed
    }

    /// True when nothing degraded.
    pub fn is_clean(&self) -> bool {
        self.degraded() == 0
    }
}

impl fmt::Display for QualitySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} exact / {} refined / {} perturbed / {} failed (worst cond {:.3e}, worst residual {:.3e})",
            self.exact, self.refined, self.perturbed, self.failed, self.worst_cond, self.worst_residual
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(PointQuality::Exact.is_usable());
        assert!(!PointQuality::Exact.is_degraded());
        assert!(PointQuality::Refined.is_usable());
        assert!(PointQuality::Perturbed.is_usable());
        assert!(PointQuality::Perturbed.is_degraded());
        let failed = PointQuality::Failed { reason: "x".into() };
        assert!(!failed.is_usable());
        assert!(failed.is_degraded());
        assert!(failed.to_string().contains('x'));
        assert_eq!(failed.name(), "failed");
        assert_eq!(PointQuality::Exact.name(), "exact");
        assert_eq!(PointQuality::Refined.name(), "refined");
        assert_eq!(PointQuality::Perturbed.name(), "perturbed");
    }

    #[test]
    fn summary_counts_and_worst_cases() {
        let grid = GridOutcome {
            points: vec![
                PointOutcome::exact(1.0),
                PointOutcome {
                    value: Some(2.0),
                    quality: PointQuality::Refined,
                    cond: 1e10,
                    residual: 1e-13,
                },
                PointOutcome {
                    value: Some(3.0),
                    quality: PointQuality::Perturbed,
                    cond: 1e16,
                    residual: 1e-7,
                },
                PointOutcome::failed("nan input"),
            ],
        };
        let s = grid.summary();
        assert_eq!((s.exact, s.refined, s.perturbed, s.failed), (1, 1, 1, 1));
        assert_eq!(s.total(), 4);
        assert_eq!(s.degraded(), 2);
        assert!(!s.is_clean());
        assert_eq!(s.worst_cond, 1e16);
        assert_eq!(s.worst_residual, 1e-7);
        assert!(s.to_string().contains("1 perturbed"));
    }

    #[test]
    fn strict_collapse_errors_on_failed() {
        let ok: GridOutcome<f64> = GridOutcome {
            points: vec![PointOutcome::exact(1.0), PointOutcome::exact(2.0)],
        };
        assert_eq!(ok.into_strict().unwrap(), vec![1.0, 2.0]);
        let bad: GridOutcome<f64> = GridOutcome {
            points: vec![PointOutcome::exact(1.0), PointOutcome::failed("pole")],
        };
        let err = bad.into_strict().unwrap_err();
        assert!(err.to_string().contains("pole"), "{err}");
    }

    #[test]
    fn merge_combines() {
        let mut a = QualitySummary {
            exact: 2,
            worst_cond: 1e3,
            ..QualitySummary::default()
        };
        let b = QualitySummary {
            failed: 1,
            worst_cond: 1e9,
            worst_residual: 1e-9,
            ..QualitySummary::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.worst_cond, 1e9);
        assert_eq!(a.worst_residual, 1e-9);
    }
}
