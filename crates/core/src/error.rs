//! Error type for PLL model construction and analysis.

use htmpll_lti::{FilterError, MarginError, TfError};
use htmpll_num::LuError;
use std::fmt;

/// Errors produced by the `htmpll-core` API.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A design parameter was non-positive or non-finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// The open-loop gain is not strictly proper, so the harmonic sum
    /// `λ(s) = Σ_m A(s + jmω₀)` does not converge.
    OpenLoopNotStrictlyProper,
    /// Transfer-function manipulation failed.
    Tf(TfError),
    /// Loop-filter construction failed.
    Filter(FilterError),
    /// Margin extraction failed.
    Margin(MarginError),
    /// A dense linear solve failed (closed loop evaluated on a pole).
    Solve(LuError),
    /// A strict sweep collapse hit a grid point with no usable value
    /// (see `GridOutcome::into_strict`); robust callers get the partial
    /// grid with per-point verdicts instead.
    SweepFailed {
        /// The first failed point, in grid order, with its verdict.
        reason: String,
    },
    /// The analysis's cooperative deadline expired before a scan
    /// completed. The `Display` form starts with
    /// [`DEADLINE_REASON`](crate::quality::DEADLINE_REASON) so callers
    /// can classify it as retryable without a dedicated error channel.
    DeadlineExceeded {
        /// The scan phase that ran out of budget.
        phase: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "parameter {name} must be positive and finite, got {value}"
                )
            }
            CoreError::OpenLoopNotStrictlyProper => {
                write!(
                    f,
                    "open-loop gain must be strictly proper for the harmonic sum to converge"
                )
            }
            CoreError::Tf(e) => write!(f, "transfer function error: {e}"),
            CoreError::Filter(e) => write!(f, "loop filter error: {e}"),
            CoreError::Margin(e) => write!(f, "margin extraction error: {e}"),
            CoreError::Solve(e) => write!(f, "linear solve error: {e}"),
            CoreError::SweepFailed { reason } => write!(f, "sweep point failed: {reason}"),
            CoreError::DeadlineExceeded { phase } => {
                write!(
                    f,
                    "{} during the {phase} scan",
                    crate::quality::DEADLINE_REASON
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<TfError> for CoreError {
    fn from(e: TfError) -> Self {
        CoreError::Tf(e)
    }
}

impl From<FilterError> for CoreError {
    fn from(e: FilterError) -> Self {
        CoreError::Filter(e)
    }
}

impl From<MarginError> for CoreError {
    fn from(e: MarginError) -> Self {
        CoreError::Margin(e)
    }
}

impl From<LuError> for CoreError {
    fn from(e: LuError) -> Self {
        CoreError::Solve(e)
    }
}

/// Validates a positive, finite parameter.
pub(crate) fn positive(name: &'static str, value: f64) -> Result<f64, CoreError> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(CoreError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::InvalidParameter {
            name: "icp",
            value: -1.0,
        };
        assert!(e.to_string().contains("icp"));
        assert!(CoreError::OpenLoopNotStrictlyProper
            .to_string()
            .contains("strictly proper"));
        let tf: CoreError = TfError::ZeroDenominator.into();
        assert!(tf.to_string().contains("denominator"));
        let lu: CoreError = LuError::NotSquare.into();
        assert!(lu.to_string().contains("square"));
        let m: CoreError = MarginError::NoUnityCrossing.into();
        assert!(m.to_string().contains("0 dB"));
        let fe: CoreError = FilterError::NonPositiveComponent {
            name: "R",
            value: 0.0,
        }
        .into();
        assert!(fe.to_string().contains('R'));
    }

    #[test]
    fn positive_validator() {
        assert!(positive("x", 1.0).is_ok());
        assert!(positive("x", 0.0).is_err());
        assert!(positive("x", f64::NAN).is_err());
        assert!(positive("x", f64::INFINITY).is_err());
    }
}
