//! Deterministic reference-spur prediction.
//!
//! A constant leakage current on the loop-filter node forces the locked
//! charge pump to deliver one compensating pulse per reference period.
//! That periodic correction is a disturbance current with energy at
//! every reference harmonic; the loop shapes it into phase sidebands —
//! **reference spurs** — at `kω₀`.
//!
//! In the HTM picture the disturbance enters through the diagonal path
//! `P_d = H̃_VCO·Z̃` and the closed loop responds through
//! `(I + G̃)⁻¹ = I − Ṽ𝟙ᵀ/(1+λ)`. Taking the DC disturbance limit
//! `s → 0` (where `A/(1+λ) → 1` for a type-2 loop) collapses the `k`-th
//! sideband to the remarkably compact closed form
//!
//! ```text
//! θ̃_k = −A(jkω₀) · θ_static,     θ_static = I_leak·T/I_cp
//! ```
//!
//! — the static phase offset re-radiated through the open-loop gain at
//! the spur frequency. The behavioral simulator confirms this to better
//! than 1 % (integration test `leakage_spur_prediction_matches_sim`).
//!
//! ```
//! use htmpll_core::{spurs::LeakageSpurs, PllDesign, PllModel};
//!
//! let model = PllModel::builder(PllDesign::reference_design(0.1).unwrap()).build().unwrap();
//! let spurs = LeakageSpurs::new(&model, 1e-3 * model.design().icp());
//! // The first reference spur dominates the higher harmonics.
//! assert!(spurs.sideband(1).abs() > spurs.sideband(2).abs());
//! ```

use crate::closed_loop::PllModel;
use htmpll_num::Complex;

/// Analytic leakage-induced reference spurs of a locked loop.
#[derive(Debug, Clone, Copy)]
pub struct LeakageSpurs<'a> {
    model: &'a PllModel,
    i_leak: f64,
}

impl<'a> LeakageSpurs<'a> {
    /// Creates the spur model for a leakage current `i_leak` (A).
    /// Accuracy requires the correction pulse to stay narrow:
    /// `|i_leak| ≪ I_cp`.
    pub fn new(model: &'a PllModel, i_leak: f64) -> Self {
        LeakageSpurs { model, i_leak }
    }

    /// The static phase offset `θ = I_leak·T/I_cp` (time units) the loop
    /// parks at to cancel the leakage each period.
    pub fn static_offset(&self) -> f64 {
        self.i_leak / (self.model.design().icp() * self.model.design().f_ref())
    }

    /// Complex amplitude of the phase sideband at `+kω₀` (time units):
    /// `θ̃_k = −A(jkω₀)·θ_static` for `k ≠ 0`; the `k = 0` "sideband" is
    /// the static offset itself.
    ///
    /// The real waveform carries the conjugate pair, i.e. a tone of
    /// peak amplitude `2|θ̃_k|` at `kω₀`.
    pub fn sideband(&self, k: i64) -> Complex {
        if k == 0 {
            return Complex::from_re(self.static_offset());
        }
        let w0 = self.model.design().omega_ref();
        let a = self.model.open_loop().eval(Complex::from_im(k as f64 * w0));
        -a * self.static_offset()
    }

    /// One-sided power of the spur line at `kω₀` in the **time-unit
    /// phase** record (what a PSD of `θ(t)` integrates to across the
    /// line): `2·|θ̃_k|²`.
    pub fn line_power(&self, k: i64) -> f64 {
        let a = self.sideband(k).abs();
        2.0 * a * a
    }

    /// Spur level in dBc at the synthesizer **output**: the output
    /// phase in radians is `φ = 2π·f_out·θ`, and a phase tone of peak
    /// `β` rad makes sidebands `20·log₁₀(β/2)` below the carrier.
    pub fn level_dbc(&self, k: i64) -> f64 {
        let d = self.model.design();
        let f_out = d.divider() * d.f_ref();
        let beta = 2.0 * self.sideband(k).abs() * 2.0 * std::f64::consts::PI * f_out;
        20.0 * (beta / 2.0).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PllDesign;

    fn spur_fixture(ratio: f64, frac: f64) -> (PllModel, f64) {
        let d = PllDesign::reference_design(ratio).unwrap();
        let i_leak = frac * d.icp();
        (PllModel::builder(d).build().unwrap(), i_leak)
    }

    #[test]
    fn static_offset_formula() {
        let (m, i_leak) = spur_fixture(0.1, 1e-3);
        let s = LeakageSpurs::new(&m, i_leak);
        let t_ref = 1.0 / m.design().f_ref();
        assert!((s.static_offset() - 1e-3 * t_ref).abs() < 1e-15);
    }

    #[test]
    fn sidebands_scale_linearly_with_leakage() {
        let (m, _) = spur_fixture(0.1, 1e-3);
        let a = LeakageSpurs::new(&m, 1e-3 * m.design().icp()).sideband(1);
        let b = LeakageSpurs::new(&m, 3e-3 * m.design().icp()).sideband(1);
        assert!((b / a - Complex::from_re(3.0)).abs() < 1e-12);
        // Power: 20 dB per decade of leakage.
        let pa = LeakageSpurs::new(&m, 1e-3 * m.design().icp()).line_power(1);
        let pb = LeakageSpurs::new(&m, 1e-2 * m.design().icp()).line_power(1);
        assert!((pb / pa - 100.0).abs() < 1e-9);
    }

    #[test]
    fn harmonics_follow_open_loop_rolloff() {
        let (m, i_leak) = spur_fixture(0.15, 1e-3);
        let s = LeakageSpurs::new(&m, i_leak);
        let w0 = m.design().omega_ref();
        for k in 1..=3i64 {
            let expect = m.open_loop().eval_jw(k as f64 * w0).abs() * s.static_offset();
            assert!((s.sideband(k).abs() - expect).abs() < 1e-15);
        }
        // A(jω) falls with frequency past crossover ⇒ spur harmonics fall.
        assert!(s.sideband(1).abs() > s.sideband(2).abs());
        assert!(s.sideband(2).abs() > s.sideband(3).abs());
    }

    #[test]
    fn dbc_level_is_finite_and_small_signal() {
        let (m, i_leak) = spur_fixture(0.1, 1e-4);
        let s = LeakageSpurs::new(&m, i_leak);
        let dbc = s.level_dbc(1);
        assert!(dbc.is_finite());
        assert!(dbc < -20.0, "{dbc}"); // comfortably below the carrier
    }

    #[test]
    fn zero_band_returns_offset() {
        let (m, i_leak) = spur_fixture(0.1, 1e-3);
        let s = LeakageSpurs::new(&m, i_leak);
        assert_eq!(s.sideband(0).re, s.static_offset());
        assert_eq!(s.sideband(0).im, 0.0);
    }
}
