//! Time-domain responses of LTI systems via partial fractions.
//!
//! Closed-form impulse and step responses from the PFE terms:
//! `c/(s−p)^r  ⇄  c·t^{r−1}e^{pt}/(r−1)!`. These are exact (no ODE
//! integration), which makes them ideal cross-checks for the behavioral
//! time-domain simulator.
//!
//! ```
//! use htmpll_lti::{response::step_response, Tf};
//!
//! // 1/(s+1): step response 1 − e^{−t}.
//! let h = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
//! let y = step_response(&h, &[0.0, 1.0]).unwrap();
//! assert!((y[1] - (1.0 - (-1.0f64).exp())).abs() < 1e-10);
//! ```

use crate::pfe::Pfe;
use crate::tf::{Tf, TfError};
use htmpll_num::Complex;
use std::fmt;

/// Error returned by time-response evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseError {
    /// The transfer function is not strictly proper, so the impulse
    /// response contains Dirac distributions.
    NotStrictlyProper,
    /// Underlying transfer-function/PFE failure.
    Tf(TfError),
}

impl fmt::Display for ResponseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResponseError::NotStrictlyProper => {
                write!(
                    f,
                    "time response requires a strictly proper transfer function"
                )
            }
            ResponseError::Tf(e) => write!(f, "transfer function error: {e}"),
        }
    }
}

impl std::error::Error for ResponseError {}

impl From<TfError> for ResponseError {
    fn from(e: TfError) -> Self {
        ResponseError::Tf(e)
    }
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|k| k as f64).product()
}

/// Evaluates the inverse Laplace transform of a strictly proper PFE at
/// time `t ≥ 0` (zero for `t < 0`).
pub fn eval_pfe_time(pfe: &Pfe, t: f64) -> f64 {
    if t < 0.0 {
        return 0.0;
    }
    let mut acc = Complex::ZERO;
    for term in &pfe.terms {
        let r = term.order;
        let amp = term.coeff * t.powi((r - 1) as i32) / factorial(r - 1);
        acc += amp * (term.pole.scale(t)).exp();
    }
    // Imaginary parts cancel across conjugate pole pairs; what remains is
    // numerical noise.
    acc.re
}

/// Samples the impulse response `h(t)` of a strictly proper `tf` at the
/// given time points.
///
/// # Errors
///
/// [`ResponseError::NotStrictlyProper`] when the transfer function has a
/// direct feedthrough term; PFE failures are propagated.
pub fn impulse_response(tf: &Tf, ts: &[f64]) -> Result<Vec<f64>, ResponseError> {
    if !tf.is_strictly_proper() {
        return Err(ResponseError::NotStrictlyProper);
    }
    let pfe = Pfe::expand(tf, 1e-6)?;
    Ok(ts.iter().map(|&t| eval_pfe_time(&pfe, t)).collect())
}

/// Samples the unit-step response of a proper `tf` at the given time
/// points (computed as the impulse response of `tf/s`).
///
/// # Errors
///
/// [`ResponseError::NotStrictlyProper`] when `tf` is improper; PFE
/// failures are propagated.
pub fn step_response(tf: &Tf, ts: &[f64]) -> Result<Vec<f64>, ResponseError> {
    if !tf.is_proper() {
        return Err(ResponseError::NotStrictlyProper);
    }
    let with_integrator = tf * &Tf::integrator();
    let pfe = Pfe::expand(&with_integrator, 1e-6)?;
    Ok(ts.iter().map(|&t| eval_pfe_time(&pfe, t)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_num::optim::lin_grid;

    #[test]
    fn first_order_impulse() {
        // 1/(s+2) → e^{−2t}.
        let h = Tf::from_coeffs(vec![1.0], vec![2.0, 1.0]).unwrap();
        let ts = lin_grid(0.0, 2.0, 9);
        let y = impulse_response(&h, &ts).unwrap();
        for (t, v) in ts.iter().zip(&y) {
            assert!((v - (-2.0 * t).exp()).abs() < 1e-10);
        }
    }

    #[test]
    fn damped_oscillator_impulse() {
        // ω/( (s+a)² + ω² ) → e^{−at} sin(ωt).
        let (a, w) = (0.5, 3.0);
        let h = Tf::from_coeffs(vec![w], vec![a * a + w * w, 2.0 * a, 1.0]).unwrap();
        let ts = lin_grid(0.0, 5.0, 21);
        let y = impulse_response(&h, &ts).unwrap();
        for (t, v) in ts.iter().zip(&y) {
            let expect = (-a * t).exp() * (w * t).sin();
            assert!((v - expect).abs() < 1e-9, "t={t}: {v} vs {expect}");
        }
    }

    #[test]
    fn repeated_pole_impulse() {
        // 1/(s+1)² → t·e^{−t}.
        let h = Tf::new(
            htmpll_num::Poly::constant(1.0),
            htmpll_num::Poly::from_real_roots(&[-1.0, -1.0]),
        )
        .unwrap();
        let ts = lin_grid(0.0, 4.0, 9);
        let y = impulse_response(&h, &ts).unwrap();
        for (t, v) in ts.iter().zip(&y) {
            assert!((v - t * (-t).exp()).abs() < 1e-8);
        }
    }

    #[test]
    fn second_order_step_final_value() {
        // DC gain 1 → step settles to 1.
        let h = Tf::from_coeffs(vec![4.0], vec![4.0, 2.0, 1.0]).unwrap();
        let y = step_response(&h, &[20.0]).unwrap();
        assert!((y[0] - 1.0).abs() < 1e-6);
        let y0 = step_response(&h, &[0.0]).unwrap();
        assert!(y0[0].abs() < 1e-12);
    }

    #[test]
    fn negative_time_is_zero() {
        let h = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
        let y = impulse_response(&h, &[-1.0]).unwrap();
        assert_eq!(y[0], 0.0);
    }

    #[test]
    fn improper_rejected() {
        let h = Tf::differentiator();
        assert_eq!(
            impulse_response(&h, &[0.0]).unwrap_err(),
            ResponseError::NotStrictlyProper
        );
        assert_eq!(
            step_response(&h, &[0.0]).unwrap_err(),
            ResponseError::NotStrictlyProper
        );
    }

    #[test]
    fn biproper_impulse_rejected_but_step_ok() {
        // (s+2)/(s+1) is biproper: impulse has a Dirac, step does not.
        let h = Tf::from_coeffs(vec![2.0, 1.0], vec![1.0, 1.0]).unwrap();
        assert!(impulse_response(&h, &[0.0]).is_err());
        // y(t) = 2 − e^{−t}; at t = 25 the residue is ~1.4e−11.
        let y = step_response(&h, &[25.0]).unwrap();
        assert!((y[0] - 2.0).abs() < 1e-8); // DC gain 2
    }
}
