//! Partial-fraction expansion with repeated poles.
//!
//! The exact effective open-loop gain `λ(s) = Σ_m A(s + jmω₀)` of a
//! sampled PLL is computed term-by-term from the partial fractions of
//! `A(s)` (see `htmpll_num::special`). Charge-pump loops have a **double
//! pole at DC**, so repeated poles are first-class here.
//!
//! The expansion is computed by Taylor-shifting numerator and reduced
//! denominator to each pole and dividing the resulting power series —
//! numerically robust compared to high-order numerical differentiation.
//!
//! ```
//! use htmpll_lti::{Pfe, Tf};
//! use htmpll_num::Complex;
//!
//! // H(s) = 1/(s²(s+1)) — double pole at 0, simple pole at −1.
//! let h = Tf::from_coeffs(vec![1.0], vec![0.0, 0.0, 1.0, 1.0]).unwrap();
//! let pfe = Pfe::expand(&h, 1e-6).unwrap();
//! let s = Complex::new(0.5, 0.3);
//! assert!((pfe.eval(s) - h.eval(s)).abs() < 1e-10);
//! ```

use crate::tf::{Tf, TfError};
use htmpll_num::{Complex, Poly};
use std::fmt;

/// One `c/(s − p)^order` term of a partial-fraction expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfeTerm {
    /// Pole location.
    pub pole: Complex,
    /// Power of the `(s − p)` factor, `≥ 1`.
    pub order: usize,
    /// Complex coefficient of the term.
    pub coeff: Complex,
}

/// A partial-fraction expansion `H(s) = direct(s) + Σ cᵢ/(s − pᵢ)^{rᵢ}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Pfe {
    /// Polynomial (direct-feedthrough) part; zero for strictly proper
    /// inputs.
    pub direct: Poly,
    /// Pole terms, grouped by pole in ascending order of `order`.
    pub terms: Vec<PfeTerm>,
}

impl Pfe {
    /// Expands a transfer function into partial fractions.
    ///
    /// `cluster_tol` controls when nearby computed poles are merged into
    /// one repeated pole (relative to `1 + |p|`); `1e-6` suits the
    /// well-separated poles of PLL loop transfer functions while still
    /// catching exact multiple poles.
    ///
    /// # Errors
    ///
    /// Propagates pole-extraction failures.
    pub fn expand(tf: &Tf, cluster_tol: f64) -> Result<Pfe, TfError> {
        // Split off the direct polynomial part.
        let (direct, rem) = tf.num().div_rem(tf.den());
        let clusters = tf.pole_clusters(cluster_tol)?;
        let lead = tf.den().leading();

        let mut terms = Vec::new();
        for (ci, &(p, m)) in clusters.iter().enumerate() {
            // Taylor series of the numerator remainder at p, to order m−1.
            let n_taylor = taylor_shift(&rem, p, m);
            // Taylor series of Q(s) = den(s)/(s−p)^m at p: the product of
            // the other clusters' factors, truncated to order m−1.
            let mut q_taylor = vec![Complex::ZERO; m];
            q_taylor[0] = Complex::from_re(lead);
            for (cj, &(pj, mj)) in clusters.iter().enumerate() {
                if cj == ci {
                    continue;
                }
                for _ in 0..mj {
                    // Multiply the truncated series by (p + u − pj) = (p−pj) + u.
                    let base = p - pj;
                    let mut next = vec![Complex::ZERO; m];
                    for k in 0..m {
                        next[k] += q_taylor[k] * base;
                        if k + 1 < m {
                            next[k + 1] += q_taylor[k];
                        }
                    }
                    q_taylor = next;
                }
            }
            let a = series_div(&n_taylor, &q_taylor, m);
            // (s−p)^m·H ≈ Σ a_k u^k  ⇒  H ⊃ Σ a_k/(s−p)^{m−k}.
            for (k, &ak) in a.iter().enumerate() {
                let order = m - k;
                if ak.abs() > 0.0 {
                    terms.push(PfeTerm {
                        pole: p,
                        order,
                        coeff: ak,
                    });
                }
            }
        }
        // Deterministic ordering: by pole (re, im), then ascending order.
        terms.sort_by(|a, b| {
            (a.pole.re, a.pole.im, a.order)
                .partial_cmp(&(b.pole.re, b.pole.im, b.order))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(Pfe { direct, terms })
    }

    /// Evaluates the expansion at a complex point.
    pub fn eval(&self, s: Complex) -> Complex {
        let mut acc = self.direct.eval_complex(s);
        for t in &self.terms {
            acc += t.coeff * (s - t.pole).powi(-(t.order as i32));
        }
        acc
    }

    /// Evaluates the expansion with every singular distance `|s − pᵢ|`
    /// floored at `floor`: a point bitwise-on (or absurdly close to) a
    /// pole yields a huge-but-finite value of magnitude
    /// `~|cᵢ|/floor^{rᵢ}` instead of `inf`/`NaN`. The approach direction
    /// is preserved when there is one; bitwise-on-pole points are nudged
    /// along the positive real axis. Evaluation backends use this with a
    /// rounding-scale floor so the residue route saturates at the same
    /// magnitude as closed-form kernels (`coth`/`csch²`), whose argument
    /// never reaches the pole exactly in floating point.
    pub fn eval_floored(&self, s: Complex, floor: f64) -> Complex {
        let mut acc = self.direct.eval_complex(s);
        for t in &self.terms {
            let mut d = s - t.pole;
            let dist = d.abs();
            if dist < floor {
                d = if dist == 0.0 {
                    Complex::from_re(floor)
                } else {
                    d.scale(floor / dist)
                };
            }
            acc += t.coeff * d.powi(-(t.order as i32));
        }
        acc
    }

    /// Maximum pole multiplicity appearing in the expansion.
    pub fn max_order(&self) -> usize {
        self.terms.iter().map(|t| t.order).max().unwrap_or(0)
    }

    /// Distance from `s` to the nearest pole of the expansion
    /// (`+∞` when there are no pole terms). Evaluation backends use this
    /// to decide when direct polynomial evaluation of the underlying
    /// rational function loses precision and the residue expansion
    /// should be used instead.
    pub fn min_pole_distance(&self, s: Complex) -> f64 {
        self.terms
            .iter()
            .map(|t| (s - t.pole).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Returns the residue (coefficient of the order-1 term) at the pole
    /// closest to `p`, if any term matches within `tol`.
    pub fn residue_at(&self, p: Complex, tol: f64) -> Option<Complex> {
        self.terms
            .iter()
            .find(|t| t.order == 1 && (t.pole - p).abs() <= tol * (1.0 + p.abs()))
            .map(|t| t.coeff)
    }
}

impl fmt::Display for Pfe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.direct.is_zero() {
            write!(f, "{} + ", self.direct)?;
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({:.4})/(s - {:.4})^{}", t.coeff, t.pole, t.order)?;
        }
        Ok(())
    }
}

/// Taylor coefficients of `P(p + u)` in powers of `u`, truncated to
/// `order` terms, computed by repeated synthetic division (Horner).
fn taylor_shift(p: &Poly, at: Complex, order: usize) -> Vec<Complex> {
    let n = p.coeffs().len();
    let mut c: Vec<Complex> = p.coeffs().iter().map(|&x| Complex::from_re(x)).collect();
    if n == 0 {
        return vec![Complex::ZERO; order];
    }
    for i in 0..n {
        for j in (i..n.saturating_sub(1)).rev() {
            let next = c[j + 1];
            c[j] += at * next;
        }
    }
    c.resize(order, Complex::ZERO);
    c.truncate(order);
    c
}

/// Leading `order` coefficients of the power series `N(u)/Q(u)` with
/// `Q(0) ≠ 0`.
fn series_div(n: &[Complex], q: &[Complex], order: usize) -> Vec<Complex> {
    let q0 = q[0];
    let mut a = vec![Complex::ZERO; order];
    for k in 0..order {
        let mut acc = n.get(k).copied().unwrap_or(Complex::ZERO);
        for j in 1..=k {
            acc -= q.get(j).copied().unwrap_or(Complex::ZERO) * a[k - j];
        }
        a[k] = acc / q0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_reconstruction(tf: &Tf, tol: f64) {
        let pfe = Pfe::expand(tf, 1e-6).unwrap();
        for &(re, im) in &[(0.5, 0.3), (-0.2, 1.7), (2.0, -1.0), (0.01, 10.0)] {
            let s = Complex::new(re, im);
            let a = tf.eval(s);
            let b = pfe.eval(s);
            assert!(
                (a - b).abs() <= tol * (1.0 + a.abs()),
                "mismatch at {s}: tf={a} pfe={b}"
            );
        }
    }

    #[test]
    fn simple_poles() {
        // 1/((s+1)(s+2)) = 1/(s+1) − 1/(s+2).
        let h = Tf::new(Poly::constant(1.0), Poly::from_real_roots(&[-1.0, -2.0])).unwrap();
        let pfe = Pfe::expand(&h, 1e-6).unwrap();
        assert_eq!(pfe.terms.len(), 2);
        assert!(pfe.direct.is_zero());
        let r1 = pfe.residue_at(Complex::from_re(-1.0), 1e-6).unwrap();
        let r2 = pfe.residue_at(Complex::from_re(-2.0), 1e-6).unwrap();
        assert!(r1.approx_eq(Complex::ONE, 1e-10));
        assert!(r2.approx_eq(-Complex::ONE, 1e-10));
        check_reconstruction(&h, 1e-10);
    }

    #[test]
    fn double_pole_at_origin() {
        // The charge-pump prototype: (1+s)/(s²(1+s/10)).
        let num = Poly::new(vec![1.0, 1.0]);
        let den = Poly::new(vec![0.0, 0.0, 1.0, 0.1]);
        let h = Tf::new(num, den).unwrap();
        let pfe = Pfe::expand(&h, 1e-6).unwrap();
        assert_eq!(pfe.max_order(), 2);
        // Terms: c₂/s² + c₁/s + r/(s+10). Hand-compute: with
        // D = s²(1+s/10): s²H|₀ = 1 ⇒ c₂ = 1; d/ds[(1+s)/(1+s/10)]|₀ =
        // (1·(1+s/10) − (1+s)/10)/(1+s/10)²|₀ = 0.9 ⇒ c₁ = 0.9.
        let c2 = pfe
            .terms
            .iter()
            .find(|t| t.order == 2)
            .expect("order-2 term")
            .coeff;
        assert!(c2.approx_eq(Complex::ONE, 1e-9), "{c2}");
        let c1 = pfe
            .terms
            .iter()
            .find(|t| t.order == 1 && t.pole.abs() < 1e-9)
            .expect("order-1 term at origin")
            .coeff;
        assert!(c1.approx_eq(Complex::from_re(0.9), 1e-9), "{c1}");
        check_reconstruction(&h, 1e-9);
    }

    #[test]
    fn complex_pole_pair() {
        // 1/(s² + 2s + 5): poles −1 ± 2j, residues ∓ j/4.
        let h = Tf::from_coeffs(vec![1.0], vec![5.0, 2.0, 1.0]).unwrap();
        let pfe = Pfe::expand(&h, 1e-6).unwrap();
        assert_eq!(pfe.terms.len(), 2);
        let r = pfe.residue_at(Complex::new(-1.0, 2.0), 1e-6).unwrap();
        assert!(r.approx_eq(Complex::new(0.0, -0.25), 1e-9), "{r}");
        check_reconstruction(&h, 1e-10);
    }

    #[test]
    fn non_strictly_proper_gets_direct_part() {
        // (s² + 3s + 3)/(s+1) = (s + 2) + 1/(s+1).
        let h = Tf::from_coeffs(vec![3.0, 3.0, 1.0], vec![1.0, 1.0]).unwrap();
        let pfe = Pfe::expand(&h, 1e-6).unwrap();
        assert_eq!(pfe.direct.coeffs(), &[2.0, 1.0]);
        assert_eq!(pfe.terms.len(), 1);
        assert!(pfe.terms[0].coeff.approx_eq(Complex::ONE, 1e-10));
        check_reconstruction(&h, 1e-10);
    }

    #[test]
    fn triple_pole() {
        // 1/(s+2)³.
        let h = Tf::new(
            Poly::constant(1.0),
            Poly::from_real_roots(&[-2.0, -2.0, -2.0]),
        )
        .unwrap();
        // Aberth returns a loose cluster for the triple root, so use a
        // coarse cluster tolerance.
        let pfe = Pfe::expand(&h, 1e-3).unwrap();
        assert_eq!(pfe.max_order(), 3);
        let c3 = pfe.terms.iter().find(|t| t.order == 3).unwrap().coeff;
        assert!(c3.approx_eq(Complex::ONE, 1e-6), "{c3}");
        // Looser reconstruction tolerance for the ill-conditioned root.
        let s = Complex::new(0.5, 0.3);
        assert!((pfe.eval(s) - h.eval(s)).abs() < 1e-6);
    }

    #[test]
    fn high_order_loop_gain_shape() {
        // A(s) = k(1+s/ωz)/(s²(1+s/ωp)) — the paper's Fig.-5 shape.
        let wz = 0.4;
        let wp = 3.0;
        let num = Poly::new(vec![1.0, 1.0 / wz]);
        let den = Poly::new(vec![0.0, 0.0, 1.0, 1.0 / wp]);
        let a = Tf::new(num.scale(0.35), den).unwrap();
        check_reconstruction(&a, 1e-9);
        let pfe = Pfe::expand(&a, 1e-6).unwrap();
        assert_eq!(pfe.max_order(), 2);
        // Exactly three pole clusters: 0 (double) and −ωp (simple).
        let distinct: Vec<Complex> = {
            let mut v: Vec<Complex> = pfe.terms.iter().map(|t| t.pole).collect();
            v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            v
        };
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn min_pole_distance_tracks_nearest_pole() {
        let h = Tf::new(Poly::constant(1.0), Poly::from_real_roots(&[-1.0, -3.0])).unwrap();
        let pfe = Pfe::expand(&h, 1e-6).unwrap();
        let d = pfe.min_pole_distance(Complex::new(-1.0, 0.5));
        assert!((d - 0.5).abs() < 1e-9, "{d}");
        // Exactly on a pole: zero distance.
        assert!(pfe.min_pole_distance(Complex::from_re(-3.0)) < 1e-12);
        // No terms ⇒ infinite distance.
        let empty = Pfe {
            direct: Poly::constant(1.0),
            terms: Vec::new(),
        };
        assert_eq!(empty.min_pole_distance(Complex::ZERO), f64::INFINITY);
    }

    #[test]
    fn eval_floored_saturates_on_poles() {
        // 1/((s+1)(s+2)): on-pole evaluation is inf/NaN through the raw
        // form but saturates at ~1/floor through the floored expansion.
        let h = Tf::new(Poly::constant(1.0), Poly::from_real_roots(&[-1.0, -2.0])).unwrap();
        let pfe = Pfe::expand(&h, 1e-6).unwrap();
        let floor = 1e-12;
        let on_pole = pfe.eval_floored(Complex::from_re(-1.0), floor);
        assert!(on_pole.is_finite(), "{on_pole}");
        assert!(on_pole.abs() > 0.1 / floor, "{on_pole}");
        // Near-pole: the approach direction is preserved, so the floored
        // value points the same way as the limit from that side.
        let near = pfe.eval_floored(Complex::new(-1.0, 1e-15), floor);
        assert!(near.is_finite());
        assert!(near.im < 0.0, "1/(jδ) has negative imaginary part: {near}");
        // Far from every pole the floor is inert.
        let s = Complex::new(0.5, 0.3);
        assert!((pfe.eval_floored(s, floor) - pfe.eval(s)).abs() < 1e-14);
    }

    #[test]
    fn residue_at_misses_wrong_pole() {
        let h = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
        let pfe = Pfe::expand(&h, 1e-6).unwrap();
        assert!(pfe.residue_at(Complex::from_re(5.0), 1e-6).is_none());
    }

    #[test]
    fn taylor_shift_matches_direct_expansion() {
        // P(x) = x³: P(1+u) = 1 + 3u + 3u² + u³.
        let p = Poly::new(vec![0.0, 0.0, 0.0, 1.0]);
        let t = taylor_shift(&p, Complex::ONE, 4);
        let expect = [1.0, 3.0, 3.0, 1.0];
        for (a, &e) in t.iter().zip(&expect) {
            assert!(a.approx_eq(Complex::from_re(e), 1e-13), "{a} vs {e}");
        }
    }

    #[test]
    fn series_div_geometric() {
        // 1/(1−u) = 1 + u + u² + …
        let n = [Complex::ONE];
        let q = [Complex::ONE, -Complex::ONE];
        let a = series_div(&n, &q, 5);
        for c in a {
            assert!(c.approx_eq(Complex::ONE, 1e-14));
        }
    }

    #[test]
    fn display_contains_terms() {
        let h = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
        let pfe = Pfe::expand(&h, 1e-6).unwrap();
        let s = format!("{pfe}");
        assert!(s.contains("s -"), "{s}");
    }
}
