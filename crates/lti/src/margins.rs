//! Stability margins of an open-loop frequency response.
//!
//! The functions here take a *generic* frequency response
//! `f(ω) → ℂ`. This is deliberate: the paper's central quantity, the
//! effective open-loop gain `λ(jω) = Σ_m A(j(ω + mω₀))`, is **not** a
//! rational function, yet its unity-gain frequency and phase margin are
//! exactly what Figure 7 reports. One margin extractor serves both the
//! classical LTI `A(jω)` and the time-varying `λ(jω)`.
//!
//! ```
//! use htmpll_lti::{stability_margins, Tf};
//!
//! // A(s) = 10/(s(s+1)): crossover near ω ≈ 3.08, PM ≈ 18°.
//! let a = Tf::from_coeffs(vec![10.0], vec![0.0, 1.0, 1.0]).unwrap();
//! let m = stability_margins(|w| a.eval_jw(w), 1e-3, 1e3).unwrap();
//! assert!((m.phase_margin_deg - 18.0).abs() < 0.5);
//! ```

use htmpll_num::optim::{brent, find_brackets, log_grid};
use htmpll_num::Complex;
use std::fmt;

/// Error returned by margin extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MarginError {
    /// The magnitude never crosses unity on the scanned interval.
    NoUnityCrossing,
    /// Root refinement failed (pathological response).
    RefineFailed,
}

impl fmt::Display for MarginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarginError::NoUnityCrossing => {
                write!(
                    f,
                    "open-loop magnitude never crosses 0 dB on the scan interval"
                )
            }
            MarginError::RefineFailed => write!(f, "margin refinement failed to converge"),
        }
    }
}

impl std::error::Error for MarginError {}

/// Stability margins of an open-loop response.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Margins {
    /// Unity-gain (gain-crossover) frequency, rad/s. When the magnitude
    /// crosses 0 dB more than once this is the **last** downward
    /// crossing, which is the stability-relevant one for loop gains that
    /// eventually roll off.
    pub omega_ug: f64,
    /// Phase margin in degrees: `180° + arg f(jω_ug)`.
    pub phase_margin_deg: f64,
    /// Phase-crossover frequency (where the phase reaches −180° with the
    /// locus crossing the negative real axis), if found.
    pub omega_pc: Option<f64>,
    /// Gain margin in dB at `omega_pc`, if a phase crossover was found.
    pub gain_margin_db: Option<f64>,
}

/// Number of grid points used by the margin scans.
const SCAN_POINTS: usize = 2048;

/// The exact log-spaced grid every margin scan in this module evaluates
/// on. Callers that want to evaluate the response in parallel (or reuse
/// one evaluation across several extractors) build this grid, compute
/// `f` at each point, and hand both to the `*_precomputed` variants —
/// which then return **bitwise-identical** results to the closure-only
/// entry points.
pub fn margin_scan_grid(wmin: f64, wmax: f64) -> Vec<f64> {
    log_grid(wmin, wmax, SCAN_POINTS)
}

/// Replays `values[i]` for the `i`-th evaluation request; the scans
/// below visit grid points exactly once, in order.
fn replay<'a>(
    values: &'a [Complex],
    map: impl Fn(Complex) -> f64 + 'a,
) -> impl FnMut(f64) -> f64 + 'a {
    let mut idx = 0;
    move |_| {
        let v = map(values[idx]);
        idx += 1;
        v
    }
}

/// Finds all unity-gain crossover frequencies of `f` on `[wmin, wmax]`
/// (log-spaced scan + Brent refinement), in ascending order.
pub fn unity_gain_crossings<F: FnMut(f64) -> Complex>(mut f: F, wmin: f64, wmax: f64) -> Vec<f64> {
    let grid = margin_scan_grid(wmin, wmax);
    let values: Vec<Complex> = grid.iter().map(|&w| f(w)).collect();
    unity_gain_crossings_precomputed(f, &grid, &values)
}

/// [`unity_gain_crossings`] over precomputed `values = f(grid)`; `f` is
/// only called during root refinement.
///
/// # Panics
///
/// Panics when `grid` and `values` lengths differ.
pub fn unity_gain_crossings_precomputed<F: FnMut(f64) -> Complex>(
    mut f: F,
    grid: &[f64],
    values: &[Complex],
) -> Vec<f64> {
    assert_eq!(grid.len(), values.len(), "grid/values length mismatch");
    // Work in log-magnitude so the function is well-scaled across decades.
    let brackets = find_brackets(replay(values, |v| v.abs().ln()), grid);
    let mut g = |w: f64| f(w).abs().ln();
    brackets
        .into_iter()
        .filter_map(|(a, b)| brent(&mut g, a, b, 1e-12 * b, 200).ok())
        .collect()
}

/// Extracts gain and phase margins of the open-loop response `f` over the
/// scan interval `[wmin, wmax]`.
///
/// Phase crossover is located as a zero of `Im f` with `Re f < 0`
/// (equivalent to the −180° crossing but immune to phase wrapping).
///
/// # Errors
///
/// [`MarginError::NoUnityCrossing`] when `|f|` never crosses 1 on the
/// interval.
pub fn stability_margins<F: FnMut(f64) -> Complex>(
    mut f: F,
    wmin: f64,
    wmax: f64,
) -> Result<Margins, MarginError> {
    let grid = margin_scan_grid(wmin, wmax);
    let values: Vec<Complex> = grid.iter().map(|&w| f(w)).collect();
    stability_margins_precomputed(f, &grid, &values)
}

/// [`stability_margins`] over precomputed `values = f(grid)`; `f` is
/// only called during root refinement (a handful of evaluations near
/// each crossing).
///
/// # Errors
///
/// [`MarginError::NoUnityCrossing`] when `|f|` never crosses 1 on the
/// grid.
///
/// # Panics
///
/// Panics when `grid` and `values` lengths differ.
pub fn stability_margins_precomputed<F: FnMut(f64) -> Complex>(
    mut f: F,
    grid: &[f64],
    values: &[Complex],
) -> Result<Margins, MarginError> {
    let crossings = unity_gain_crossings_precomputed(&mut f, grid, values);
    let omega_ug = *crossings.last().ok_or(MarginError::NoUnityCrossing)?;
    let phase_margin_deg = 180.0 + f(omega_ug).arg().to_degrees();

    // Phase crossover: Im f = 0 with Re f < 0.
    let brackets = find_brackets(replay(values, |v| v.im), grid);
    let mut omega_pc = None;
    for (a, b) in brackets {
        if let Ok(w) = brent(|w| f(w).im, a, b, 1e-12 * b, 200) {
            if f(w).re < 0.0 {
                omega_pc = Some(w);
                break;
            }
        }
    }
    let gain_margin_db = omega_pc.map(|w| -20.0 * f(w).abs().log10());

    Ok(Margins {
        omega_ug,
        phase_margin_deg,
        omega_pc,
        gain_margin_db,
    })
}

/// Finds the −3 dB closed-loop bandwidth of a response `f` relative to
/// its value at `w_ref`: the **first** frequency in `[wmin, wmax]` where
/// `|f|` crosses `|f(w_ref)|/√2`. (First, not last: sampled loops have
/// periodic notches at multiples of `ω₀`, and the band edge is the
/// crossing closest to the passband.)
///
/// Returns `None` when no such crossing exists on the interval.
pub fn bandwidth_3db<F: FnMut(f64) -> Complex>(
    mut f: F,
    w_ref: f64,
    wmin: f64,
    wmax: f64,
) -> Option<f64> {
    let grid = margin_scan_grid(wmin, wmax);
    let values: Vec<Complex> = grid.iter().map(|&w| f(w)).collect();
    bandwidth_3db_precomputed(f, w_ref, &grid, &values)
}

/// [`bandwidth_3db`] over precomputed `values = f(grid)`; `f` is called
/// once at `w_ref` and during root refinement.
///
/// # Panics
///
/// Panics when `grid` and `values` lengths differ.
pub fn bandwidth_3db_precomputed<F: FnMut(f64) -> Complex>(
    mut f: F,
    w_ref: f64,
    grid: &[f64],
    values: &[Complex],
) -> Option<f64> {
    assert_eq!(grid.len(), values.len(), "grid/values length mismatch");
    let target = f(w_ref).abs() / std::f64::consts::SQRT_2;
    if target == 0.0 || !target.is_finite() {
        return None;
    }
    let brackets = find_brackets(replay(values, |v| (v.abs() / target).ln()), grid);
    let mut g = |w: f64| (f(w).abs() / target).ln();
    brackets
        .into_iter()
        .filter_map(|(a, b)| brent(&mut g, a, b, 1e-12 * b, 200).ok())
        .next()
}

/// Maximum closed-loop magnitude (peaking) of `f` over `[wmin, wmax]`,
/// in dB relative to the response at `w_ref`. Grid-resolution search with
/// local golden-section refinement is unnecessary here: the grid is dense
/// enough for the smooth responses this crate targets.
pub fn peaking_db<F: FnMut(f64) -> Complex>(mut f: F, w_ref: f64, wmin: f64, wmax: f64) -> f64 {
    let grid = margin_scan_grid(wmin, wmax);
    let values: Vec<Complex> = grid.iter().map(|&w| f(w)).collect();
    peaking_db_precomputed(f, w_ref, &values)
}

/// [`peaking_db`] over precomputed `values = f(grid)`; `f` is called
/// once, at `w_ref`.
pub fn peaking_db_precomputed<F: FnMut(f64) -> Complex>(
    mut f: F,
    w_ref: f64,
    values: &[Complex],
) -> f64 {
    let base = f(w_ref).abs();
    let peak = values.iter().map(|v| v.abs()).fold(0.0, f64::max);
    20.0 * (peak / base).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tf::Tf;

    #[test]
    fn textbook_second_order_loop() {
        // A(s) = 10/(s(s+1)). |A(jω)|=1 ⇒ ω⁴+ω²−100=0 ⇒ ω_ug² =
        // (−1+√401)/2 ⇒ ω_ug ≈ 3.0842; PM = 180 − 90 − atan(ω) ≈ 17.96°.
        let a = Tf::from_coeffs(vec![10.0], vec![0.0, 1.0, 1.0]).unwrap();
        let m = stability_margins(|w| a.eval_jw(w), 1e-3, 1e3).unwrap();
        let wug = ((-1.0 + 401f64.sqrt()) / 2.0).sqrt();
        assert!((m.omega_ug - wug).abs() < 1e-6, "{}", m.omega_ug);
        let pm = 90.0 - wug.atan().to_degrees();
        assert!((m.phase_margin_deg - pm).abs() < 1e-6);
        // Two poles only: phase never reaches −180°, so no gain margin.
        assert!(m.omega_pc.is_none());
        assert!(m.gain_margin_db.is_none());
    }

    #[test]
    fn third_order_loop_has_gain_margin() {
        // A(s) = 2/(s(s+1)²): phase crossover at ω = 1 where
        // A(j1) = 2/(j(j+1)²) = 2/(j·2j) = −1 ⇒ |A| = 1 ⇒ GM = 0 dB at
        // gain 2; scale down to gain 1 for GM = +6.02 dB.
        let a = Tf::new(
            htmpll_num::Poly::constant(1.0),
            &htmpll_num::Poly::x() * &htmpll_num::Poly::from_real_roots(&[-1.0, -1.0]),
        )
        .unwrap();
        let m = stability_margins(|w| a.eval_jw(w), 1e-3, 1e3).unwrap();
        let wpc = m.omega_pc.expect("phase crossover");
        assert!((wpc - 1.0).abs() < 1e-6);
        let gm = m.gain_margin_db.unwrap();
        assert!((gm - 20.0 * 2f64.log10()).abs() < 1e-6, "{gm}");
        assert!(m.phase_margin_deg > 0.0);
    }

    #[test]
    fn no_crossing_reported() {
        // |H| = 0.5 everywhere.
        let r = stability_margins(|_| Complex::from_re(0.5), 0.1, 10.0);
        assert_eq!(r.unwrap_err(), MarginError::NoUnityCrossing);
    }

    #[test]
    fn multiple_crossings_pick_last() {
        // Response that dips below unity and comes back: use
        // f(ω) = 10·(1+(jω/0.3))/( (jω)·(1+jω/30) ) — simple falling gain
        // with one crossing; then synthesize a double-crossing shape
        // directly instead.
        let f = |w: f64| {
            // Magnitude profile: 2 for w<1, 0.5 for 1<w<10, then rises to 2
            // above 10 and finally falls past 100. Smooth via logistic
            // interpolation; phase irrelevant for the crossing count.
            let m = 2.0 * (1.0 / (1.0 + (w / 1.0).powi(4)))
                + 0.5
                + 1.5 / (1.0 + ((w - 30.0) / 5.0).powi(2))
                - 0.49 / (1.0 + (300.0 / w).powi(4));
            Complex::from_re(m)
        };
        let c = unity_gain_crossings(f, 0.01, 1e4);
        assert!(c.len() >= 2, "{c:?}");
        let m = stability_margins(f, 0.01, 1e4).unwrap();
        assert!((m.omega_ug - c.last().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_of_first_order() {
        let h = Tf::first_order_lowpass(5.0);
        let bw = bandwidth_3db(|w| h.eval_jw(w), 1e-3, 1e-3, 1e3).unwrap();
        assert!((bw - 5.0).abs() < 1e-6, "{bw}");
    }

    #[test]
    fn bandwidth_none_for_flat() {
        assert!(bandwidth_3db(|_| Complex::ONE, 1.0, 0.1, 10.0).is_none());
    }

    #[test]
    fn peaking_of_resonant_second_order() {
        // H(s) = 1/(s² + 2ζs + 1) with ζ = 0.1: peak ≈ 1/(2ζ√(1−ζ²)).
        let h = Tf::from_coeffs(vec![1.0], vec![1.0, 0.2, 1.0]).unwrap();
        let p = peaking_db(|w| h.eval_jw(w), 1e-3, 1e-3, 1e3);
        let zeta: f64 = 0.1;
        let expect = 20.0 * (1.0 / (2.0 * zeta * (1.0 - zeta * zeta).sqrt())).log10();
        assert!((p - expect).abs() < 0.01, "{p} vs {expect}");
    }

    #[test]
    fn error_display() {
        assert!(MarginError::NoUnityCrossing.to_string().contains("0 dB"));
        assert!(MarginError::RefineFailed.to_string().contains("converge"));
    }
}
