//! Shared frequency grids for sweep-style computations.
//!
//! Every sweep entry point in the workspace — Bode responses, margin
//! scans, noise folding, spur tables — evaluates some response on a set
//! of frequencies. [`FrequencyGrid`] is the one vocabulary type for that
//! set, replacing the ad-hoc `(start, stop, n_points)` positional
//! triples that used to be re-invented (and re-ordered) per call site.
//!
//! ```
//! use htmpll_lti::FrequencyGrid;
//!
//! let g = FrequencyGrid::log(0.1, 10.0, 5).unwrap();
//! assert_eq!(g.len(), 5);
//! assert!((g.points()[2] - 1.0).abs() < 1e-12);
//! let d = FrequencyGrid::per_decade(1.0, 100.0, 10).unwrap();
//! assert_eq!(d.len(), 21); // 2 decades × 10 + endpoint
//! ```

use htmpll_num::optim::{lin_grid, log_grid};
use std::fmt;

/// Error building a [`FrequencyGrid`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GridError {
    /// Fewer than two points requested.
    TooFewPoints,
    /// Endpoints out of order (`start >= stop`).
    EmptyRange,
    /// Log-family grids need strictly positive endpoints.
    NonPositive,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::TooFewPoints => write!(f, "frequency grid needs at least two points"),
            GridError::EmptyRange => write!(f, "frequency grid needs start < stop"),
            GridError::NonPositive => {
                write!(f, "logarithmic frequency grid needs positive endpoints")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// An ordered set of angular frequencies (rad/s) to evaluate a sweep on.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyGrid {
    points: Vec<f64>,
}

impl FrequencyGrid {
    /// `n ≥ 2` linearly spaced points on `[start, stop]`.
    ///
    /// # Errors
    ///
    /// [`GridError::TooFewPoints`] / [`GridError::EmptyRange`].
    pub fn linear(start: f64, stop: f64, n: usize) -> Result<FrequencyGrid, GridError> {
        if n < 2 {
            return Err(GridError::TooFewPoints);
        }
        if start.partial_cmp(&stop) != Some(std::cmp::Ordering::Less) {
            return Err(GridError::EmptyRange);
        }
        Ok(FrequencyGrid {
            points: lin_grid(start, stop, n),
        })
    }

    /// `n ≥ 2` logarithmically spaced points on `[start, stop]`,
    /// `0 < start < stop`.
    ///
    /// # Errors
    ///
    /// [`GridError::TooFewPoints`] / [`GridError::EmptyRange`] /
    /// [`GridError::NonPositive`].
    pub fn log(start: f64, stop: f64, n: usize) -> Result<FrequencyGrid, GridError> {
        if n < 2 {
            return Err(GridError::TooFewPoints);
        }
        if start <= 0.0 || stop <= 0.0 {
            return Err(GridError::NonPositive);
        }
        if start.partial_cmp(&stop) != Some(std::cmp::Ordering::Less) {
            return Err(GridError::EmptyRange);
        }
        Ok(FrequencyGrid {
            points: log_grid(start, stop, n),
        })
    }

    /// Logarithmic grid with a fixed density of `points_per_decade ≥ 1`,
    /// endpoints included (the Bode-plot convention).
    ///
    /// # Errors
    ///
    /// [`GridError::TooFewPoints`] (zero density) /
    /// [`GridError::EmptyRange`] / [`GridError::NonPositive`].
    pub fn per_decade(
        start: f64,
        stop: f64,
        points_per_decade: usize,
    ) -> Result<FrequencyGrid, GridError> {
        if points_per_decade == 0 {
            return Err(GridError::TooFewPoints);
        }
        if start <= 0.0 || stop <= 0.0 {
            return Err(GridError::NonPositive);
        }
        if start.partial_cmp(&stop) != Some(std::cmp::Ordering::Less) {
            return Err(GridError::EmptyRange);
        }
        let decades = (stop / start).log10();
        let n = ((decades * points_per_decade as f64).ceil() as usize + 1).max(2);
        Ok(FrequencyGrid {
            points: log_grid(start, stop, n),
        })
    }

    /// Wraps an explicit, already-ordered point list.
    pub fn from_points(points: Vec<f64>) -> FrequencyGrid {
        FrequencyGrid { points }
    }

    /// The frequencies, in sweep order.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates the frequencies.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, f64>> {
        self.points.iter().copied()
    }

    /// Keeps only the frequencies satisfying `keep` (e.g. restricting a
    /// λ sweep to the first Nyquist band).
    pub fn retain<F: FnMut(f64) -> bool>(mut self, mut keep: F) -> FrequencyGrid {
        self.points.retain(|&w| keep(w));
        self
    }
}

impl From<Vec<f64>> for FrequencyGrid {
    fn from(points: Vec<f64>) -> Self {
        FrequencyGrid::from_points(points)
    }
}

impl<'a> IntoIterator for &'a FrequencyGrid {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, f64>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_endpoints() {
        let g = FrequencyGrid::linear(1.0, 3.0, 5).unwrap();
        assert_eq!(g.points(), &[1.0, 1.5, 2.0, 2.5, 3.0]);
        assert!(!g.is_empty());
    }

    #[test]
    fn log_matches_log_grid() {
        let g = FrequencyGrid::log(0.01, 100.0, 9).unwrap();
        assert_eq!(g.points(), log_grid(0.01, 100.0, 9).as_slice());
    }

    #[test]
    fn per_decade_density() {
        let g = FrequencyGrid::per_decade(1.0, 1000.0, 7).unwrap();
        assert_eq!(g.len(), 22); // 3 decades × 7 + 1
        assert!((g.points()[0] - 1.0).abs() < 1e-12);
        assert!((g.points()[21] - 1000.0).abs() < 1e-9);
        // Fractional decade rounds up.
        let h = FrequencyGrid::per_decade(1.0, 30.0, 4).unwrap();
        assert!(h.len() >= 7);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            FrequencyGrid::linear(0.0, 1.0, 1).unwrap_err(),
            GridError::TooFewPoints
        );
        assert_eq!(
            FrequencyGrid::linear(2.0, 1.0, 4).unwrap_err(),
            GridError::EmptyRange
        );
        assert_eq!(
            FrequencyGrid::log(0.0, 1.0, 4).unwrap_err(),
            GridError::NonPositive
        );
        assert_eq!(
            FrequencyGrid::log(1.0, 1.0, 4).unwrap_err(),
            GridError::EmptyRange
        );
        assert_eq!(
            FrequencyGrid::per_decade(1.0, 10.0, 0).unwrap_err(),
            GridError::TooFewPoints
        );
        assert!(GridError::NonPositive.to_string().contains("positive"));
    }

    #[test]
    fn retain_and_iter() {
        let g = FrequencyGrid::from_points(vec![0.5, 1.5, 2.5]).retain(|w| w < 2.0);
        assert_eq!(g.points(), &[0.5, 1.5]);
        let collected: Vec<f64> = (&g).into_iter().collect();
        assert_eq!(collected, vec![0.5, 1.5]);
        let from: FrequencyGrid = vec![1.0, 2.0].into();
        assert_eq!(from.len(), 2);
    }
}
