//! Rational transfer functions in the Laplace variable `s`.
//!
//! [`Tf`] is a ratio of real-coefficient polynomials. It is the model for
//! every LTI building block in a PLL: loop-filter impedances, the VCO
//! integrator, dividers, and the composite open-loop gain `A(s)`.
//!
//! ```
//! use htmpll_lti::Tf;
//! use htmpll_num::Complex;
//!
//! let integ = Tf::integrator();          // 1/s
//! let lp = Tf::first_order_lowpass(10.0); // 10/(s+10)
//! let open = &integ * &lp;               // series connection
//! let h = open.eval(Complex::from_im(10.0));
//! assert!((h.abs() - 0.1 / 2f64.sqrt()).abs() < 1e-12);
//! ```

use htmpll_num::roots::{cluster_roots, find_roots, FindRootsError};
use htmpll_num::{Complex, Poly};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Error produced when constructing or manipulating transfer functions.
#[derive(Debug, Clone, PartialEq)]
pub enum TfError {
    /// The denominator polynomial is identically zero.
    ZeroDenominator,
    /// Pole/zero extraction failed to converge.
    Roots(FindRootsError),
    /// Complex zeros/poles supplied without conjugate partners cannot
    /// form a real-coefficient transfer function.
    UnpairedComplexRoot(Complex),
}

impl fmt::Display for TfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfError::ZeroDenominator => write!(f, "transfer function denominator is zero"),
            TfError::Roots(e) => write!(f, "root extraction failed: {e}"),
            TfError::UnpairedComplexRoot(z) => {
                write!(f, "complex root {z} has no conjugate partner")
            }
        }
    }
}

impl std::error::Error for TfError {}

impl From<FindRootsError> for TfError {
    fn from(e: FindRootsError) -> Self {
        TfError::Roots(e)
    }
}

/// A rational transfer function `H(s) = num(s) / den(s)` with real
/// coefficients.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct Tf {
    num: Poly,
    den: Poly,
}

impl Tf {
    /// Creates `num(s)/den(s)`.
    ///
    /// # Errors
    ///
    /// Returns [`TfError::ZeroDenominator`] when `den` is the zero
    /// polynomial.
    pub fn new(num: Poly, den: Poly) -> Result<Self, TfError> {
        if den.is_zero() {
            return Err(TfError::ZeroDenominator);
        }
        Ok(Tf { num, den })
    }

    /// Creates a transfer function from ascending-order coefficient
    /// vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TfError::ZeroDenominator`] when all denominator
    /// coefficients are zero.
    pub fn from_coeffs(num: Vec<f64>, den: Vec<f64>) -> Result<Self, TfError> {
        Tf::new(Poly::new(num), Poly::new(den))
    }

    /// Builds a transfer function from zeros, poles and a gain:
    /// `H(s) = k·Π(s−zᵢ)/Π(s−pᵢ)`.
    ///
    /// Complex zeros/poles must come in conjugate pairs.
    ///
    /// # Errors
    ///
    /// Returns [`TfError::UnpairedComplexRoot`] when a complex root has
    /// no conjugate partner.
    pub fn from_zpk(zeros: &[Complex], poles: &[Complex], k: f64) -> Result<Self, TfError> {
        let num = Poly::from_complex_roots(zeros, 1e-9).map_err(TfError::UnpairedComplexRoot)?;
        let den = Poly::from_complex_roots(poles, 1e-9).map_err(TfError::UnpairedComplexRoot)?;
        Tf::new(num.scale(k), den)
    }

    /// The constant (memoryless) gain `k`.
    pub fn constant(k: f64) -> Self {
        Tf {
            num: Poly::constant(k),
            den: Poly::constant(1.0),
        }
    }

    /// The unity transfer function.
    pub fn one() -> Self {
        Tf::constant(1.0)
    }

    /// The ideal integrator `1/s`.
    pub fn integrator() -> Self {
        Tf {
            num: Poly::constant(1.0),
            den: Poly::x(),
        }
    }

    /// The ideal differentiator `s`.
    pub fn differentiator() -> Self {
        Tf {
            num: Poly::x(),
            den: Poly::constant(1.0),
        }
    }

    /// A unity-DC-gain first-order low-pass `ω_c/(s + ω_c)`.
    ///
    /// # Panics
    ///
    /// Panics when `wc <= 0`.
    pub fn first_order_lowpass(wc: f64) -> Self {
        assert!(wc > 0.0, "corner frequency must be positive");
        Tf {
            num: Poly::constant(wc),
            den: Poly::new(vec![wc, 1.0]),
        }
    }

    /// The numerator polynomial.
    pub fn num(&self) -> &Poly {
        &self.num
    }

    /// The denominator polynomial.
    pub fn den(&self) -> &Poly {
        &self.den
    }

    /// Evaluates `H(s)` at a complex point.
    pub fn eval(&self, s: Complex) -> Complex {
        self.num.eval_complex(s) / self.den.eval_complex(s)
    }

    /// Evaluates the frequency response `H(jω)`.
    pub fn eval_jw(&self, omega: f64) -> Complex {
        self.eval(Complex::from_im(omega))
    }

    /// DC gain `H(0)`; infinite for poles at the origin.
    pub fn dc_gain(&self) -> Complex {
        self.eval(Complex::ZERO)
    }

    /// Relative degree `deg(den) − deg(num)` (negative for improper
    /// functions).
    pub fn relative_degree(&self) -> isize {
        if self.num.is_zero() {
            return self.den.degree() as isize;
        }
        self.den.degree() as isize - self.num.degree() as isize
    }

    /// True when `deg(num) ≤ deg(den)`.
    pub fn is_proper(&self) -> bool {
        self.relative_degree() >= 0
    }

    /// True when `deg(num) < deg(den)` — the condition for the lattice
    /// sum `Σ_m H(s+jmω₀)` to converge absolutely.
    pub fn is_strictly_proper(&self) -> bool {
        self.num.is_zero() || self.relative_degree() >= 1
    }

    /// Computes all poles (denominator roots).
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures.
    pub fn poles(&self) -> Result<Vec<Complex>, TfError> {
        Ok(find_roots(&self.den)?)
    }

    /// Computes all finite zeros (numerator roots).
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures. The zero transfer function has no
    /// zeros (returns an empty vector).
    pub fn zeros(&self) -> Result<Vec<Complex>, TfError> {
        if self.num.is_zero() {
            return Ok(Vec::new());
        }
        Ok(find_roots(&self.num)?)
    }

    /// Series connection `other ∘ self` — same as `self * other` since
    /// scalar transfer functions commute.
    pub fn series(&self, other: &Tf) -> Tf {
        self * other
    }

    /// Parallel connection `self + other`.
    pub fn parallel(&self, other: &Tf) -> Tf {
        self + other
    }

    /// Negative feedback closed loop `self / (1 + self·h)`.
    ///
    /// # Errors
    ///
    /// Returns [`TfError::ZeroDenominator`] when the loop is degenerate
    /// (`1 + self·h ≡ 0`).
    pub fn feedback(&self, h: &Tf) -> Result<Tf, TfError> {
        // self/(1+self·h) = num·den_h / (den·den_h + num·num_h)
        let den = &(&self.den * &h.den) + &(&self.num * &h.num);
        let num = &self.num * &h.den;
        Tf::new(num, den)
    }

    /// Unity negative feedback `self / (1 + self)`.
    ///
    /// # Errors
    ///
    /// See [`Tf::feedback`].
    pub fn feedback_unity(&self) -> Result<Tf, TfError> {
        self.feedback(&Tf::one())
    }

    /// The reciprocal `1/H(s)`.
    ///
    /// # Errors
    ///
    /// Returns [`TfError::ZeroDenominator`] for the zero transfer
    /// function.
    pub fn inv(&self) -> Result<Tf, TfError> {
        Tf::new(self.den.clone(), self.num.clone())
    }

    /// Scales by a real gain.
    pub fn scale(&self, k: f64) -> Tf {
        Tf {
            num: self.num.scale(k),
            den: self.den.clone(),
        }
    }

    /// Frequency-scales the transfer function: returns `H(s/a)`.
    ///
    /// Scaling with `a > 1` moves all poles and zeros up in frequency by
    /// the factor `a` — the tool used to sweep `ω_UG/ω₀` while keeping
    /// the loop shape fixed.
    ///
    /// # Panics
    ///
    /// Panics when `a <= 0`.
    pub fn frequency_scale(&self, a: f64) -> Tf {
        assert!(a > 0.0, "frequency scale must be positive");
        Tf {
            num: self.num.scale_arg(1.0 / a),
            den: self.den.scale_arg(1.0 / a),
        }
    }

    /// Cancels matching pole/zero pairs within `tol` and returns the
    /// reduced transfer function. The overall gain is preserved exactly
    /// at a probe point off the remaining poles/zeros.
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures.
    pub fn minreal(&self, tol: f64) -> Result<Tf, TfError> {
        let mut zeros = self.zeros()?;
        let mut poles = self.poles()?;
        let mut i = 0;
        while i < zeros.len() {
            if let Some(k) = poles
                .iter()
                .position(|p| (*p - zeros[i]).abs() <= tol * (1.0 + p.abs()))
            {
                poles.remove(k);
                zeros.remove(i);
            } else {
                i += 1;
            }
        }
        let num = Poly::from_complex_roots(&zeros, 1e-6).map_err(TfError::UnpairedComplexRoot)?;
        let den = Poly::from_complex_roots(&poles, 1e-6).map_err(TfError::UnpairedComplexRoot)?;
        // Restore the leading-coefficient gain ratio.
        let k = self.num.leading() / self.den.leading();
        Tf::new(num.scale(k), den)
    }

    /// Groups the poles into `(pole, multiplicity)` clusters — the input
    /// to partial-fraction expansion with repeated poles.
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures.
    pub fn pole_clusters(&self, tol: f64) -> Result<Vec<(Complex, usize)>, TfError> {
        Ok(cluster_roots(&self.poles()?, tol))
    }
}

impl fmt::Display for Tf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) / ({})", self.num, self.den)
    }
}

impl Mul for &Tf {
    type Output = Tf;
    fn mul(self, rhs: &Tf) -> Tf {
        Tf {
            num: &self.num * &rhs.num,
            den: &self.den * &rhs.den,
        }
    }
}

impl Add for &Tf {
    type Output = Tf;
    fn add(self, rhs: &Tf) -> Tf {
        Tf {
            num: &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            den: &self.den * &rhs.den,
        }
    }
}

impl Sub for &Tf {
    type Output = Tf;
    fn sub(self, rhs: &Tf) -> Tf {
        Tf {
            num: &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            den: &self.den * &rhs.den,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_validation() {
        let h = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
        assert_eq!(h.num().coeffs(), &[1.0]);
        assert_eq!(h.den().coeffs(), &[1.0, 1.0]);
        assert_eq!(
            Tf::from_coeffs(vec![1.0], vec![0.0]).unwrap_err(),
            TfError::ZeroDenominator
        );
    }

    #[test]
    fn evaluation() {
        // H(s) = 1/(s+1): |H(j1)| = 1/√2, phase −45°.
        let h = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
        let v = h.eval_jw(1.0);
        assert!((v.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-14);
        assert!((v.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-14);
        assert!(h.dc_gain().approx_eq(Complex::ONE, 1e-14));
    }

    #[test]
    fn properness() {
        let strictly = Tf::integrator();
        assert!(strictly.is_proper());
        assert!(strictly.is_strictly_proper());
        assert_eq!(strictly.relative_degree(), 1);

        let biproper = Tf::from_coeffs(vec![1.0, 1.0], vec![2.0, 1.0]).unwrap();
        assert!(biproper.is_proper());
        assert!(!biproper.is_strictly_proper());

        let improper = Tf::differentiator();
        assert!(!improper.is_proper());
        assert_eq!(improper.relative_degree(), -1);
    }

    #[test]
    fn series_parallel() {
        let a = Tf::integrator();
        let b = Tf::first_order_lowpass(2.0);
        let s = a.series(&b);
        let z = Complex::new(0.5, 0.7);
        assert!(s.eval(z).approx_eq(a.eval(z) * b.eval(z), 1e-13));
        let p = a.parallel(&b);
        assert!(p.eval(z).approx_eq(a.eval(z) + b.eval(z), 1e-13));
        let d = &a - &b;
        assert!(d.eval(z).approx_eq(a.eval(z) - b.eval(z), 1e-13));
    }

    #[test]
    fn feedback_closed_loop() {
        // 1/s with unity feedback → 1/(s+1).
        let g = Tf::integrator();
        let cl = g.feedback_unity().unwrap();
        let z = Complex::new(0.2, 1.3);
        let expect = Complex::ONE / (z + 1.0);
        assert!(cl.eval(z).approx_eq(expect, 1e-13));
    }

    #[test]
    fn feedback_with_dynamics() {
        let g = Tf::integrator();
        let h = Tf::first_order_lowpass(1.0);
        let cl = g.feedback(&h).unwrap();
        let z = Complex::new(0.4, -0.2);
        let expect = g.eval(z) / (Complex::ONE + g.eval(z) * h.eval(z));
        assert!(cl.eval(z).approx_eq(expect, 1e-12));
    }

    #[test]
    fn zpk_roundtrip() {
        let zeros = [Complex::from_re(-2.0)];
        let poles = [Complex::new(-1.0, 1.0), Complex::new(-1.0, -1.0)];
        let h = Tf::from_zpk(&zeros, &poles, 3.0).unwrap();
        let found_z = h.zeros().unwrap();
        let found_p = h.poles().unwrap();
        assert_eq!(found_z.len(), 1);
        assert!((found_z[0] - zeros[0]).abs() < 1e-9);
        assert_eq!(found_p.len(), 2);
        for p in poles {
            assert!(found_p.iter().any(|q| (*q - p).abs() < 1e-9));
        }
        // Gain check at s = 0: H(0) = 3·(2)/(2) = 3.
        assert!(h.dc_gain().approx_eq(Complex::from_re(3.0), 1e-12));
    }

    #[test]
    fn zpk_rejects_unpaired() {
        let r = Tf::from_zpk(&[Complex::I], &[], 1.0);
        assert!(matches!(r, Err(TfError::UnpairedComplexRoot(_))));
    }

    #[test]
    fn inversion() {
        let h = Tf::from_coeffs(vec![2.0, 1.0], vec![1.0, 0.0, 1.0]).unwrap();
        let inv = h.inv().unwrap();
        let z = Complex::new(0.3, 0.4);
        assert!((h.eval(z) * inv.eval(z)).approx_eq(Complex::ONE, 1e-13));
        assert!(Tf::new(Poly::zero(), Poly::constant(1.0))
            .unwrap()
            .inv()
            .is_err());
    }

    #[test]
    fn frequency_scale_moves_corner() {
        let h = Tf::first_order_lowpass(1.0);
        let h10 = h.frequency_scale(10.0); // corner now at ω = 10
        let at_corner = h10.eval_jw(10.0);
        assert!((at_corner.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-13);
        assert!(h10.dc_gain().approx_eq(Complex::ONE, 1e-13));
    }

    #[test]
    fn minreal_cancels_pairs() {
        // (s+1)(s+2)/((s+1)(s+3)) → (s+2)/(s+3)
        let num = Poly::from_real_roots(&[-1.0, -2.0]);
        let den = Poly::from_real_roots(&[-1.0, -3.0]);
        let h = Tf::new(num, den).unwrap();
        let r = h.minreal(1e-6).unwrap();
        assert_eq!(r.num().degree(), 1);
        assert_eq!(r.den().degree(), 1);
        let z = Complex::new(0.1, 0.2);
        assert!(r.eval(z).approx_eq(h.eval(z), 1e-9));
    }

    #[test]
    fn pole_clusters_find_double_integrator() {
        // 1/s² · 1/(s+1)
        let h = Tf::from_coeffs(vec![1.0], vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let clusters = h.pole_clusters(1e-6).unwrap();
        let at_zero = clusters
            .iter()
            .find(|(p, _)| p.abs() < 1e-9)
            .expect("origin cluster");
        assert_eq!(at_zero.1, 2);
    }

    #[test]
    fn display() {
        let h = Tf::integrator();
        assert_eq!(format!("{h}"), "(1) / (x)");
    }
}
