//! Routh–Hurwitz stability analysis of continuous-time polynomials.
//!
//! Classical LTI loop design checks the closed-loop denominator with the
//! Routh array. The HTM analysis later *contrasts* this verdict with the
//! time-varying one — a loop can be Routh-stable in its LTI approximation
//! yet have a collapsing effective phase margin.
//!
//! ```
//! use htmpll_lti::stability::{is_hurwitz, routh};
//! use htmpll_num::Poly;
//!
//! // s² + s + 1 is Hurwitz.
//! assert!(is_hurwitz(&Poly::new(vec![1.0, 1.0, 1.0])));
//! // s² − s + 1 has two RHP roots.
//! assert_eq!(routh(&Poly::new(vec![1.0, -1.0, 1.0])).unwrap().rhp_roots, 2);
//! ```

use htmpll_num::Poly;
use std::fmt;

/// Error returned by the Routh analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouthError {
    /// The zero polynomial has no stability verdict.
    ZeroPolynomial,
}

impl fmt::Display for RouthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouthError::ZeroPolynomial => write!(f, "zero polynomial has no stability verdict"),
        }
    }
}

impl std::error::Error for RouthError {}

/// Outcome of a Routh–Hurwitz analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct RouthResult {
    /// Number of right-half-plane roots indicated by first-column sign
    /// changes.
    pub rhp_roots: usize,
    /// True when the array was degenerate (zero pivot or zero row),
    /// indicating imaginary-axis roots or symmetric root sets; the loop
    /// is at best *marginally* stable.
    pub marginal: bool,
}

impl RouthResult {
    /// True when no RHP roots exist and the array was not degenerate.
    pub fn is_stable(&self) -> bool {
        self.rhp_roots == 0 && !self.marginal
    }
}

/// Runs the Routh–Hurwitz test on `p` (ascending coefficients).
///
/// Degenerate rows are handled with the standard ε-substitution (zero
/// pivot) and auxiliary-polynomial derivative (all-zero row); either case
/// sets `marginal = true`.
///
/// # Errors
///
/// Returns [`RouthError::ZeroPolynomial`] for the zero polynomial.
pub fn routh(p: &Poly) -> Result<RouthResult, RouthError> {
    if p.is_zero() {
        return Err(RouthError::ZeroPolynomial);
    }
    let n = p.degree();
    if n == 0 {
        return Ok(RouthResult {
            rhp_roots: 0,
            marginal: false,
        });
    }
    // Rows are indexed by descending power; row 0 holds a_n, a_{n−2}, …
    let width = n / 2 + 1;
    let mut rows = vec![vec![0.0f64; width]; n + 1];
    for k in 0..=n {
        let c = p.coeff(n - k);
        rows[k % 2][k / 2] = c;
    }
    // Normalize overall sign so a positive leading coefficient is the
    // reference (Routh counts sign *changes*, so a global flip is
    // irrelevant, but keeping it positive simplifies the epsilon logic).
    let scale = p.leading().abs().max(f64::MIN_POSITIVE);
    let eps = 1e-9 * scale;
    let mut marginal = false;

    for i in 2..=n {
        // Zero-row check: the previous row may be all zeros (even/odd
        // symmetric factor). Replace with the derivative of the auxiliary
        // polynomial built from the row above it.
        if rows[i - 1].iter().all(|&v| v == 0.0) {
            marginal = true;
            let top_power = n as isize - (i as isize - 2);
            for (j, v) in rows[i - 2].clone().iter().enumerate() {
                let pw = top_power - 2 * j as isize;
                rows[i - 1][j] = v * pw.max(0) as f64;
            }
        }
        let mut pivot = rows[i - 1][0];
        if pivot == 0.0 {
            marginal = true;
            pivot = eps;
        }
        for j in 0..width - 1 {
            let a = rows[i - 2][0];
            let b = rows[i - 2][j + 1];
            let c = rows[i - 1][j + 1];
            rows[i][j] = (pivot * b - a * c) / pivot;
        }
    }

    // Count sign changes in the first column (ignoring exact zeros,
    // which were already flagged as marginal).
    let mut changes = 0usize;
    let mut prev: Option<f64> = None;
    for row in rows.iter().take(n + 1) {
        let v = row[0];
        if v == 0.0 {
            marginal = true;
            continue;
        }
        if let Some(p) = prev {
            if p.signum() != v.signum() {
                changes += 1;
            }
        }
        prev = Some(v);
    }
    Ok(RouthResult {
        rhp_roots: changes,
        marginal,
    })
}

/// True when every root of `p` lies strictly in the left half plane.
pub fn is_hurwitz(p: &Poly) -> bool {
    routh(p).map(|r| r.is_stable()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_and_second_order() {
        assert!(is_hurwitz(&Poly::new(vec![1.0, 1.0]))); // s+1
        assert!(!is_hurwitz(&Poly::new(vec![-1.0, 1.0]))); // s−1
        assert!(is_hurwitz(&Poly::new(vec![2.0, 3.0, 1.0]))); // (s+1)(s+2)
        assert!(!is_hurwitz(&Poly::new(vec![-2.0, 1.0, 1.0]))); // (s+2)(s−1)
    }

    #[test]
    fn counts_rhp_roots() {
        // (s−1)(s−2)(s+3) = s³ −7s + 6: two RHP roots.
        let p = Poly::from_real_roots(&[1.0, 2.0, -3.0]);
        let r = routh(&p).unwrap();
        assert_eq!(r.rhp_roots, 2);
        assert!(!r.is_stable());
    }

    #[test]
    fn complex_rhp_pair() {
        // s² − s + 1: roots (1 ± j√3)/2, both RHP.
        let r = routh(&Poly::new(vec![1.0, -1.0, 1.0])).unwrap();
        assert_eq!(r.rhp_roots, 2);
    }

    #[test]
    fn marginal_imaginary_axis_pair() {
        // (s² + 1)(s + 1) = s³ + s² + s + 1: jω-axis pair ⇒ marginal,
        // zero RHP roots.
        let p = &Poly::new(vec![1.0, 0.0, 1.0]) * &Poly::new(vec![1.0, 1.0]);
        let r = routh(&p).unwrap();
        assert!(r.marginal);
        assert_eq!(r.rhp_roots, 0);
        assert!(!r.is_stable());
    }

    #[test]
    fn fifth_order_textbook_case() {
        // s⁵ + 2s⁴ + 2s³ + 4s² + 11s + 10 — classic ε-case with 2 RHP
        // roots (Ogata).
        let p = Poly::new(vec![10.0, 11.0, 4.0, 2.0, 2.0, 1.0]);
        let r = routh(&p).unwrap();
        assert_eq!(r.rhp_roots, 2, "{r:?}");
    }

    #[test]
    fn negative_leading_coefficient() {
        // −(s+1)(s+2): stable roots, flipped sign — still stable.
        let p = Poly::from_real_roots(&[-1.0, -2.0]).scale(-1.0);
        let r = routh(&p).unwrap();
        assert_eq!(r.rhp_roots, 0);
        assert!(r.is_stable());
    }

    #[test]
    fn constant_polynomial() {
        let r = routh(&Poly::constant(3.0)).unwrap();
        assert!(r.is_stable());
    }

    #[test]
    fn zero_rejected() {
        assert_eq!(
            routh(&Poly::zero()).unwrap_err(),
            RouthError::ZeroPolynomial
        );
        assert!(!is_hurwitz(&Poly::zero()));
    }

    #[test]
    fn agrees_with_root_finder_on_random_cubics() {
        // Cross-validate against the Aberth root finder.
        use htmpll_num::roots::find_roots;
        let cases = [
            vec![1.0, 2.0, 3.0, 1.0],
            vec![5.0, -1.0, 2.0, 1.0],
            vec![-1.0, 4.0, -2.0, 1.0],
            vec![0.5, 0.5, 4.0, 1.0],
        ];
        for c in cases {
            let p = Poly::new(c.clone());
            let rhp_true = find_roots(&p)
                .unwrap()
                .iter()
                .filter(|z| z.re > 1e-9)
                .count();
            let r = routh(&p).unwrap();
            assert_eq!(r.rhp_roots, rhp_true, "coeffs {c:?}");
        }
    }
}
