//! Padé approximation of pure time delay.
//!
//! Real loops have latency — divider pipelines, PFD logic, charge-pump
//! switching — that erodes phase margin at exactly the fast-loop
//! operating points where sampling effects already bite. A pure delay
//! `e^{−sτ}` is not rational, but its diagonal Padé approximants are,
//! which keeps the *exact* lattice-sum evaluation of the effective gain
//! available for delayed loops.
//!
//! ```
//! use htmpll_lti::delay::pade_delay;
//! use htmpll_num::Complex;
//!
//! let d = pade_delay(0.5, 3).unwrap();
//! let s = Complex::from_im(1.0);
//! let exact = (-s * 0.5).exp();
//! assert!((d.eval(s) - exact).abs() < 1e-6);
//! ```

use crate::tf::{Tf, TfError};
use htmpll_num::Poly;

/// Maximum supported Padé order (beyond ~8 the coefficients lose
/// precision in `f64` and the approximation stops improving).
pub const MAX_PADE_ORDER: usize = 8;

/// The diagonal Padé approximant of order `(n, n)` to the pure delay
/// `e^{−sτ}`:
///
/// ```text
/// e^{−sτ} ≈ P(−sτ)/P(sτ),   P(x) = Σ_k  (2n−k)!·n! / ((2n)!·k!·(n−k)!) · x^k
/// ```
///
/// The approximant is all-pass (`|H(jω)| = 1` exactly) and matches the
/// delay's phase to order `ω^{2n+1}` — accurate up to roughly
/// `ωτ ≲ n`.
///
/// `tau = 0` returns the unity transfer function.
///
/// # Errors
///
/// Rejects negative `tau`, zero order, or order above
/// [`MAX_PADE_ORDER`].
pub fn pade_delay(tau: f64, order: usize) -> Result<Tf, TfError> {
    if !(tau >= 0.0 && tau.is_finite()) {
        // Reuse the zero-denominator variant for an invalid scalar: the
        // dedicated message would need a new error variant for one
        // degenerate input.
        return Err(TfError::ZeroDenominator);
    }
    if order == 0 || order > MAX_PADE_ORDER {
        return Err(TfError::ZeroDenominator);
    }
    if tau == 0.0 {
        return Ok(Tf::one());
    }
    let n = order;
    // c_k = (2n−k)!·n! / ((2n)!·k!·(n−k)!), computed by the stable
    // recurrence c_0 = 1, c_{k+1} = c_k·(n−k)/((2n−k)(k+1)).
    let mut c = vec![0.0f64; n + 1];
    c[0] = 1.0;
    for k in 0..n {
        c[k + 1] = c[k] * (n - k) as f64 / (((2 * n - k) * (k + 1)) as f64);
    }
    // P(sτ) ascending in s: coefficient of s^k is c_k·τ^k.
    let mut den = Vec::with_capacity(n + 1);
    let mut num = Vec::with_capacity(n + 1);
    let mut tk = 1.0;
    for (k, &ck) in c.iter().enumerate() {
        den.push(ck * tk);
        num.push(if k % 2 == 0 { ck * tk } else { -ck * tk });
        tk *= tau;
    }
    Tf::new(Poly::new(num), Poly::new(den))
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_num::Complex;

    #[test]
    fn first_order_form() {
        // (1, 1) Padé: (1 − sτ/2)/(1 + sτ/2).
        let d = pade_delay(2.0, 1).unwrap();
        assert_eq!(d.num().coeffs(), &[1.0, -1.0]);
        assert_eq!(d.den().coeffs(), &[1.0, 1.0]);
    }

    #[test]
    fn all_pass_magnitude() {
        let d = pade_delay(0.7, 4).unwrap();
        for w in [0.1, 1.0, 5.0, 50.0] {
            assert!((d.eval_jw(w).abs() - 1.0).abs() < 1e-12, "w={w}");
        }
    }

    #[test]
    fn phase_matches_exact_delay_in_band() {
        let tau = 0.4;
        for order in [2usize, 4, 6] {
            let d = pade_delay(tau, order).unwrap();
            // Accurate while ωτ ≲ order.
            let w_max = 0.8 * order as f64 / tau;
            for k in 1..10 {
                let w = w_max * k as f64 / 10.0;
                let approx = d.eval_jw(w);
                let exact = Complex::cis(-w * tau);
                assert!(
                    (approx - exact).abs() < 0.05,
                    "order {order}, w {w}: {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn higher_order_is_better() {
        let tau = 1.0;
        let w = 3.0;
        let exact = Complex::cis(-w * tau);
        let e2 = (pade_delay(tau, 2).unwrap().eval_jw(w) - exact).abs();
        let e5 = (pade_delay(tau, 5).unwrap().eval_jw(w) - exact).abs();
        assert!(e5 < 0.1 * e2, "e2={e2}, e5={e5}");
    }

    #[test]
    fn poles_are_stable() {
        // Padé delay approximants are Hurwitz.
        let d = pade_delay(1.3, 6).unwrap();
        for p in d.poles().unwrap() {
            assert!(p.re < 0.0, "unstable pole {p}");
        }
    }

    #[test]
    fn zero_delay_is_unity() {
        let d = pade_delay(0.0, 3).unwrap();
        assert!((d.eval_jw(7.0) - Complex::ONE).abs() < 1e-15);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(pade_delay(-1.0, 2).is_err());
        assert!(pade_delay(1.0, 0).is_err());
        assert!(pade_delay(1.0, MAX_PADE_ORDER + 1).is_err());
        assert!(pade_delay(f64::NAN, 2).is_err());
    }
}
