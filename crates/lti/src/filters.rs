//! Charge-pump loop-filter impedances.
//!
//! In the paper's architecture (Fig. 3) the loop filter is the impedance
//! `Z_LF(s)` seen by the charge pump, and the loop-filter transfer
//! function is `H_LF(s) = I_cp·Z_LF(s)` (eq. 21). This module builds the
//! standard passive networks:
//!
//! * [`ChargePumpFilter2`] — series `R + 1/(sC₁)` shunted by `C₂`:
//!   one zero, one pole at DC, one high-frequency pole. Combined with
//!   the VCO integrator this yields exactly the **Fig.-5 open-loop
//!   shape** (three poles, two at DC, one zero).
//! * [`ChargePumpFilter3`] — adds a series `R₃`/shunt `C₃` post-filter
//!   section for reference-spur suppression (a fourth-order loop).
//!
//! ```
//! use htmpll_lti::ChargePumpFilter2;
//!
//! let f = ChargePumpFilter2::new(1.0e3, 1.0e-9, 0.1e-9).unwrap();
//! let z = f.impedance();
//! // One finite zero at −1/(R·C₁), poles at 0 and −(C₁+C₂)/(R·C₁·C₂).
//! assert!((f.zero_freq() - 1.0e6).abs() < 1e-3);
//! assert!(z.is_strictly_proper());
//! ```

use crate::tf::Tf;
use htmpll_num::Poly;
use std::fmt;

/// Error returned by filter constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterError {
    /// A component value was zero or negative.
    NonPositiveComponent {
        /// Name of the offending component.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::NonPositiveComponent { name, value } => {
                write!(f, "component {name} must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for FilterError {}

fn positive(name: &'static str, value: f64) -> Result<f64, FilterError> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(FilterError::NonPositiveComponent { name, value })
    }
}

/// Second-order charge-pump filter: `(R + 1/sC₁) ∥ 1/(sC₂)`.
///
/// ```text
/// Z(s) = (1 + sRC₁) / ( s·(C₁+C₂)·(1 + sR·C₁C₂/(C₁+C₂)) )
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargePumpFilter2 {
    r: f64,
    c1: f64,
    c2: f64,
}

impl ChargePumpFilter2 {
    /// Creates the filter from its component values (Ω, F, F).
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite component values.
    pub fn new(r: f64, c1: f64, c2: f64) -> Result<Self, FilterError> {
        Ok(ChargePumpFilter2 {
            r: positive("R", r)?,
            c1: positive("C1", c1)?,
            c2: positive("C2", c2)?,
        })
    }

    /// Series resistance `R`.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Series (zero-setting) capacitance `C₁`.
    pub fn c1(&self) -> f64 {
        self.c1
    }

    /// Shunt (ripple) capacitance `C₂`.
    pub fn c2(&self) -> f64 {
        self.c2
    }

    /// The stabilizing zero frequency `ω_z = 1/(R·C₁)` in rad/s.
    pub fn zero_freq(&self) -> f64 {
        1.0 / (self.r * self.c1)
    }

    /// The high-frequency pole `ω_p = (C₁+C₂)/(R·C₁·C₂)` in rad/s.
    pub fn pole_freq(&self) -> f64 {
        (self.c1 + self.c2) / (self.r * self.c1 * self.c2)
    }

    /// The impedance `Z(s)` as a transfer function (V per A).
    pub fn impedance(&self) -> Tf {
        let num = Poly::new(vec![1.0, self.r * self.c1]);
        let den = Poly::new(vec![0.0, self.c1 + self.c2, self.r * self.c1 * self.c2]);
        Tf::new(num, den).expect("denominator is structurally nonzero")
    }

    /// Designs component values for a target zero `ω_z`, pole `ω_p`
    /// (rad/s, `ω_p > ω_z`) and total capacitance `c_total`.
    ///
    /// This is the inverse of [`zero_freq`]/[`pole_freq`]: with
    /// `ratio = ω_p/ω_z = 1 + C₁/C₂`, `C₁ = c_total·(1 − ωz/ωp)` and
    /// `R = 1/(ω_z·C₁)`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive inputs or `ω_p ≤ ω_z`.
    ///
    /// [`zero_freq`]: ChargePumpFilter2::zero_freq
    /// [`pole_freq`]: ChargePumpFilter2::pole_freq
    pub fn from_pole_zero(wz: f64, wp: f64, c_total: f64) -> Result<Self, FilterError> {
        positive("omega_z", wz)?;
        positive("omega_p", wp)?;
        positive("C_total", c_total)?;
        positive("omega_p - omega_z", wp - wz)?;
        let c1 = c_total * (1.0 - wz / wp);
        let c2 = c_total - c1;
        let r = 1.0 / (wz * c1);
        ChargePumpFilter2::new(r, c1, c2)
    }
}

/// Third-order charge-pump filter: a [`ChargePumpFilter2`] followed by a
/// series `R₃` / shunt `C₃` smoothing section (output taken across `C₃`,
/// unloaded).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargePumpFilter3 {
    base: ChargePumpFilter2,
    r3: f64,
    c3: f64,
}

impl ChargePumpFilter3 {
    /// Creates the filter from its component values.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite component values.
    pub fn new(r: f64, c1: f64, c2: f64, r3: f64, c3: f64) -> Result<Self, FilterError> {
        Ok(ChargePumpFilter3 {
            base: ChargePumpFilter2::new(r, c1, c2)?,
            r3: positive("R3", r3)?,
            c3: positive("C3", c3)?,
        })
    }

    /// The embedded second-order section.
    pub fn base(&self) -> &ChargePumpFilter2 {
        &self.base
    }

    /// Transimpedance `V_out(s)/I_in(s)` with the output taken across
    /// `C₃`:
    /// `H(s) = Z₂(s)·(1/sC₃) / (Z₂(s) + R₃ + 1/sC₃)`.
    pub fn transimpedance(&self) -> Tf {
        let z2 = self.base.impedance();
        // Work with polynomials to avoid spurious cancellations:
        // H = (N₂/D₂)·1/(sC₃) / (N₂/D₂ + R₃ + 1/(sC₃))
        //   = N₂ / ( sC₃·N₂ + D₂·(sC₃R₃ + 1) )
        let s_c3 = Poly::new(vec![0.0, self.c3]);
        let n2 = z2.num().clone();
        let d2 = z2.den().clone();
        let den = &(&s_c3 * &n2) + &(&d2 * &Poly::new(vec![1.0, self.r3 * self.c3]));
        Tf::new(n2, den).expect("denominator is structurally nonzero")
    }

    /// The additional smoothing pole `1/(R₃C₃)` (rad/s) — approximate,
    /// valid when it sits well above [`ChargePumpFilter2::pole_freq`].
    pub fn smoothing_pole_freq(&self) -> f64 {
        1.0 / (self.r3 * self.c3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_num::Complex;

    #[test]
    fn rejects_bad_components() {
        assert!(ChargePumpFilter2::new(0.0, 1e-9, 1e-10).is_err());
        assert!(ChargePumpFilter2::new(1e3, -1e-9, 1e-10).is_err());
        assert!(ChargePumpFilter2::new(1e3, 1e-9, f64::NAN).is_err());
        assert!(ChargePumpFilter3::new(1e3, 1e-9, 1e-10, 0.0, 1e-11).is_err());
        let e = ChargePumpFilter2::new(1e3, 1e-9, 0.0).unwrap_err();
        assert!(e.to_string().contains("C2"));
    }

    #[test]
    fn impedance_matches_physical_network() {
        // Cross-check Z(s) against the direct parallel-combination formula
        // at a set of frequencies.
        let (r, c1, c2) = (2.2e3, 4.7e-9, 0.47e-9);
        let f = ChargePumpFilter2::new(r, c1, c2).unwrap();
        let z = f.impedance();
        for w in [1e3, 1e5, 1e7] {
            let s = Complex::from_im(w);
            let z_series = Complex::from_re(r) + (s * c1).recip();
            let z_shunt = (s * c2).recip();
            let expect = z_series * z_shunt / (z_series + z_shunt);
            let got = z.eval(s);
            assert!(
                (got - expect).abs() < 1e-9 * expect.abs(),
                "w={w}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn pole_zero_locations() {
        let f = ChargePumpFilter2::new(1e3, 1e-9, 0.25e-9).unwrap();
        let z = f.impedance();
        let zeros = z.zeros().unwrap();
        assert_eq!(zeros.len(), 1);
        assert!((zeros[0].re + f.zero_freq()).abs() < 1e-3 * f.zero_freq());
        let poles = z.poles().unwrap();
        assert_eq!(poles.len(), 2);
        assert!(poles.iter().any(|p| p.abs() < 1e-6));
        assert!(poles
            .iter()
            .any(|p| (p.re + f.pole_freq()).abs() < 1e-6 * f.pole_freq()));
        // ω_p/ω_z = 1 + C₁/C₂ = 5.
        assert!((f.pole_freq() / f.zero_freq() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_pole_zero_roundtrip() {
        let f = ChargePumpFilter2::from_pole_zero(1e5, 8e5, 1e-9).unwrap();
        assert!((f.zero_freq() - 1e5).abs() < 1e-6 * 1e5);
        assert!((f.pole_freq() - 8e5).abs() < 1e-6 * 8e5);
        assert!((f.c1() + f.c2() - 1e-9).abs() < 1e-21);
        assert!(ChargePumpFilter2::from_pole_zero(8e5, 1e5, 1e-9).is_err());
    }

    #[test]
    fn third_order_adds_pole() {
        let f3 = ChargePumpFilter3::new(1e3, 1e-9, 0.1e-9, 500.0, 20e-12).unwrap();
        let h = f3.transimpedance();
        // 3 poles total (one at DC), 1 zero.
        assert_eq!(h.den().degree(), 3);
        assert_eq!(h.num().degree(), 1);
        let poles = h.poles().unwrap();
        assert!(poles.iter().any(|p| p.abs() < 1e-3));
        // Exact circuit cross-check: H = Z₂·(1/sC₃)/(Z₂ + R₃ + 1/sC₃).
        let z2 = f3.base().impedance();
        for w in [1e3, 1e6, 1e9] {
            let s = Complex::from_im(w);
            let zc3 = (s * 20e-12).recip();
            let z2v = z2.eval(s);
            let expect = z2v * zc3 / (z2v + 500.0 + zc3);
            let got = h.eval(s);
            assert!(
                (got - expect).abs() < 1e-9 * expect.abs(),
                "w={w}: {got} vs {expect}"
            );
        }
        // Low-frequency behavior approximates the 2nd-order filter up to
        // the capacitive loading ratio C₃/(C₁+C₂) ≈ 1.8%.
        let a = h.eval_jw(1e3);
        let b = z2.eval_jw(1e3);
        assert!((a - b).abs() < 0.05 * b.abs(), "{a} vs {b}");
        // Above the smoothing pole, the third-order filter rolls off faster.
        let w_hi = 100.0 * f3.smoothing_pole_freq();
        assert!(h.eval_jw(w_hi).abs() < 0.2 * z2.eval_jw(w_hi).abs());
    }
}
