//! Bode (frequency-response) sweeps with phase unwrapping.
//!
//! Works on any frequency response `f(ω) → ℂ`, not just rational
//! [`Tf`]s — the same sweep machinery later serves the *effective*
//! open-loop gain `λ(jω)` of the time-varying PLL model, which is not a
//! rational function.
//!
//! ```
//! use htmpll_lti::{bode_sweep, Tf};
//! use htmpll_num::optim::log_grid;
//!
//! let h = Tf::integrator();
//! let pts = bode_sweep(|w| h.eval_jw(w), &log_grid(0.1, 10.0, 5));
//! assert!((pts[2].mag_db - 0.0).abs() < 1e-9); // |1/jω| = 1 at ω = 1
//! assert!((pts[2].phase_deg + 90.0).abs() < 1e-9);
//! ```

use crate::tf::Tf;
use htmpll_num::Complex;

/// One sample of a frequency-response sweep.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodePoint {
    /// Angular frequency in rad/s.
    pub omega: f64,
    /// Complex response at `jω`.
    pub response: Complex,
    /// Magnitude in dB, `20·log₁₀|H|`.
    pub mag_db: f64,
    /// Unwrapped phase in degrees (continuous along the sweep).
    pub phase_deg: f64,
}

/// Converts a linear magnitude to dB.
#[inline]
pub fn to_db(mag: f64) -> f64 {
    20.0 * mag.log10()
}

/// Converts dB to linear magnitude.
#[inline]
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Sweeps a frequency response over `grid`, unwrapping the phase so it is
/// continuous from point to point (jumps larger than 180° are folded).
pub fn bode_sweep<F: FnMut(f64) -> Complex>(mut f: F, grid: &[f64]) -> Vec<BodePoint> {
    let values: Vec<Complex> = grid.iter().map(|&w| f(w)).collect();
    bode_from_values(grid, &values)
}

/// Builds Bode points from already-evaluated responses (e.g. computed in
/// parallel by `htmpll-par`): magnitude conversion plus the sequential
/// phase unwrap, which depends only on the value *sequence* and is
/// therefore bitwise-identical however `values` was produced.
///
/// # Panics
///
/// Panics when `grid` and `values` lengths differ.
pub fn bode_from_values(grid: &[f64], values: &[Complex]) -> Vec<BodePoint> {
    assert_eq!(grid.len(), values.len(), "grid/values length mismatch");
    let mut out = Vec::with_capacity(grid.len());
    let mut prev_phase: Option<f64> = None;
    for (&w, &h) in grid.iter().zip(values) {
        let mut phase = h.arg().to_degrees();
        if let Some(p) = prev_phase {
            while phase - p > 180.0 {
                phase -= 360.0;
            }
            while phase - p < -180.0 {
                phase += 360.0;
            }
        }
        prev_phase = Some(phase);
        out.push(BodePoint {
            omega: w,
            response: h,
            mag_db: to_db(h.abs()),
            phase_deg: phase,
        });
    }
    out
}

/// Convenience sweep for rational transfer functions.
pub fn bode_tf(tf: &Tf, grid: &[f64]) -> Vec<BodePoint> {
    bode_sweep(|w| tf.eval_jw(w), grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_num::optim::log_grid;
    use htmpll_num::Poly;

    #[test]
    fn db_conversions_roundtrip() {
        assert!((to_db(10.0) - 20.0).abs() < 1e-12);
        assert!((from_db(-6.020_599_913_279_624) - 0.5).abs() < 1e-12);
        for m in [0.01, 0.5, 1.0, 30.0] {
            assert!((from_db(to_db(m)) - m).abs() < 1e-12 * m.max(1.0));
        }
    }

    #[test]
    fn first_order_lowpass_asymptotes() {
        let h = Tf::first_order_lowpass(1.0);
        let pts = bode_tf(&h, &log_grid(1e-3, 1e3, 61));
        // DC: 0 dB, 0°; far above corner: −20 dB/dec, −90°.
        assert!(pts[0].mag_db.abs() < 0.01);
        assert!(pts[0].phase_deg.abs() < 0.1);
        let last = pts.last().unwrap();
        assert!((last.phase_deg + 90.0).abs() < 0.1);
        // 3 decades above corner: ≈ −60 dB.
        assert!((last.mag_db + 60.0).abs() < 0.1);
    }

    #[test]
    fn phase_unwrap_through_double_integrator_with_delay_like_lag() {
        // 1/s² · 1/(s+1)²: total phase runs from −180° to −360°; raw
        // atan2 would wrap, the sweep must not.
        let den = &Poly::new(vec![0.0, 0.0, 1.0]) * &Poly::from_real_roots(&[-1.0, -1.0]);
        let h = Tf::new(Poly::constant(1.0), den).unwrap();
        let pts = bode_tf(&h, &log_grid(1e-2, 1e2, 200));
        // The first sample has no unwrap reference: atan2 places the
        // near-−180° start at +180° − ε. The sweep then descends a full
        // 180° without wrapping, ending near 0° in this convention.
        assert!((pts[0].phase_deg - 180.0).abs() < 2.0);
        let last = pts.last().unwrap();
        assert!(
            last.phase_deg.abs() < 2.0,
            "unwrapped end phase {}",
            last.phase_deg
        );
        // Monotone decreasing phase for this all-pole-with-no-zero system.
        for w in pts.windows(2) {
            assert!(w[1].phase_deg <= w[0].phase_deg + 1e-9);
        }
    }

    #[test]
    fn sweep_preserves_grid() {
        let g = log_grid(0.1, 10.0, 7);
        let pts = bode_sweep(|w| Complex::from_re(1.0 + w), &g);
        assert_eq!(pts.len(), 7);
        for (p, w) in pts.iter().zip(&g) {
            assert_eq!(p.omega, *w);
            assert!((p.response.re - (1.0 + w)).abs() < 1e-15);
        }
    }
}
