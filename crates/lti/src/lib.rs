//! # htmpll-lti — continuous-time LTI systems
//!
//! The linear time-invariant substrate of the `htmpll` workspace:
//!
//! * [`Tf`] — rational transfer functions in `s` with series / parallel /
//!   feedback composition, pole–zero extraction, and frequency scaling.
//! * [`Pfe`] — partial-fraction expansion **with repeated poles** (the
//!   charge-pump PLL's double pole at DC is the motivating case); feeds
//!   the exact lattice-sum evaluation of the effective open-loop gain.
//! * [`bode`] — frequency sweeps with phase unwrapping, over arbitrary
//!   (not necessarily rational) frequency responses.
//! * [`grid`] — the shared [`FrequencyGrid`] vocabulary type
//!   (log / linear / per-decade) consumed by every sweep entry point.
//! * [`margins`] — unity-gain crossover, phase margin, gain margin,
//!   −3 dB bandwidth and peaking, again over arbitrary responses so the
//!   same extractor serves `A(jω)` and the time-varying `λ(jω)`.
//! * [`stability`] — Routh–Hurwitz analysis for the classical LTI
//!   verdict.
//! * [`filters`] — the passive charge-pump loop-filter networks
//!   (second- and third-order) that set the open-loop shape.
//! * [`response`] — exact impulse/step responses through the PFE.
//!
//! ```
//! use htmpll_lti::{stability_margins, ChargePumpFilter2, Tf};
//!
//! // Build A(s) = Z(s)/s (gains normalized) and read its phase margin.
//! let z = ChargePumpFilter2::from_pole_zero(0.25, 4.0, 1.0).unwrap().impedance();
//! let a = &z * &Tf::integrator();
//! let m = stability_margins(|w| a.eval_jw(w), 1e-3, 1e3).unwrap();
//! assert!(m.phase_margin_deg > 0.0);
//! ```

#![warn(missing_docs)]

pub mod bode;
pub mod delay;
pub mod filters;
pub mod grid;
pub mod margins;
pub mod pfe;
pub mod response;
pub mod stability;
pub mod tf;

pub use bode::{bode_from_values, bode_sweep, bode_tf, BodePoint};
pub use delay::pade_delay;
pub use filters::{ChargePumpFilter2, ChargePumpFilter3, FilterError};
pub use grid::{FrequencyGrid, GridError};
pub use margins::{
    bandwidth_3db, bandwidth_3db_precomputed, margin_scan_grid, peaking_db, peaking_db_precomputed,
    stability_margins, stability_margins_precomputed, unity_gain_crossings,
    unity_gain_crossings_precomputed, MarginError, Margins,
};
pub use pfe::{Pfe, PfeTerm};
pub use stability::{is_hurwitz, routh, RouthResult};
pub use tf::{Tf, TfError};
