//! Real-coefficient polynomials.
//!
//! Transfer-function numerators and denominators are [`Poly`] values:
//! real coefficients in **ascending** power order (`coeffs[k]` multiplies
//! `x^k`). Evaluation supports complex arguments (Horner), which is what
//! Laplace-domain analysis needs.
//!
//! ```
//! use htmpll_num::{Complex, Poly};
//!
//! // p(x) = 1 + 2x + x²  =  (1 + x)²
//! let p = Poly::new(vec![1.0, 2.0, 1.0]);
//! assert_eq!(p.eval(-1.0), 0.0);
//! assert_eq!(p.degree(), 2);
//! let at_j = p.eval_complex(Complex::I); // (1+j)² = 2j
//! assert!((at_j - Complex::new(0.0, 2.0)).abs() < 1e-15);
//! ```

use crate::complex::Complex;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A polynomial with real `f64` coefficients in ascending power order.
///
/// The zero polynomial is represented by an empty coefficient vector (or
/// any all-zero vector; [`Poly::new`] trims trailing zeros).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, PartialEq)]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// Creates a polynomial from ascending-order coefficients, trimming
    /// trailing (highest-order) zeros.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Poly::new(vec![c])
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        Poly::new(vec![0.0, 1.0])
    }

    /// Builds the monic polynomial with the given real roots.
    pub fn from_real_roots(roots: &[f64]) -> Self {
        let mut p = Poly::constant(1.0);
        for &r in roots {
            p = &p * &Poly::new(vec![-r, 1.0]);
        }
        p
    }

    /// Builds a real monic polynomial from complex roots.
    ///
    /// Complex roots must come in conjugate pairs (within `tol` on the
    /// pairing); each pair contributes a real quadratic factor so the
    /// result has exactly real coefficients with no imaginary residue.
    ///
    /// # Errors
    ///
    /// Returns the unpaired root when a complex root has no conjugate
    /// partner within `tol`.
    pub fn from_complex_roots(roots: &[Complex], tol: f64) -> Result<Self, Complex> {
        let mut p = Poly::constant(1.0);
        let mut used = vec![false; roots.len()];
        for (i, &r) in roots.iter().enumerate() {
            if used[i] {
                continue;
            }
            if r.im.abs() <= tol {
                used[i] = true;
                p = &p * &Poly::new(vec![-r.re, 1.0]);
            } else {
                // Find the conjugate partner.
                let mut partner = None;
                for (k, &q) in roots.iter().enumerate().skip(i + 1) {
                    if !used[k] && (q - r.conj()).abs() <= tol * (1.0 + r.abs()) {
                        partner = Some(k);
                        break;
                    }
                }
                match partner {
                    Some(k) => {
                        used[i] = true;
                        used[k] = true;
                        // (x − r)(x − r̄) = x² − 2Re(r)x + |r|²
                        p = &p * &Poly::new(vec![r.norm_sqr(), -2.0 * r.re, 1.0]);
                    }
                    None => return Err(r),
                }
            }
        }
        Ok(p)
    }

    fn trim(&mut self) {
        while let Some(&last) = self.coeffs.last() {
            if last == 0.0 {
                self.coeffs.pop();
            } else {
                break;
            }
        }
    }

    /// Ascending-order coefficient slice (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Coefficient of `x^k` (zero when `k` exceeds the degree).
    pub fn coeff(&self, k: usize) -> f64 {
        self.coeffs.get(k).copied().unwrap_or(0.0)
    }

    /// Degree of the polynomial; the zero polynomial has degree 0 by
    /// convention here (use [`Poly::is_zero`] to distinguish it).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Returns true for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The leading (highest-order) coefficient, or 0 for the zero polynomial.
    pub fn leading(&self) -> f64 {
        self.coeffs.last().copied().unwrap_or(0.0)
    }

    /// Evaluates at a real point by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates at a complex point by Horner's rule.
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + c)
    }

    /// The formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| k as f64 * c)
                .collect(),
        )
    }

    /// Multiplies by a real scalar.
    pub fn scale(&self, k: f64) -> Poly {
        Poly::new(self.coeffs.iter().map(|&c| c * k).collect())
    }

    /// Makes the polynomial monic (leading coefficient 1).
    ///
    /// Returns the zero polynomial unchanged.
    pub fn monic(&self) -> Poly {
        let l = self.leading();
        if l == 0.0 {
            self.clone()
        } else {
            self.scale(1.0 / l)
        }
    }

    /// Multiplies by `x^k` (shifts coefficients up).
    pub fn mul_xk(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![0.0; k];
        coeffs.extend_from_slice(&self.coeffs);
        Poly::new(coeffs)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = quotient·divisor + remainder` and
    /// `deg(remainder) < deg(divisor)`.
    ///
    /// # Panics
    ///
    /// Panics when dividing by the zero polynomial.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        if self.is_zero() || self.degree() < divisor.degree() {
            return (Poly::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let dlead = divisor.leading();
        let ddeg = divisor.degree();
        let qdeg = self.degree() - ddeg;
        let mut q = vec![0.0; qdeg + 1];
        for k in (0..=qdeg).rev() {
            let c = rem[k + ddeg] / dlead;
            q[k] = c;
            if c != 0.0 {
                for (j, &d) in divisor.coeffs.iter().enumerate() {
                    rem[k + j] -= c * d;
                }
            }
        }
        rem.truncate(ddeg);
        (Poly::new(q), Poly::new(rem))
    }

    /// Substitutes `x → a·x` (frequency scaling of a transfer polynomial).
    pub fn scale_arg(&self, a: f64) -> Poly {
        let mut pw = 1.0;
        Poly::new(
            self.coeffs
                .iter()
                .map(|&c| {
                    let v = c * pw;
                    pw *= a;
                    v
                })
                .collect(),
        )
    }
}

impl Default for Poly {
    fn default() -> Self {
        Poly::zero()
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Poly{:?}", self.coeffs)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match k {
                0 => write!(f, "{a}")?,
                1 => {
                    if a == 1.0 {
                        write!(f, "x")?
                    } else {
                        write!(f, "{a}·x")?
                    }
                }
                _ => {
                    if a == 1.0 {
                        write!(f, "x^{k}")?
                    } else {
                        write!(f, "{a}·x^{k}")?
                    }
                }
            }
            first = false;
        }
        Ok(())
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Poly::new((0..n).map(|k| self.coeff(k) + rhs.coeff(k)).collect())
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Poly::new((0..n).map(|k| self.coeff(k) - rhs.coeff(k)).collect())
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(-1.0)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_trims_zeros() {
        let p = Poly::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        assert_eq!(p.degree(), 1);
        assert!(Poly::new(vec![0.0, 0.0]).is_zero());
        assert!(Poly::zero().is_zero());
        assert_eq!(Poly::default(), Poly::zero());
    }

    #[test]
    fn eval_real_and_complex() {
        let p = Poly::new(vec![1.0, -3.0, 2.0]); // 2x² − 3x + 1 = (2x−1)(x−1)
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(0.5), 0.0);
        assert_eq!(p.eval(0.0), 1.0);
        let z = Complex::new(1.0, 1.0);
        let expect = 2.0 * z.sqr() - 3.0 * z + 1.0;
        assert!(p.eval_complex(z).approx_eq(expect, 1e-14));
        assert_eq!(Poly::zero().eval(3.0), 0.0);
        assert_eq!(Poly::zero().eval_complex(z), Complex::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Poly::new(vec![1.0, 1.0]); // 1 + x
        let b = Poly::new(vec![-1.0, 1.0]); // −1 + x
        assert_eq!((&a + &b).coeffs(), &[0.0, 2.0]);
        assert_eq!((&a - &b).coeffs(), &[2.0]);
        assert_eq!((&a * &b).coeffs(), &[-1.0, 0.0, 1.0]); // x² − 1
        assert_eq!((-&a).coeffs(), &[-1.0, -1.0]);
        // Cancellation trims degree.
        assert!((&a - &a).is_zero());
    }

    #[test]
    fn derivative_and_scale() {
        let p = Poly::new(vec![5.0, 0.0, 3.0, 1.0]); // 5 + 3x² + x³
        assert_eq!(p.derivative().coeffs(), &[0.0, 6.0, 3.0]);
        assert!(Poly::constant(4.0).derivative().is_zero());
        assert_eq!(p.scale(2.0).coeffs(), &[10.0, 0.0, 6.0, 2.0]);
        assert_eq!(p.monic().leading(), 1.0);
        assert!(Poly::zero().monic().is_zero());
    }

    #[test]
    fn mul_xk_shifts() {
        let p = Poly::new(vec![1.0, 2.0]);
        assert_eq!(p.mul_xk(2).coeffs(), &[0.0, 0.0, 1.0, 2.0]);
        assert!(Poly::zero().mul_xk(3).is_zero());
    }

    #[test]
    fn division_roundtrip() {
        let n = Poly::new(vec![-1.0, 0.0, 0.0, 1.0]); // x³ − 1
        let d = Poly::new(vec![-1.0, 1.0]); // x − 1
        let (q, r) = n.div_rem(&d);
        assert_eq!(q.coeffs(), &[1.0, 1.0, 1.0]); // x² + x + 1
        assert!(r.is_zero());

        let n2 = Poly::new(vec![1.0, 0.0, 1.0]); // x² + 1
        let (q2, r2) = n2.div_rem(&d);
        let back = &(&q2 * &d) + &r2;
        assert_eq!(back, n2);
        assert!(r2.degree() < d.degree() || r2.is_zero());
    }

    #[test]
    fn division_by_higher_degree_is_remainder() {
        let n = Poly::new(vec![1.0, 1.0]);
        let d = Poly::new(vec![1.0, 0.0, 1.0]);
        let (q, r) = n.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r, n);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Poly::constant(1.0).div_rem(&Poly::zero());
    }

    #[test]
    fn from_real_roots() {
        let p = Poly::from_real_roots(&[1.0, -2.0]);
        // (x−1)(x+2) = x² + x − 2
        assert_eq!(p.coeffs(), &[-2.0, 1.0, 1.0]);
        assert_eq!(Poly::from_real_roots(&[]).coeffs(), &[1.0]);
    }

    #[test]
    fn from_complex_roots_conjugate_pairs() {
        let roots = [
            Complex::new(0.0, 1.0),
            Complex::new(0.0, -1.0),
            Complex::new(-2.0, 0.0),
        ];
        let p = Poly::from_complex_roots(&roots, 1e-12).unwrap();
        // (x²+1)(x+2) = x³ + 2x² + x + 2
        assert_eq!(p.coeffs(), &[2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn from_complex_roots_unpaired_rejected() {
        let roots = [Complex::new(0.0, 1.0)];
        assert!(Poly::from_complex_roots(&roots, 1e-12).is_err());
    }

    #[test]
    fn scale_arg_substitution() {
        let p = Poly::new(vec![1.0, 1.0, 1.0]); // 1 + x + x²
        let q = p.scale_arg(2.0); // 1 + 2x + 4x²
        assert_eq!(q.coeffs(), &[1.0, 2.0, 4.0]);
        for x in [-1.0, 0.3, 2.0] {
            assert!((q.eval(x) - p.eval(2.0 * x)).abs() < 1e-12);
        }
    }

    #[test]
    fn display() {
        let p = Poly::new(vec![-2.0, 0.0, 1.0]);
        assert_eq!(format!("{p}"), "x^2 - 2");
        assert_eq!(format!("{}", Poly::zero()), "0");
        assert_eq!(format!("{}", Poly::new(vec![0.0, -1.0])), "-x");
    }
}
