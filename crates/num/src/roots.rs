//! Polynomial root finding by the Aberth–Ehrlich method.
//!
//! Transfer-function pole/zero extraction reduces to finding all complex
//! roots of a real polynomial. [`find_roots`] runs simultaneous
//! Aberth–Ehrlich iteration from perturbed-circle initial guesses, then
//! polishes each root with a few Newton steps.
//!
//! ```
//! use htmpll_num::{roots::find_roots, Poly};
//!
//! // x² + 1 → roots ±j
//! let p = Poly::new(vec![1.0, 0.0, 1.0]);
//! let r = find_roots(&p).expect("converged");
//! assert_eq!(r.len(), 2);
//! assert!(r.iter().all(|z| (z.abs() - 1.0).abs() < 1e-10));
//! ```

use crate::complex::Complex;
use crate::poly::Poly;
use std::fmt;

/// Error returned when root finding cannot proceed or fails to converge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindRootsError {
    /// The zero polynomial has no well-defined roots.
    ZeroPolynomial,
    /// Iteration failed to converge within the internal budget.
    NoConvergence,
}

impl fmt::Display for FindRootsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindRootsError::ZeroPolynomial => write!(f, "zero polynomial has no roots"),
            FindRootsError::NoConvergence => write!(f, "root iteration did not converge"),
        }
    }
}

impl std::error::Error for FindRootsError {}

/// Finds all complex roots of a real polynomial.
///
/// Degree-0 polynomials return an empty root list. Exact zero roots
/// (trailing zero constant coefficients) are deflated out first so they
/// are returned exactly, which matters for transfer functions with poles
/// at DC.
///
/// # Errors
///
/// Returns [`FindRootsError::ZeroPolynomial`] for the zero polynomial and
/// [`FindRootsError::NoConvergence`] if the Aberth iteration stalls
/// (pathological inputs far outside the conditioning of PLL loop
/// polynomials).
pub fn find_roots(p: &Poly) -> Result<Vec<Complex>, FindRootsError> {
    if p.is_zero() {
        return Err(FindRootsError::ZeroPolynomial);
    }
    // Deflate exact roots at the origin.
    let mut coeffs = p.coeffs().to_vec();
    let mut zeros_at_origin = 0usize;
    while coeffs.first() == Some(&0.0) && coeffs.len() > 1 {
        coeffs.remove(0);
        zeros_at_origin += 1;
    }
    let reduced = Poly::new(coeffs);
    let mut roots = vec![Complex::ZERO; zeros_at_origin];
    if reduced.degree() == 0 {
        return Ok(roots);
    }
    roots.extend(aberth(&reduced)?);
    Ok(roots)
}

/// Upper bound on root magnitudes (Cauchy bound).
fn cauchy_bound(p: &Poly) -> f64 {
    let lead = p.leading().abs();
    let m = p
        .coeffs()
        .iter()
        .take(p.degree())
        .map(|c| c.abs())
        .fold(0.0, f64::max);
    1.0 + m / lead
}

fn aberth(p: &Poly) -> Result<Vec<Complex>, FindRootsError> {
    let n = p.degree();
    let dp = p.derivative();
    let r = cauchy_bound(p);
    // Initial guesses: points on a circle of radius ~r/2 with an
    // irrational angular offset to break symmetry (a classic choice that
    // avoids the stalling fixed points of symmetric starting sets).
    let mut z: Vec<Complex> = (0..n)
        .map(|k| {
            let theta = 2.0 * std::f64::consts::PI * (k as f64) / (n as f64) + 0.4;
            Complex::from_polar(0.5 * r.max(1e-3), theta)
        })
        .collect();

    let scale = p
        .coeffs()
        .iter()
        .map(|c| c.abs())
        .fold(0.0, f64::max)
        .max(f64::MIN_POSITIVE);
    let tol = 1e-14 * scale;

    let max_iter = 200 + 20 * n;
    for iter in 0..max_iter {
        let mut max_step = 0.0f64;
        for i in 0..n {
            let pi = p.eval_complex(z[i]);
            if pi.abs() <= tol {
                continue;
            }
            let dpi = dp.eval_complex(z[i]);
            let newton = if dpi == Complex::ZERO {
                // Nudge off a critical point.
                Complex::new(1e-8, 1e-8)
            } else {
                pi / dpi
            };
            let mut repulse = Complex::ZERO;
            for (j, &zj) in z.iter().enumerate() {
                if j != i {
                    let d = z[i] - zj;
                    if d != Complex::ZERO {
                        repulse += d.recip();
                    }
                }
            }
            let denom = Complex::ONE - newton * repulse;
            let step = if denom.abs() < 1e-300 {
                newton
            } else {
                newton / denom
            };
            z[i] -= step;
            max_step = max_step.max(step.abs());
        }
        if max_step < 1e-13 * (1.0 + r) {
            // Newton polish for final accuracy.
            for zi in z.iter_mut() {
                for _ in 0..3 {
                    let pv = p.eval_complex(*zi);
                    let dv = dp.eval_complex(*zi);
                    if dv == Complex::ZERO || pv.abs() <= tol {
                        break;
                    }
                    *zi -= pv / dv;
                }
            }
            snap_to_axes(&mut z);
            htmpll_obs::record!("num", "roots.aberth_iters").record((iter + 1) as f64);
            return Ok(z);
        }
    }
    htmpll_obs::counter!("num", "roots.aberth_failures").inc();
    Err(FindRootsError::NoConvergence)
}

/// Snaps tiny imaginary/real parts of roots to zero so real roots of real
/// polynomials come back exactly real (within conditioning).
fn snap_to_axes(roots: &mut [Complex]) {
    for z in roots.iter_mut() {
        let m = z.abs();
        let eps = 1e-10 * (1.0 + m);
        if z.im.abs() < eps {
            z.im = 0.0;
        }
        if z.re.abs() < eps {
            z.re = 0.0;
        }
    }
}

/// Groups nearly-equal roots into `(representative, multiplicity)` clusters.
///
/// Roots closer than `tol·(1 + |z|)` are merged; the representative is the
/// cluster mean. Partial-fraction expansion uses this to recognize
/// repeated poles (e.g. the double pole at DC of a charge-pump PLL).
pub fn cluster_roots(roots: &[Complex], tol: f64) -> Vec<(Complex, usize)> {
    let mut clusters: Vec<(Complex, usize)> = Vec::new();
    for &r in roots {
        let mut placed = false;
        for (rep, count) in clusters.iter_mut() {
            if (r - *rep).abs() <= tol * (1.0 + rep.abs()) {
                // Running mean keeps the representative centered.
                let n = *count as f64;
                *rep = (*rep * n + r) / (n + 1.0);
                *count += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            clusters.push((r, 1));
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_contains_root(roots: &[Complex], target: Complex, tol: f64) {
        assert!(
            roots.iter().any(|z| (*z - target).abs() < tol),
            "no root near {target} in {roots:?}"
        );
    }

    #[test]
    fn quadratic_complex_pair() {
        // x² + 2x + 5 → −1 ± 2j
        let p = Poly::new(vec![5.0, 2.0, 1.0]);
        let r = find_roots(&p).unwrap();
        assert_eq!(r.len(), 2);
        assert_contains_root(&r, Complex::new(-1.0, 2.0), 1e-9);
        assert_contains_root(&r, Complex::new(-1.0, -2.0), 1e-9);
    }

    #[test]
    fn real_roots_are_real() {
        // (x−1)(x−2)(x−3)
        let p = Poly::from_real_roots(&[1.0, 2.0, 3.0]);
        let r = find_roots(&p).unwrap();
        assert_eq!(r.len(), 3);
        for target in [1.0, 2.0, 3.0] {
            assert_contains_root(&r, Complex::from_re(target), 1e-8);
        }
        assert!(
            r.iter().all(|z| z.im == 0.0),
            "roots should be snapped real"
        );
    }

    #[test]
    fn zeros_at_origin_are_exact() {
        // x²(x+3): double root at 0 must come back exactly.
        let p = Poly::new(vec![0.0, 0.0, 3.0, 1.0]);
        let r = find_roots(&p).unwrap();
        let zeros = r.iter().filter(|z| **z == Complex::ZERO).count();
        assert_eq!(zeros, 2);
        assert_contains_root(&r, Complex::from_re(-3.0), 1e-9);
    }

    #[test]
    fn constant_has_no_roots() {
        assert!(find_roots(&Poly::constant(5.0)).unwrap().is_empty());
    }

    #[test]
    fn zero_poly_rejected() {
        assert_eq!(
            find_roots(&Poly::zero()).unwrap_err(),
            FindRootsError::ZeroPolynomial
        );
    }

    #[test]
    fn repeated_roots_found() {
        // (x+1)³ — clustered triple root; Aberth loses some accuracy at
        // multiple roots (conditioning ∝ ε^{1/3}) so use a loose check.
        let p = Poly::from_real_roots(&[-1.0, -1.0, -1.0]);
        let r = find_roots(&p).unwrap();
        assert_eq!(r.len(), 3);
        for z in &r {
            assert!((z.re + 1.0).abs() < 1e-4 && z.im.abs() < 1e-4, "{z}");
        }
        let clusters = cluster_roots(&r, 1e-3);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].1, 3);
    }

    #[test]
    fn high_degree_wilkinson_like() {
        // Degree-8 polynomial with roots 1..8 scaled to avoid the worst
        // Wilkinson conditioning.
        let roots: Vec<f64> = (1..=8).map(|k| k as f64 / 8.0).collect();
        let p = Poly::from_real_roots(&roots);
        let r = find_roots(&p).unwrap();
        assert_eq!(r.len(), 8);
        for target in roots {
            assert_contains_root(&r, Complex::from_re(target), 1e-6);
        }
    }

    #[test]
    fn residuals_are_small() {
        let p = Poly::new(vec![2.0, -3.0, 0.5, 1.0, 4.0]);
        let r = find_roots(&p).unwrap();
        assert_eq!(r.len(), 4);
        for z in r {
            assert!(p.eval_complex(z).abs() < 1e-8, "residual too large at {z}");
        }
    }

    #[test]
    fn cluster_roots_groups_and_averages() {
        let roots = [
            Complex::new(1.0, 0.0),
            Complex::new(1.0 + 1e-9, 0.0),
            Complex::new(-2.0, 0.5),
        ];
        let c = cluster_roots(&roots, 1e-6);
        assert_eq!(c.len(), 2);
        let big = c.iter().find(|(_, n)| *n == 2).unwrap();
        assert!((big.0 - Complex::new(1.0, 0.0)).abs() < 1e-8);
    }

    #[test]
    fn error_display() {
        assert!(FindRootsError::ZeroPolynomial.to_string().contains("zero"));
        assert!(FindRootsError::NoConvergence
            .to_string()
            .contains("converge"));
    }
}
