//! # htmpll-num — numerical substrate for the `htmpll` workspace
//!
//! Self-contained numerics used by every other crate in the workspace:
//!
//! * [`Complex`] — `f64` complex arithmetic with the elementary
//!   transcendental functions (including an overflow-safe `coth`).
//! * [`CMat`] — dense row-major complex matrices; the carrier for
//!   truncated harmonic transfer matrices.
//! * [`Lu`] — LU factorization with partial pivoting: solve / inverse /
//!   determinant for the dense closed-loop HTM path.
//! * [`solve`] — escalating panic-free solves ([`RobustLu`]): refined
//!   partial pivoting → complete pivoting → Tikhonov perturbation, with
//!   a [`SolveReport`] grading every factorization.
//! * [`eig`] — complex eigenvalues (Hessenberg + shifted QR) for the
//!   generalized-Nyquist analysis of non-rank-one LPTV loops.
//! * [`Poly`] — real-coefficient polynomials (transfer-function
//!   numerators/denominators) with complex Horner evaluation.
//! * [`roots`] — Aberth–Ehrlich simultaneous root finding plus root
//!   clustering for repeated-pole detection.
//! * [`special`] — exact harmonic lattice sums
//!   `Σ_m (z + jmω₀)^{−r}` via `coth` closed forms; the engine behind
//!   the exact effective open-loop gain `λ(s)` of a sampled PLL.
//! * [`optim`] — scalar bracketing / bisection / Brent refinement for
//!   margin and bandwidth extraction.
//! * [`quad`] — adaptive Simpson quadrature (linear and log-domain) for
//!   noise integrals.
//! * [`rng`] — vendored deterministic PRNG (SplitMix64 + xoshiro256++)
//!   for the behavioral simulator's jitter and noise draws.
//! * [`hash`] — deterministic FNV-1a content hashing for fingerprinting
//!   machine-readable reports (thread-count-invariance checks).
//!
//! Everything is implemented on `std` alone; no external numerics crates.
//!
//! ```
//! use htmpll_num::{Complex, Poly};
//!
//! // Evaluate H(s) = 1/(s² + s + 1) at s = jω.
//! let den = Poly::new(vec![1.0, 1.0, 1.0]);
//! let h = Complex::ONE / den.eval_complex(Complex::from_im(1.0));
//! assert!((h.abs() - 1.0).abs() < 1e-12); // |H(j·1)| = 1 at the resonance
//! ```

#![warn(missing_docs)]

pub mod band_lu;
pub mod complex;
pub mod eig;
pub mod hash;
pub mod lu;
pub mod mat;
pub mod optim;
pub mod poly;
pub mod quad;
pub mod rng;
pub mod roots;
pub mod simd;
pub mod solve;
pub mod special;

pub use band_lu::{BandLu, BandMat};
pub use complex::Complex;
pub use eig::{eigenvalues, EigError};
pub use lu::{Lu, LuError};
pub use mat::{expm, CMat};
pub use poly::Poly;
pub use solve::{solve_robust, FullPivLu, Refined, RobustLu, SolveReport, SolveStage};
