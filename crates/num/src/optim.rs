//! Scalar root bracketing and refinement.
//!
//! Margin extraction (unity-gain crossover, phase crossover, −3 dB
//! bandwidth) reduces to 1-D root finding on smooth functions of
//! frequency. This module provides grid bracketing plus bisection and
//! Brent refinement.
//!
//! ```
//! use htmpll_num::optim::{bisect, brent};
//!
//! let f = |x: f64| x * x - 2.0;
//! let r = brent(f, 1.0, 2.0, 1e-14, 200).expect("bracketed");
//! assert!((r - 2f64.sqrt()).abs() < 1e-12);
//! let r2 = bisect(f, 1.0, 2.0, 1e-12, 200).expect("bracketed");
//! assert!((r2 - 2f64.sqrt()).abs() < 1e-10);
//! ```

use std::fmt;

/// Error returned by the scalar root refiners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` do not straddle zero.
    NotBracketed {
        /// `f` at the left end of the interval.
        fa: f64,
        /// `f` at the right end of the interval.
        fb: f64,
    },
    /// The iteration budget was exhausted before reaching tolerance.
    MaxIterations,
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootError::NotBracketed { fa, fb } => {
                write!(f, "interval does not bracket a root (f(a)={fa}, f(b)={fb})")
            }
            RootError::MaxIterations => write!(f, "root refinement exceeded iteration budget"),
        }
    }
}

impl std::error::Error for RootError {}

/// Bisection on a bracketing interval `[a, b]` with `f(a)·f(b) ≤ 0`.
///
/// # Errors
///
/// [`RootError::NotBracketed`] when the signs agree;
/// [`RootError::MaxIterations`] when `max_iter` halvings do not reach
/// `tol` (interval width).
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed { fa, fb });
    }
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Err(RootError::MaxIterations)
}

/// Brent's method: inverse-quadratic / secant steps guarded by bisection.
///
/// Faster than [`bisect`] on smooth functions while keeping its
/// robustness guarantees.
///
/// # Errors
///
/// Same contract as [`bisect`].
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed { fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let cond_outside = !((lo.min(b) < s) && (s < lo.max(b)));
        let cond_slow = if mflag {
            (s - b).abs() >= (b - c).abs() / 2.0
        } else {
            (s - b).abs() >= (c - d).abs() / 2.0
        };
        let cond_tiny = if mflag {
            (b - c).abs() < tol
        } else {
            (c - d).abs() < tol
        };
        if cond_outside || cond_slow || cond_tiny {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations)
}

/// Scans `f` over a grid and returns every `(left, right)` cell whose
/// endpoints straddle zero (sign change or exact zero at the left edge).
///
/// Non-finite samples are skipped so pole crossings do not produce
/// spurious brackets.
pub fn find_brackets<F: FnMut(f64) -> f64>(mut f: F, grid: &[f64]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut prev: Option<(f64, f64)> = None;
    for &x in grid {
        let fx = f(x);
        if !fx.is_finite() {
            prev = None;
            continue;
        }
        if let Some((px, pfx)) = prev {
            if pfx == 0.0 || pfx.signum() != fx.signum() {
                out.push((px, x));
            }
        }
        prev = Some((x, fx));
    }
    out
}

/// Builds a logarithmically spaced grid of `n ≥ 2` points from `a` to `b`
/// (both strictly positive).
///
/// # Panics
///
/// Panics when `a <= 0`, `b <= 0`, or `n < 2`.
pub fn log_grid(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(a > 0.0 && b > 0.0, "log grid endpoints must be positive");
    assert!(n >= 2, "log grid needs at least two points");
    let (la, lb) = (a.ln(), b.ln());
    (0..n)
        .map(|k| (la + (lb - la) * k as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Builds a linearly spaced grid of `n ≥ 2` points from `a` to `b`.
///
/// # Panics
///
/// Panics when `n < 2`.
pub fn lin_grid(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linear grid needs at least two points");
    (0..n)
        .map(|k| a + (b - a) * k as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 100).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_non_bracket() {
        match bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100) {
            Err(RootError::NotBracketed { .. }) => {}
            other => panic!("expected NotBracketed, got {other:?}"),
        }
    }

    #[test]
    fn brent_matches_bisect_but_faster() {
        let mut calls_brent = 0;
        let r1 = brent(
            |x| {
                calls_brent += 1;
                x.exp() - 3.0
            },
            0.0,
            2.0,
            1e-14,
            200,
        )
        .unwrap();
        let mut calls_bisect = 0;
        let r2 = bisect(
            |x| {
                calls_bisect += 1;
                x.exp() - 3.0
            },
            0.0,
            2.0,
            1e-14,
            200,
        )
        .unwrap();
        assert!((r1 - 3f64.ln()).abs() < 1e-12);
        assert!((r2 - 3f64.ln()).abs() < 1e-12);
        assert!(
            calls_brent < calls_bisect,
            "{calls_brent} vs {calls_bisect}"
        );
    }

    #[test]
    fn brent_on_steep_function() {
        // x³ − 2x − 5 has a root near 2.0945514815.
        let r = brent(|x| x * x * x - 2.0 * x - 5.0, 2.0, 3.0, 1e-14, 200).unwrap();
        assert!((r - 2.0945514815423265).abs() < 1e-10);
    }

    #[test]
    fn brent_rejects_non_bracket() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(RootError::NotBracketed { .. })
        ));
    }

    #[test]
    fn find_brackets_on_sine() {
        let grid = lin_grid(0.1, 9.9, 100);
        let brs = find_brackets(|x| x.sin(), &grid);
        // sin has zeros at π, 2π, 3π inside (0.1, 9.9).
        assert_eq!(brs.len(), 3);
        for (i, (a, b)) in brs.iter().enumerate() {
            let target = std::f64::consts::PI * (i + 1) as f64;
            assert!(*a < target && target < *b);
        }
    }

    #[test]
    fn find_brackets_skips_poles() {
        // tan has a pole at π/2 with a sign flip but non-finite values
        // near it are skipped by sampling tan at the pole cell.
        let grid = lin_grid(0.1, 3.0, 30);
        let brs = find_brackets(
            |x| {
                let t = x.tan();
                if t.abs() > 10.0 {
                    f64::NAN
                } else {
                    t
                }
            },
            &grid,
        );
        // tan's only zero in (0.1, 3.0) would be at π ≈ 3.14 (outside);
        // the sign flip across the pole at π/2 must not create a bracket
        // because the neighboring samples are masked non-finite.
        assert!(brs.is_empty(), "{brs:?}");
    }

    #[test]
    fn grids() {
        let g = log_grid(1.0, 100.0, 3);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 10.0).abs() < 1e-9);
        assert!((g[2] - 100.0).abs() < 1e-9);
        let l = lin_grid(0.0, 1.0, 5);
        assert_eq!(l, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_grid_rejects_nonpositive() {
        let _ = log_grid(0.0, 1.0, 4);
    }

    #[test]
    fn error_display() {
        let e = RootError::NotBracketed { fa: 1.0, fb: 2.0 };
        assert!(e.to_string().contains("bracket"));
        assert!(RootError::MaxIterations.to_string().contains("budget"));
    }
}
