//! Deterministic, dependency-free content hashing (FNV-1a, 64-bit).
//!
//! Used to fingerprint machine-readable reports so that "two runs
//! produced bitwise-identical results" collapses to a single hex-digest
//! comparison — the cross-stack verification corpus relies on this to
//! assert that thread count does not change any numerical output.
//!
//! FNV-1a is not cryptographic; it is a fast, stable checksum whose
//! value is fully determined by the input bytes (no randomized state,
//! unlike `std::collections::hash_map::DefaultHasher`).
//!
//! ```
//! use htmpll_num::hash::Fnv1a;
//!
//! let mut h = Fnv1a::new();
//! h.write(b"hello");
//! h.write_f64(1.5);
//! let a = h.finish();
//! let mut h2 = Fnv1a::new();
//! h2.write(b"hello");
//! h2.write_f64(1.5);
//! assert_eq!(a, h2.finish());
//! ```

/// Streaming 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a UTF-8 string (its bytes).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// Absorbs an `f64` by its exact IEEE-754 bit pattern, so two values
    /// hash equal iff they are bitwise identical (`0.0` and `-0.0`
    /// differ; every NaN payload is distinguished).
    pub fn write_f64(&mut self, x: f64) {
        self.write(&x.to_bits().to_le_bytes());
    }

    /// Absorbs a `u64`.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The current digest as a fixed-width lowercase hex string.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn f64_bit_exactness() {
        let mut a = Fnv1a::new();
        a.write_f64(0.0);
        let mut b = Fnv1a::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "sign of zero must be visible");

        let mut c = Fnv1a::new();
        c.write_f64(1.0 / 3.0);
        let mut d = Fnv1a::new();
        d.write_f64(1.0 / 3.0);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn streaming_matches_concatenation() {
        let mut a = Fnv1a::new();
        a.write(b"ab");
        a.write(b"cd");
        assert_eq!(a.finish(), fnv1a(b"abcd"));
    }

    #[test]
    fn hex_digest_is_fixed_width() {
        let h = Fnv1a::new();
        assert_eq!(h.finish_hex().len(), 16);
        assert_eq!(h.finish_hex(), format!("{:016x}", 0xcbf29ce484222325u64));
    }
}
