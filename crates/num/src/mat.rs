//! Dense complex matrices.
//!
//! [`CMat`] is a row-major dense matrix of [`Complex`] entries. It is the
//! concrete carrier for truncated harmonic transfer matrices and for the
//! linear solves behind closed-loop HTM evaluation.
//!
//! ```
//! use htmpll_num::{CMat, Complex};
//!
//! let a = CMat::identity(3);
//! let b = CMat::from_fn(3, 3, |i, j| Complex::new((i + j) as f64, 0.0));
//! assert_eq!((&a * &b), b);
//! ```

use crate::complex::Complex;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major complex matrix.
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        CMat { rows, cols, data }
    }

    /// Creates a matrix from a row-major slice of entries.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[Complex]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        CMat {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[Complex]) -> Self {
        let n = diag.len();
        let mut m = CMat::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// The outer product `u vᵀ` (no conjugation), a rank-one matrix.
    ///
    /// This is the natural shape of the sampling-PFD HTM `(ω₀/2π)·𝟙𝟙ᵀ`.
    pub fn outer(u: &[Complex], v: &[Complex]) -> Self {
        CMat::from_fn(u.len(), v.len(), |i, j| u[i] * v[j])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns true when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major entry slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutably borrows the underlying row-major entry slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Returns entry `(i, j)` or `None` when out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Option<Complex> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Complex] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<Complex> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Copies the main diagonal into a new vector.
    pub fn diag(&self) -> Vec<Complex> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// The transpose `Aᵀ` (no conjugation).
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// The conjugate transpose `Aᴴ`.
    pub fn hermitian(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, k: Complex) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(x)
                    .fold(Complex::ZERO, |acc, (a, b)| acc + *a * *b)
            })
            .collect()
    }

    /// Vector–matrix product `xᵀ A` (no conjugation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vec_mul");
        let mut y = vec![Complex::ZERO; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            for (j, yj) in y.iter_mut().enumerate() {
                *yj += xi * self[(i, j)];
            }
        }
        y
    }

    /// Sum of all entries — the HTM scalar `λ(s) = 𝟙ᵀ H 𝟙`.
    pub fn sum_entries(&self) -> Complex {
        self.data.iter().copied().sum()
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Max-entry (Chebyshev) norm.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Induced 1-norm (max absolute column sum).
    pub fn norm_one(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Max-entry distance between two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_diff(&self, other: &CMat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Swaps rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Swaps columns `a` and `b` in place.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for i in 0..self.rows {
            self.data.swap(i * self.cols + a, i * self.cols + b);
        }
    }

    /// True when every entry is finite (no NaN/±∞ real or imaginary
    /// part) — the boundary guard for the robust solve paths.
    pub fn is_finite(&self) -> bool {
        self.data
            .iter()
            .all(|z| z.re.is_finite() && z.im.is_finite())
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:.4}  ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in add"
        );
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in sub"
        );
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| -*z).collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = CMat;
    /// Cache-friendly ikj-ordered matrix product.
    fn mul(self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in mul");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == Complex::ZERO {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in out_row.iter_mut().zip(rhs_row) {
                    *o += aik * *r;
                }
            }
        }
        out
    }
}

/// Matrix exponential `e^A` by scaling-and-squaring with a diagonal
/// Padé(6,6) approximant — the workhorse behind exact piecewise-LTI
/// state propagation (the fast PLL period-map simulator).
///
/// # Errors
///
/// [`LuError::NotSquare`] for rectangular inputs and
/// [`LuError::NonFinite`] when the matrix contains NaN/∞ entries (the
/// Padé denominator solve would silently produce garbage otherwise).
pub fn expm(a: &CMat) -> Result<CMat, crate::lu::LuError> {
    if !a.is_square() {
        return Err(crate::lu::LuError::NotSquare);
    }
    if !a.is_finite() {
        return Err(crate::lu::LuError::NonFinite);
    }
    let n = a.rows();
    if n == 0 {
        return Ok(CMat::zeros(0, 0));
    }
    // Scale so ‖A/2^s‖ is comfortably inside the Padé(6,6) radius.
    let norm = a.norm_one();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil().max(0.0) as u32
    } else {
        0
    };
    let scaled = a.scale(crate::complex::Complex::from_re(1.0 / (1u64 << s) as f64));

    // Padé(6,6): N(A) = Σ c_k A^k, D(A) = Σ c_k (−A)^k with
    // c_k = 6!·(12−k)! / (12!·k!·(6−k)!).
    let mut c = [0.0f64; 7];
    c[0] = 1.0;
    for k in 0..6 {
        c[k + 1] = c[k] * (6 - k) as f64 / ((12 - k) * (k + 1)) as f64;
    }
    let mut num = CMat::identity(n).scale(crate::complex::Complex::from_re(c[0]));
    let mut den = num.clone();
    let mut power = CMat::identity(n);
    for (k, &ck) in c.iter().enumerate().skip(1) {
        power = &power * &scaled;
        let term = power.scale(crate::complex::Complex::from_re(ck));
        num = &num + &term;
        if k % 2 == 0 {
            den = &den + &term;
        } else {
            den = &den - &term;
        }
    }
    // The denominator is nonsingular inside the scaling radius for any
    // finite input, but propagate rather than assert: a Result here keeps
    // the whole library path panic-free.
    let mut e = crate::lu::Lu::factor(&den)?.solve_mat(&num)?;
    for _ in 0..s {
        e = &e * &e;
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn constructors() {
        let z = CMat::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&e| e == Complex::ZERO));

        let i3 = CMat::identity(3);
        assert_eq!(i3[(0, 0)], Complex::ONE);
        assert_eq!(i3[(0, 1)], Complex::ZERO);

        let d = CMat::from_diag(&[c(1.0, 0.0), c(0.0, 2.0)]);
        assert_eq!(d[(1, 1)], c(0.0, 2.0));
        assert_eq!(d[(1, 0)], Complex::ZERO);
        assert_eq!(d.diag(), vec![c(1.0, 0.0), c(0.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_rows_validates_length() {
        let _ = CMat::from_rows(2, 2, &[Complex::ZERO; 3]);
    }

    #[test]
    fn indexing_and_accessors() {
        let m = CMat::from_fn(2, 3, |i, j| c(i as f64, j as f64));
        assert_eq!(m[(1, 2)], c(1.0, 2.0));
        assert_eq!(m.get(1, 2), Some(c(1.0, 2.0)));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.row(1), &[c(1.0, 0.0), c(1.0, 1.0), c(1.0, 2.0)]);
        assert_eq!(m.col(2), vec![c(0.0, 2.0), c(1.0, 2.0)]);
        assert!(!m.is_square());
    }

    #[test]
    fn matmul_against_hand_computation() {
        // [1 j; 0 2] * [1 0; 1 1] = [1+j j; 2 2]
        let a = CMat::from_rows(2, 2, &[c(1.0, 0.0), c(0.0, 1.0), c(0.0, 0.0), c(2.0, 0.0)]);
        let b = CMat::from_rows(2, 2, &[c(1.0, 0.0), c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0)]);
        let p = &a * &b;
        assert_eq!(p[(0, 0)], c(1.0, 1.0));
        assert_eq!(p[(0, 1)], c(0.0, 1.0));
        assert_eq!(p[(1, 0)], c(2.0, 0.0));
        assert_eq!(p[(1, 1)], c(2.0, 0.0));
    }

    #[test]
    fn identity_is_neutral() {
        let a = CMat::from_fn(3, 3, |i, j| c((i * 3 + j) as f64, (i as f64) - (j as f64)));
        let i3 = CMat::identity(3);
        assert_eq!(&a * &i3, a);
        assert_eq!(&i3 * &a, a);
    }

    #[test]
    fn add_sub_neg_scale() {
        let a = CMat::from_fn(2, 2, |i, j| c((i + j) as f64, 1.0));
        let b = CMat::identity(2);
        let s = &a + &b;
        assert_eq!(s[(0, 0)], c(1.0, 1.0));
        let d = &s - &b;
        assert_eq!(d, a);
        let n = -&a;
        assert_eq!(n[(0, 1)], c(-1.0, -1.0));
        let sc = a.scale(c(0.0, 1.0));
        assert_eq!(sc[(0, 1)], c(-1.0, 1.0)); // j·(1+j) = −1+j
    }

    #[test]
    fn transpose_and_hermitian() {
        let a = CMat::from_rows(2, 2, &[c(1.0, 2.0), c(3.0, 4.0), c(5.0, 6.0), c(7.0, 8.0)]);
        let t = a.transpose();
        assert_eq!(t[(0, 1)], c(5.0, 6.0));
        assert_eq!(t[(1, 0)], c(3.0, 4.0));
        let h = a.hermitian();
        assert_eq!(h[(0, 1)], c(5.0, -6.0));
    }

    #[test]
    fn mat_vec_products() {
        let a = CMat::from_rows(2, 2, &[c(1.0, 0.0), c(0.0, 1.0), c(2.0, 0.0), c(0.0, 0.0)]);
        let x = [c(1.0, 0.0), c(1.0, 0.0)];
        let y = a.mul_vec(&x);
        assert_eq!(y, vec![c(1.0, 1.0), c(2.0, 0.0)]);
        let z = a.vec_mul(&x);
        assert_eq!(z, vec![c(3.0, 0.0), c(0.0, 1.0)]);
    }

    #[test]
    fn outer_product_is_rank_one_shape() {
        let ones = vec![Complex::ONE; 3];
        let m = CMat::outer(&ones, &ones);
        assert_eq!(m.sum_entries(), c(9.0, 0.0));
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], Complex::ONE);
            }
        }
    }

    #[test]
    fn norms() {
        let a = CMat::from_rows(
            2,
            2,
            &[c(3.0, 4.0), Complex::ZERO, Complex::ZERO, Complex::ZERO],
        );
        assert!((a.norm_fro() - 5.0).abs() < 1e-15);
        assert!((a.norm_max() - 5.0).abs() < 1e-15);
        assert!((a.norm_one() - 5.0).abs() < 1e-15);
        // max_diff vs identity: largest entry distance is |3+4j − 1| = √20.
        let b = CMat::identity(2);
        assert!((a.max_diff(&b) - 20.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn swap_rows_works() {
        let mut a = CMat::from_fn(3, 2, |i, _| c(i as f64, 0.0));
        a.swap_rows(0, 2);
        assert_eq!(a[(0, 0)], c(2.0, 0.0));
        assert_eq!(a[(2, 0)], c(0.0, 0.0));
        a.swap_rows(1, 1); // no-op
        assert_eq!(a[(1, 0)], c(1.0, 0.0));
    }

    #[test]
    fn expm_diagonal() {
        let a = CMat::from_diag(&[c(1.0, 0.0), c(0.0, std::f64::consts::PI), c(-2.0, 1.0)]);
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - Complex::from_re(1f64.exp())).abs() < 1e-12);
        // e^{jπ} = −1.
        assert!((e[(1, 1)] + Complex::ONE).abs() < 1e-12);
        assert!((e[(2, 2)] - Complex::new(-2.0, 1.0).exp()).abs() < 1e-12);
        assert_eq!(e[(0, 1)], Complex::ZERO);
    }

    #[test]
    fn expm_rotation_generator() {
        // exp(t·[[0,−1],[1,0]]) is the rotation by t.
        let t = 0.7f64;
        let a = CMat::from_rows(2, 2, &[Complex::ZERO, c(-t, 0.0), c(t, 0.0), Complex::ZERO]);
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - Complex::from_re(t.cos())).abs() < 1e-12);
        assert!((e[(0, 1)] + Complex::from_re(t.sin())).abs() < 1e-12);
        assert!((e[(1, 0)] - Complex::from_re(t.sin())).abs() < 1e-12);
    }

    #[test]
    fn expm_nilpotent_exact() {
        // exp of a Jordan nilpotent: I + N + N²/2.
        let a = CMat::from_fn(3, 3, |i, j| {
            if j == i + 1 {
                c(2.0, 0.0)
            } else {
                Complex::ZERO
            }
        });
        let e = expm(&a).unwrap();
        assert!((e[(0, 1)] - c(2.0, 0.0)).abs() < 1e-12);
        assert!((e[(0, 2)] - c(2.0, 0.0)).abs() < 1e-12); // 2·2/2
        assert!((e[(0, 0)] - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn expm_group_property() {
        // e^{A}·e^{A} = e^{2A} (A commutes with itself).
        let a = CMat::from_fn(4, 4, |i, j| {
            c(0.2 * (i as f64 - j as f64), 0.1 * (i + j) as f64)
        });
        let e1 = expm(&a).unwrap();
        let e2 = expm(&a.scale(c(2.0, 0.0))).unwrap();
        assert!((&e1 * &e1).max_diff(&e2) < 1e-10);
    }

    #[test]
    fn expm_large_norm_scaling() {
        // Forces several squaring steps.
        let a = CMat::from_diag(&[c(8.0, 3.0), c(-10.0, 0.0)]);
        let e = expm(&a).unwrap();
        assert!(
            (e[(0, 0)] - Complex::new(8.0, 3.0).exp()).abs()
                < 1e-6 * Complex::new(8.0, 3.0).exp().abs()
        );
        assert!((e[(1, 1)] - Complex::from_re((-10.0f64).exp())).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = &a * &b;
    }
}
