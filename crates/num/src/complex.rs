//! Double-precision complex arithmetic.
//!
//! The whole workspace is built on [`Complex`], an in-house `f64`-based
//! complex number. It provides the field operations, elementary
//! transcendental functions, and polar-form helpers needed by the
//! transfer-function, HTM and FFT machinery.
//!
//! ```
//! use htmpll_num::Complex;
//!
//! let s = Complex::new(0.0, 1.0); // s = j
//! let h = Complex::ONE / (s + 1.0); // first-order low-pass at its corner
//! assert!((h.abs() - 0.5f64.sqrt()).abs() < 1e-15);
//! ```

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` with `f64` components.
///
/// Arithmetic follows IEEE-754 semantics componentwise; division uses
/// Smith's algorithm to avoid premature overflow/underflow.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number `0 + j·im`.
    #[inline]
    pub const fn from_im(im: f64) -> Self {
        Complex { re: 0.0, im }
    }

    /// Creates `r·e^{jθ}` from polar coordinates.
    ///
    /// ```
    /// use htmpll_num::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{jθ}`, a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// The complex conjugate `re − j·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// The modulus `|z|`, computed without intermediate overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase) in radians, in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns `(|z|, arg z)`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `z == 0`.
    #[inline]
    pub fn recip(self) -> Self {
        Complex::ONE / self
    }

    /// `z²`, slightly cheaper than `z * z` in expression-heavy code.
    #[inline]
    pub fn sqr(self) -> Self {
        Complex::new(
            self.re * self.re - self.im * self.im,
            2.0 * self.re * self.im,
        )
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// The complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// The principal natural logarithm, with branch cut on the negative
    /// real axis.
    #[inline]
    pub fn ln(self) -> Self {
        Complex::new(self.abs().ln(), self.arg())
    }

    /// The principal square root (non-negative real part).
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Complex::ZERO;
        }
        let m = self.abs();
        let re = ((m + self.re) * 0.5).sqrt();
        let im = ((m - self.re) * 0.5).sqrt();
        Complex::new(re, if self.im >= 0.0 { im } else { -im })
    }

    /// Integer power by binary exponentiation.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base.sqr();
            n >>= 1;
        }
        acc
    }

    /// Real power `z^x` via the principal branch.
    pub fn powf(self, x: f64) -> Self {
        if self == Complex::ZERO {
            return if x == 0.0 {
                Complex::ONE
            } else {
                Complex::ZERO
            };
        }
        (self.ln().scale(x)).exp()
    }

    /// Complex power `z^w` via the principal branch.
    pub fn powc(self, w: Complex) -> Self {
        if self == Complex::ZERO {
            return if w == Complex::ZERO {
                Complex::ONE
            } else {
                Complex::ZERO
            };
        }
        (self.ln() * w).exp()
    }

    /// Complex sine.
    pub fn sin(self) -> Self {
        Complex::new(
            self.re.sin() * self.im.cosh(),
            self.re.cos() * self.im.sinh(),
        )
    }

    /// Complex cosine.
    pub fn cos(self) -> Self {
        Complex::new(
            self.re.cos() * self.im.cosh(),
            -self.re.sin() * self.im.sinh(),
        )
    }

    /// Complex tangent.
    pub fn tan(self) -> Self {
        self.sin() / self.cos()
    }

    /// Complex hyperbolic sine.
    pub fn sinh(self) -> Self {
        Complex::new(
            self.re.sinh() * self.im.cos(),
            self.re.cosh() * self.im.sin(),
        )
    }

    /// Complex hyperbolic cosine.
    pub fn cosh(self) -> Self {
        Complex::new(
            self.re.cosh() * self.im.cos(),
            self.re.sinh() * self.im.sin(),
        )
    }

    /// Complex hyperbolic tangent, stable for large `|Re z|`.
    pub fn tanh(self) -> Self {
        // For |Re z| large, tanh z → ±1; evaluating sinh/cosh directly
        // would overflow. Use the e^{-2|x|} form instead.
        if self.re.abs() > 20.0 {
            let s = self.re.signum();
            let e = (-2.0 * self.re.abs()).exp();
            let twiddle = Complex::new(e * (2.0 * self.im).cos(), s * e * (2.0 * self.im).sin());
            // tanh(x+jy) = s·(1 − e)/(1 + e) with e = e^{-2s(x+jy)}
            return (Complex::ONE - twiddle) / (Complex::ONE + twiddle) * s;
        }
        self.sinh() / self.cosh()
    }

    /// Complex hyperbolic cotangent `1/tanh z`, stable for large `|Re z|`.
    pub fn coth(self) -> Self {
        if self.re.abs() > 20.0 {
            let s = self.re.signum();
            let e = (-2.0 * self.re.abs()).exp();
            let twiddle = Complex::new(e * (2.0 * self.im).cos(), s * e * (2.0 * self.im).sin());
            return (Complex::ONE + twiddle) / (Complex::ONE - twiddle) * s;
        }
        self.cosh() / self.sinh()
    }

    /// Returns true when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns true when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Componentwise approximate equality with absolute tolerance `tol`.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl From<(f64, f64)> for Complex {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Complex::new(re, im)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Complex({} {:+}j)", self.re, self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = f.precision() {
            write!(f, "{:.*}{:+.*}j", p, self.re, p, self.im)
        } else {
            write!(f, "{}{:+}j", self.re, self.im)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    /// Division by Smith's algorithm: scales by the larger component of
    /// the denominator so that `1e200j / 1e200j == 1` instead of NaN.
    fn div(self, rhs: Complex) -> Complex {
        if rhs.re.abs() >= rhs.im.abs() {
            if rhs.re == 0.0 && rhs.im == 0.0 {
                return Complex::new(f64::NAN, f64::NAN);
            }
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

macro_rules! impl_scalar_ops {
    ($t:ty) => {
        impl Add<$t> for Complex {
            type Output = Complex;
            #[inline]
            fn add(self, rhs: $t) -> Complex {
                Complex::new(self.re + rhs as f64, self.im)
            }
        }
        impl Add<Complex> for $t {
            type Output = Complex;
            #[inline]
            fn add(self, rhs: Complex) -> Complex {
                rhs + self
            }
        }
        impl Sub<$t> for Complex {
            type Output = Complex;
            #[inline]
            fn sub(self, rhs: $t) -> Complex {
                Complex::new(self.re - rhs as f64, self.im)
            }
        }
        impl Sub<Complex> for $t {
            type Output = Complex;
            #[inline]
            fn sub(self, rhs: Complex) -> Complex {
                Complex::new(self as f64 - rhs.re, -rhs.im)
            }
        }
        impl Mul<$t> for Complex {
            type Output = Complex;
            #[inline]
            fn mul(self, rhs: $t) -> Complex {
                self.scale(rhs as f64)
            }
        }
        impl Mul<Complex> for $t {
            type Output = Complex;
            #[inline]
            fn mul(self, rhs: Complex) -> Complex {
                rhs.scale(self as f64)
            }
        }
        impl Div<$t> for Complex {
            type Output = Complex;
            #[inline]
            fn div(self, rhs: $t) -> Complex {
                self.scale(1.0 / rhs as f64)
            }
        }
        impl Div<Complex> for $t {
            type Output = Complex;
            #[inline]
            fn div(self, rhs: Complex) -> Complex {
                Complex::from_re(self as f64) / rhs
            }
        }
    };
}

impl_scalar_ops!(f64);

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}
impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}
impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}
impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}
impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + *b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_accessors() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert_eq!(Complex::from_re(2.0), Complex::new(2.0, 0.0));
        assert_eq!(Complex::from_im(2.0), Complex::new(0.0, 2.0));
        assert_eq!(Complex::from(1.5), Complex::new(1.5, 0.0));
        assert_eq!(Complex::from((1.0, 2.0)), Complex::new(1.0, 2.0));
    }

    #[test]
    fn field_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a * b, Complex::new(-3.0 - 1.0, 0.5 - 6.0));
        assert!(((a / b) * b).approx_eq(a, TOL));
        assert!((a * a.recip()).approx_eq(Complex::ONE, TOL));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn division_avoids_overflow() {
        let big = Complex::new(0.0, 1e200);
        let q = big / big;
        assert!(q.approx_eq(Complex::ONE, TOL));
        let zero_div = Complex::ONE / Complex::ZERO;
        assert!(zero_div.is_nan());
    }

    #[test]
    fn scalar_mixed_ops() {
        let z = Complex::new(1.0, 1.0);
        assert_eq!(z + 1.0, Complex::new(2.0, 1.0));
        assert_eq!(1.0 + z, Complex::new(2.0, 1.0));
        assert_eq!(z - 1.0, Complex::new(0.0, 1.0));
        assert_eq!(1.0 - z, Complex::new(0.0, -1.0));
        assert_eq!(z * 2.0, Complex::new(2.0, 2.0));
        assert_eq!(2.0 * z, Complex::new(2.0, 2.0));
        assert_eq!(z / 2.0, Complex::new(0.5, 0.5));
        assert!((2.0 / z).approx_eq(Complex::new(1.0, -1.0), TOL));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(-1.5, 2.5);
        let (r, th) = z.to_polar();
        assert!(Complex::from_polar(r, th).approx_eq(z, TOL));
        assert!(Complex::cis(PI / 3.0).approx_eq(Complex::new(0.5, (3.0f64).sqrt() / 2.0), TOL));
    }

    #[test]
    fn exp_ln_roundtrip() {
        let z = Complex::new(0.3, -1.2);
        assert!(z.exp().ln().approx_eq(z, TOL));
        // Euler's identity.
        assert!(Complex::from_im(PI).exp().approx_eq(-Complex::ONE, TOL));
    }

    #[test]
    fn sqrt_principal_branch() {
        let z = Complex::new(-4.0, 0.0);
        // Principal sqrt of −4 is +2j.
        assert!(z.sqrt().approx_eq(Complex::new(0.0, 2.0), TOL));
        let w = Complex::new(3.0, -4.0);
        assert!(w.sqrt().sqr().approx_eq(w, TOL));
        assert!(w.sqrt().re >= 0.0);
        assert_eq!(Complex::ZERO.sqrt(), Complex::ZERO);
    }

    #[test]
    fn powers() {
        let z = Complex::new(1.0, 1.0);
        assert!(z.powi(4).approx_eq(Complex::new(-4.0, 0.0), TOL));
        assert!(z.powi(-2).approx_eq(Complex::new(0.0, -0.5), TOL));
        assert_eq!(z.powi(0), Complex::ONE);
        assert!(z.powf(2.0).approx_eq(z.sqr(), TOL));
        assert!(z.powc(Complex::from_re(3.0)).approx_eq(z.powi(3), 1e-10));
        assert_eq!(Complex::ZERO.powf(2.0), Complex::ZERO);
        assert_eq!(Complex::ZERO.powf(0.0), Complex::ONE);
    }

    #[test]
    fn trig_identities() {
        let z = Complex::new(0.7, -0.3);
        let lhs = z.sin().sqr() + z.cos().sqr();
        assert!(lhs.approx_eq(Complex::ONE, TOL));
        let lhs = z.cosh().sqr() - z.sinh().sqr();
        assert!(lhs.approx_eq(Complex::ONE, TOL));
        assert!(z.tan().approx_eq(z.sin() / z.cos(), TOL));
    }

    #[test]
    fn tanh_coth_stability() {
        // Moderate argument: coth·tanh == 1.
        let z = Complex::new(1.2, 0.7);
        assert!((z.tanh() * z.coth()).approx_eq(Complex::ONE, TOL));
        // Huge real part: tanh → ±1, no overflow, correct sign.
        let big = Complex::new(500.0, 3.0);
        assert!(big.tanh().approx_eq(Complex::ONE, TOL));
        assert!((-big).tanh().approx_eq(-Complex::ONE, TOL));
        assert!(big.coth().approx_eq(Complex::ONE, TOL));
        assert!((-big).coth().approx_eq(-Complex::ONE, TOL));
        // Continuity across the |Re| = 20 switchover.
        let a = Complex::new(19.999999, 1.0).coth();
        let b = Complex::new(20.000001, 1.0).coth();
        assert!(a.approx_eq(b, 1e-9));
    }

    #[test]
    fn sums_and_products() {
        let v = [
            Complex::new(1.0, 0.0),
            Complex::new(0.0, 1.0),
            Complex::new(2.0, 2.0),
        ];
        let s: Complex = v.iter().sum();
        assert_eq!(s, Complex::new(3.0, 3.0));
        let s2: Complex = v.iter().copied().sum();
        assert_eq!(s2, s);
        // 1 · j · (2+2j) = 2j + 2j² = −2 + 2j
        let p: Complex = v.iter().copied().product();
        assert!(p.approx_eq(Complex::new(-2.0, 2.0), TOL));
    }

    #[test]
    fn display_formats() {
        let z = Complex::new(1.25, -0.5);
        assert_eq!(format!("{z}"), "1.25-0.5j");
        assert_eq!(format!("{z:.1}"), "1.2-0.5j");
        assert!(format!("{z:?}").contains("Complex"));
    }

    #[test]
    fn nan_and_finite_flags() {
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex::ONE.is_nan());
        assert!(Complex::ONE.is_finite());
        assert!(!Complex::new(f64::INFINITY, 0.0).is_finite());
    }
}
