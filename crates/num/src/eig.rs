//! Complex eigenvalues via Hessenberg reduction and shifted QR.
//!
//! The rank-one structure of the sampling PFD lets the PLL closed loop
//! collapse to a scalar, but the HTM formalism itself covers arbitrary
//! LPTV interconnections. Their stability runs through the generalized
//! (MIMO) Nyquist criterion on the **eigenvalue loci** of the open-loop
//! HTM — which needs a dense complex eigensolver. This module provides
//! one: Householder reduction to upper Hessenberg form, then the
//! single-shift QR iteration with Wilkinson shifts and deflation.
//!
//! ```
//! use htmpll_num::{eig::eigenvalues, CMat, Complex};
//!
//! let a = CMat::from_diag(&[Complex::new(1.0, 2.0), Complex::from_re(-3.0)]);
//! let mut ev = eigenvalues(&a).unwrap();
//! ev.sort_by(|x, y| x.re.partial_cmp(&y.re).unwrap());
//! assert!((ev[0] - Complex::from_re(-3.0)).abs() < 1e-12);
//! assert!((ev[1] - Complex::new(1.0, 2.0)).abs() < 1e-12);
//! ```

use crate::complex::Complex;
use crate::mat::CMat;
use std::fmt;

/// Error returned by the eigensolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EigError {
    /// The input matrix is not square.
    NotSquare,
    /// QR iteration failed to deflate within the iteration budget.
    NoConvergence,
}

impl fmt::Display for EigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EigError::NotSquare => write!(f, "eigenvalues require a square matrix"),
            EigError::NoConvergence => write!(f, "QR iteration failed to converge"),
        }
    }
}

impl std::error::Error for EigError {}

/// Reduces a square matrix to upper Hessenberg form by Householder
/// similarity transforms (same eigenvalues, zero below the first
/// subdiagonal).
///
/// # Errors
///
/// [`EigError::NotSquare`] for rectangular inputs.
pub fn hessenberg(a: &CMat) -> Result<CMat, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare);
    }
    let n = a.rows();
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // Householder vector eliminating column k below row k+1.
        let mut norm = 0.0f64;
        for i in (k + 1)..n {
            norm += h[(i, k)].norm_sqr();
        }
        let norm = norm.sqrt();
        if norm <= f64::EPSILON * h.norm_max() {
            continue;
        }
        let x0 = h[(k + 1, k)];
        // alpha = -e^{i·arg(x0)}·norm keeps v well conditioned.
        let phase = if x0 == Complex::ZERO {
            Complex::ONE
        } else {
            x0 / x0.abs()
        };
        let alpha = -phase.scale(norm);
        let mut v = vec![Complex::ZERO; n];
        v[k + 1] = x0 - alpha;
        for i in (k + 2)..n {
            v[i] = h[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        if vnorm2 <= 0.0 {
            continue;
        }
        // H ← (I − 2vv*/v*v)·H·(I − 2vv*/v*v)
        // Left multiply: H -= (2/v*v)·v·(v*·H)
        let mut w = vec![Complex::ZERO; n];
        for j in 0..n {
            let mut acc = Complex::ZERO;
            for i in (k + 1)..n {
                acc += v[i].conj() * h[(i, j)];
            }
            w[j] = acc.scale(2.0 / vnorm2);
        }
        for i in (k + 1)..n {
            for j in 0..n {
                let delta = v[i] * w[j];
                h[(i, j)] -= delta;
            }
        }
        // Right multiply: H -= (2/v*v)·(H·v)·v*
        let mut u = vec![Complex::ZERO; n];
        for (i, ui) in u.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for j in (k + 1)..n {
                acc += h[(i, j)] * v[j];
            }
            *ui = acc.scale(2.0 / vnorm2);
        }
        for i in 0..n {
            for j in (k + 1)..n {
                let delta = u[i] * v[j].conj();
                h[(i, j)] -= delta;
            }
        }
        // Clean the column explicitly.
        h[(k + 1, k)] = alpha;
        for i in (k + 2)..n {
            h[(i, k)] = Complex::ZERO;
        }
    }
    Ok(h)
}

/// Computes all eigenvalues of a square complex matrix.
///
/// # Errors
///
/// [`EigError::NotSquare`] for rectangular inputs;
/// [`EigError::NoConvergence`] if the QR iteration stalls (does not
/// occur for the well-scaled matrices HTM analysis produces).
pub fn eigenvalues(a: &CMat) -> Result<Vec<Complex>, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare);
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![a[(0, 0)]]);
    }
    htmpll_obs::counter!("num", "eig.calls").inc();
    let mut h = hessenberg(a)?;
    let mut eigs = Vec::with_capacity(n);
    let mut hi = n; // active block is rows/cols [lo, hi)
    let scale = h.norm_max().max(f64::MIN_POSITIVE);
    let tol = f64::EPSILON * scale;
    let mut budget = 60 * n;

    while hi > 0 {
        // Deflate converged subdiagonals.
        let mut lo = hi - 1;
        while lo > 0 {
            let sub = h[(lo, lo - 1)].abs();
            if sub <= tol + f64::EPSILON * (h[(lo - 1, lo - 1)].abs() + h[(lo, lo)].abs()) {
                h[(lo, lo - 1)] = Complex::ZERO;
                break;
            }
            lo -= 1;
        }
        if lo == hi - 1 {
            // 1×1 block converged.
            eigs.push(h[(hi - 1, hi - 1)]);
            hi -= 1;
            continue;
        }
        if budget == 0 {
            return Err(EigError::NoConvergence);
        }
        budget -= 1;

        // Wilkinson shift from the trailing 2×2 of the active block.
        let m = hi - 1;
        let a11 = h[(m - 1, m - 1)];
        let a12 = h[(m - 1, m)];
        let a21 = h[(m, m - 1)];
        let a22 = h[(m, m)];
        let tr = a11 + a22;
        let det = a11 * a22 - a12 * a21;
        let disc = (tr.sqr() - det.scale(4.0)).sqrt();
        let r1 = (tr + disc).scale(0.5);
        let r2 = (tr - disc).scale(0.5);
        let shift = if (r1 - a22).abs() < (r2 - a22).abs() {
            r1
        } else {
            r2
        };

        // One explicit QR step on the active block via Givens rotations:
        // H − σI = QR, then H ← RQ + σI.
        for i in lo..hi {
            h[(i, i)] -= shift;
        }
        // Forward pass: annihilate subdiagonals, remembering rotations.
        let mut rot = Vec::with_capacity(hi - lo - 1);
        for i in lo..hi - 1 {
            let (c, s, r) = givens(h[(i, i)], h[(i + 1, i)]);
            rot.push((c, s));
            h[(i, i)] = r;
            h[(i + 1, i)] = Complex::ZERO;
            for j in (i + 1)..hi {
                let x = h[(i, j)];
                let y = h[(i + 1, j)];
                h[(i, j)] = x.scale(c) + s.conj() * y;
                h[(i + 1, j)] = y.scale(c) - s * x;
            }
        }
        // Backward pass: H ← R·Qᴴ... (apply rotations on the right).
        for (idx, &(c, s)) in rot.iter().enumerate() {
            let i = lo + idx;
            for r_i in lo..=(i + 1).min(hi - 1) {
                let x = h[(r_i, i)];
                let y = h[(r_i, i + 1)];
                h[(r_i, i)] = x.scale(c) + s * y;
                h[(r_i, i + 1)] = y.scale(c) - s.conj() * x;
            }
        }
        for i in lo..hi {
            h[(i, i)] += shift;
        }
    }
    htmpll_obs::record!("num", "eig.qr_steps").record((60 * n - budget) as f64);
    Ok(eigs)
}

/// Complex Givens rotation zeroing `b`: returns `(c, s, r)` with
/// `c` real, `c² + |s|² = 1` and
/// `[c  s̄; −s  c]·[a; b] = [r; 0]`.
fn givens(a: Complex, b: Complex) -> (f64, Complex, Complex) {
    if b == Complex::ZERO {
        return (1.0, Complex::ZERO, a);
    }
    let norm = (a.norm_sqr() + b.norm_sqr()).sqrt();
    if a == Complex::ZERO {
        // Rotate b straight into r: need s̄·b real ⇒ s = b/|b|.
        return (0.0, b.scale(1.0 / b.abs()), Complex::from_re(b.abs()));
    }
    let c = a.abs() / norm;
    let phase = a / a.abs();
    // −s·a + c·b = 0 ⇒ s = c·b/a = conj(phase)·b/norm.
    let s = phase.conj() * b.scale(1.0 / norm);
    let r = phase.scale(norm);
    (c, s, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Poly;
    use crate::roots::find_roots;

    fn contains(evs: &[Complex], target: Complex, tol: f64) -> bool {
        evs.iter().any(|e| (*e - target).abs() < tol)
    }

    #[test]
    fn diagonal_matrix() {
        let d = [
            Complex::new(1.0, -1.0),
            Complex::from_re(4.0),
            Complex::new(-2.0, 0.5),
        ];
        let evs = eigenvalues(&CMat::from_diag(&d)).unwrap();
        for t in d {
            assert!(contains(&evs, t, 1e-12), "{t} missing from {evs:?}");
        }
    }

    #[test]
    fn two_by_two_known() {
        // [[0, 1], [-1, 0]]: eigenvalues ±j.
        let a = CMat::from_rows(
            2,
            2,
            &[Complex::ZERO, Complex::ONE, -Complex::ONE, Complex::ZERO],
        );
        let evs = eigenvalues(&a).unwrap();
        assert!(contains(&evs, Complex::I, 1e-12));
        assert!(contains(&evs, -Complex::I, 1e-12));
    }

    #[test]
    fn companion_matrix_matches_roots() {
        // Companion of p(x) = x⁴ + 2x³ − x + 3: eigenvalues = roots.
        let p = Poly::new(vec![3.0, -1.0, 0.0, 2.0, 1.0]);
        let n = p.degree();
        let comp = CMat::from_fn(n, n, |i, j| {
            if j == n - 1 {
                Complex::from_re(-p.coeff(i))
            } else if i == j + 1 {
                Complex::ONE
            } else {
                Complex::ZERO
            }
        });
        let evs = eigenvalues(&comp).unwrap();
        let roots = find_roots(&p).unwrap();
        for r in roots {
            assert!(contains(&evs, r, 1e-7), "root {r} missing from {evs:?}");
        }
    }

    #[test]
    fn trace_and_det_invariants() {
        let a = CMat::from_fn(6, 6, |i, j| {
            Complex::new(
                ((i * 7 + j * 3) % 5) as f64 - 2.0,
                ((i + 2 * j) % 3) as f64 - 1.0,
            )
        });
        let evs = eigenvalues(&a).unwrap();
        let tr: Complex = (0..6).map(|i| a[(i, i)]).sum();
        let ev_sum: Complex = evs.iter().copied().sum();
        assert!(
            (tr - ev_sum).abs() < 1e-9 * (1.0 + tr.abs()),
            "{tr} vs {ev_sum}"
        );
        let det = crate::lu::Lu::factor(&a).unwrap().det();
        let ev_prod: Complex = evs.iter().copied().product();
        assert!(
            (det - ev_prod).abs() < 1e-8 * (1.0 + det.abs()),
            "{det} vs {ev_prod}"
        );
    }

    #[test]
    fn rank_one_matrix_has_trace_eigenvalue() {
        // u·vᵀ: one eigenvalue vᵀu, rest zero — the algebraic fact behind
        // the paper's Sherman–Morrison reduction.
        let u: Vec<Complex> = (0..5).map(|i| Complex::new(1.0 + i as f64, 0.3)).collect();
        let v: Vec<Complex> = (0..5).map(|i| Complex::new(0.2, 0.1 * i as f64)).collect();
        let g = CMat::outer(&u, &v);
        let evs = eigenvalues(&g).unwrap();
        let lambda: Complex = u.iter().zip(&v).map(|(a, b)| *a * *b).sum();
        assert!(contains(&evs, lambda, 1e-9 * (1.0 + lambda.abs())));
        let zeros = evs
            .iter()
            .filter(|e| e.abs() < 1e-9 * (1.0 + lambda.abs()))
            .count();
        assert_eq!(zeros, 4, "{evs:?}");
    }

    #[test]
    fn hessenberg_preserves_eigenvalues_structure() {
        let a = CMat::from_fn(5, 5, |i, j| {
            Complex::new((i as f64 - j as f64) * 0.3, (i * j) as f64 * 0.1)
        });
        let h = hessenberg(&a).unwrap();
        // Zero below the first subdiagonal.
        for i in 2..5 {
            for j in 0..i - 1 {
                assert!(h[(i, j)].abs() < 1e-12, "({i},{j}) = {}", h[(i, j)]);
            }
        }
        // Same trace (similarity).
        let tr_a: Complex = (0..5).map(|i| a[(i, i)]).sum();
        let tr_h: Complex = (0..5).map(|i| h[(i, i)]).sum();
        assert!((tr_a - tr_h).abs() < 1e-10);
    }

    #[test]
    fn empty_and_single() {
        assert!(eigenvalues(&CMat::zeros(0, 0)).unwrap().is_empty());
        let one = CMat::from_diag(&[Complex::new(2.0, -1.0)]);
        assert_eq!(eigenvalues(&one).unwrap(), vec![Complex::new(2.0, -1.0)]);
    }

    #[test]
    fn defective_jordan_block() {
        // [[1,1],[0,1]] is defective (one eigenvector); QR still returns
        // the double eigenvalue, with the usual √ε accuracy loss.
        let a = CMat::from_rows(
            2,
            2,
            &[Complex::ONE, Complex::ONE, Complex::ZERO, Complex::ONE],
        );
        let evs = eigenvalues(&a).unwrap();
        assert_eq!(evs.len(), 2);
        for e in evs {
            assert!((e - Complex::ONE).abs() < 1e-7, "{e}");
        }
    }

    #[test]
    fn nilpotent_matrix() {
        // Strictly upper triangular: all eigenvalues zero.
        let a = CMat::from_fn(4, 4, |i, j| {
            if j > i {
                Complex::new(1.0 + (i + j) as f64, 0.5)
            } else {
                Complex::ZERO
            }
        });
        let evs = eigenvalues(&a).unwrap();
        for e in evs {
            assert!(e.abs() < 1e-7, "{e}");
        }
    }

    #[test]
    fn large_matrix_converges() {
        // 40×40 with clustered structure: convergence within budget.
        let n = 40;
        let a = CMat::from_fn(n, n, |i, j| {
            let base = if i == j {
                Complex::new((i % 5) as f64, 0.2 * (i % 3) as f64)
            } else {
                Complex::ZERO
            };
            base + Complex::new(
                0.01 * (((i * 13 + j * 7) % 11) as f64 - 5.0),
                0.01 * (((i * 5 + j * 3) % 7) as f64 - 3.0),
            )
        });
        let evs = eigenvalues(&a).unwrap();
        assert_eq!(evs.len(), n);
        let tr: Complex = (0..n).map(|i| a[(i, i)]).sum();
        let sum: Complex = evs.iter().copied().sum();
        assert!((tr - sum).abs() < 1e-7 * (1.0 + tr.abs()));
    }

    #[test]
    fn rejects_rectangular() {
        assert_eq!(
            eigenvalues(&CMat::zeros(2, 3)).unwrap_err(),
            EigError::NotSquare
        );
        assert_eq!(
            hessenberg(&CMat::zeros(3, 2)).unwrap_err(),
            EigError::NotSquare
        );
    }

    #[test]
    fn upper_triangular_reads_diagonal() {
        let a = CMat::from_rows(
            3,
            3,
            &[
                Complex::from_re(1.0),
                Complex::from_re(5.0),
                Complex::from_re(-2.0),
                Complex::ZERO,
                Complex::new(0.0, 2.0),
                Complex::from_re(7.0),
                Complex::ZERO,
                Complex::ZERO,
                Complex::from_re(-4.0),
            ],
        );
        let evs = eigenvalues(&a).unwrap();
        for t in [
            Complex::from_re(1.0),
            Complex::new(0.0, 2.0),
            Complex::from_re(-4.0),
        ] {
            assert!(contains(&evs, t, 1e-10));
        }
    }
}
