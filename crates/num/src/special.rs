//! Lattice sums over shifted harmonics.
//!
//! The effective open-loop gain of a sampled PLL is
//! `λ(s) = Σ_{m∈ℤ} A(s + jmω₀)` (Vanassche et al., eq. 37). After partial
//! fraction expansion, every term reduces to the lattice sum
//!
//! ```text
//! S_r(z; ω₀) = Σ_{m∈ℤ} 1/(z + jmω₀)^r
//! ```
//!
//! which has the closed form `S₁(z) = (π/ω₀)·coth(πz/ω₀)` and, for
//! repeated poles, derivatives thereof: `S_{r+1} = −(1/r)·dS_r/dz`.
//! Expressing `S_r = (π/ω₀)^r · P_r(coth(πz/ω₀))` turns the recursion
//! into polynomial algebra in `c = coth`, using `dc/dx = 1 − c²`.
//!
//! ```
//! use htmpll_num::{special::lattice_sum, Complex};
//!
//! let z = Complex::new(0.3, 0.1);
//! let closed = lattice_sum(z, 1.0, 1);
//! // Compare against a brute-force truncated sum.
//! let mut brute = Complex::ZERO;
//! for m in -20000..=20000 {
//!     brute += (z + Complex::new(0.0, m as f64)).recip();
//! }
//! assert!((closed - brute).abs() < 1e-3);
//! ```

use crate::complex::Complex;

/// Maximum supported pole multiplicity for the closed-form lattice sum.
pub const MAX_LATTICE_ORDER: usize = 12;

/// Coefficients (ascending powers of `c = coth`) of the polynomial `P_r`
/// with `S_r(z) = (π/ω₀)^r · P_r(coth(πz/ω₀))`.
///
/// Public so batch evaluators (the λ-grid SIMD path) can precompute the
/// polynomial once per pole instead of rebuilding it on every call;
/// [`lattice_sum`] evaluates exactly `(π/ω₀)^r · Horner(P_r, coth)`.
///
/// # Panics
///
/// Panics if `r` is 0 or exceeds [`MAX_LATTICE_ORDER`].
pub fn lattice_poly(r: usize) -> Vec<f64> {
    assert!(
        (1..=MAX_LATTICE_ORDER).contains(&r),
        "lattice sum order {r} outside 1..={MAX_LATTICE_ORDER}"
    );
    // P₁(c) = c.
    let mut p = vec![0.0, 1.0];
    for k in 1..r {
        // P_{k+1}(c) = −(1/k)·P_k'(c)·(1 − c²)
        let dp: Vec<f64> = p
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &a)| i as f64 * a)
            .collect();
        // multiply dp by (1 − c²): out[i] += dp[i]; out[i+2] −= dp[i]
        let mut out = vec![0.0; dp.len() + 2];
        for (i, &a) in dp.iter().enumerate() {
            out[i] += a;
            out[i + 2] -= a;
        }
        for a in out.iter_mut() {
            *a *= -1.0 / k as f64;
        }
        p = out;
    }
    p
}

/// Exact lattice sum `S_r(z; ω₀) = Σ_{m∈ℤ} (z + jmω₀)^{−r}`.
///
/// `z` must not sit on the lattice `{−jmω₀}` (the sum has poles there);
/// at such points the result is infinite/NaN as dictated by the
/// underlying `coth` evaluation.
///
/// # Panics
///
/// Panics if `r` is 0 or exceeds [`MAX_LATTICE_ORDER`], or if
/// `omega0 <= 0`.
pub fn lattice_sum(z: Complex, omega0: f64, r: usize) -> Complex {
    assert!(omega0 > 0.0, "omega0 must be positive");
    let poly = lattice_poly(r);
    let x = z.scale(std::f64::consts::PI / omega0);
    let c = x.coth();
    // Horner in c.
    let mut acc = Complex::ZERO;
    for &a in poly.iter().rev() {
        acc = acc * c + a;
    }
    let factor = Complex::from_re(std::f64::consts::PI / omega0).powi(r as i32);
    factor * acc
}

/// Brute-force truncated lattice sum `Σ_{|m| ≤ terms}` — the numerical
/// cross-check for [`lattice_sum`] and the fallback used to validate
/// truncation orders.
pub fn lattice_sum_truncated(z: Complex, omega0: f64, r: usize, terms: usize) -> Complex {
    let mut acc = z.powi(-(r as i32));
    for m in 1..=terms as i64 {
        let sh = Complex::from_im(m as f64 * omega0);
        acc += (z + sh).powi(-(r as i32)) + (z - sh).powi(-(r as i32));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn order_one_is_coth_identity() {
        let z = Complex::new(0.7, -0.2);
        let w0 = 2.0;
        let expect = Complex::from_re(PI / w0) * (z.scale(PI / w0)).coth();
        assert!((lattice_sum(z, w0, 1) - expect).abs() < 1e-14);
    }

    #[test]
    fn order_two_is_csch_squared() {
        // S₂(z) = (π/ω₀)² csch²(πz/ω₀) = (π/ω₀)²(coth² − 1)
        let z = Complex::new(0.4, 0.3);
        let w0 = 1.5;
        let x = z.scale(PI / w0);
        let c = x.coth();
        let expect = (c.sqr() - 1.0).scale((PI / w0) * (PI / w0));
        assert!((lattice_sum(z, w0, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn closed_form_matches_truncated_orders_1_to_4() {
        let z = Complex::new(0.33, 0.21);
        let w0 = 1.0;
        // Truncated-sum tails scale like terms^{1−r}, so the comparison
        // tolerance must follow the brute-force truncation error.
        for (r, terms, tol) in [
            (1usize, 400_000usize, 1e-4),
            (2, 200_000, 1e-4),
            (3, 5_000, 1e-6),
            (4, 2_000, 1e-8),
        ] {
            let closed = lattice_sum(z, w0, r);
            let brute = lattice_sum_truncated(z, w0, r, terms);
            assert!(
                (closed - brute).abs() < tol,
                "order {r}: closed {closed} vs brute {brute}"
            );
        }
    }

    #[test]
    fn large_real_part_limit() {
        // For Re(z) ≫ ω₀ the m=0 term dominates but the closed form must
        // still track the full sum, which tends to (π/ω₀)·1 for order 1.
        let z = Complex::new(100.0, 0.0);
        let s = lattice_sum(z, 1.0, 1);
        assert!((s - Complex::from_re(PI)).abs() < 1e-10);
        assert!(s.is_finite());
    }

    #[test]
    fn odd_symmetry_order_one() {
        // S₁ is odd: S₁(−z) = −S₁(z).
        let z = Complex::new(0.2, 0.45);
        let a = lattice_sum(z, 1.0, 1);
        let b = lattice_sum(-z, 1.0, 1);
        assert!((a + b).abs() < 1e-12);
    }

    #[test]
    fn even_symmetry_order_two() {
        let z = Complex::new(0.2, 0.45);
        let a = lattice_sum(z, 1.0, 2);
        let b = lattice_sum(-z, 1.0, 2);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn periodicity_in_imaginary_direction() {
        // S_r(z + jω₀) = S_r(z): shifting by one lattice step is a
        // relabeling of the sum.
        let z = Complex::new(0.3, 0.1);
        let w0 = 0.7;
        for r in 1..=3 {
            let a = lattice_sum(z, w0, r);
            let b = lattice_sum(z + Complex::from_im(w0), w0, r);
            assert!((a - b).abs() < 1e-10, "order {r}");
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn order_zero_rejected() {
        let _ = lattice_sum(Complex::ONE, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_omega_rejected() {
        let _ = lattice_sum(Complex::ONE, 0.0, 1);
    }

    #[test]
    fn high_order_still_consistent() {
        let z = Complex::new(0.5, 0.2);
        let closed = lattice_sum(z, 1.0, 6);
        let brute = lattice_sum_truncated(z, 1.0, 6, 500);
        assert!((closed - brute).abs() < 1e-10);
    }
}
