//! Small deterministic pseudo-random number generator.
//!
//! The workspace builds with no network/registry access, so `rand` is not
//! available; the behavioral simulator's jitter/noise draws instead use
//! this vendored generator: a SplitMix64 seed expander feeding an
//! xoshiro256++ core (public-domain algorithms by Blackman & Vigna).
//! Sequences are fully determined by the seed, which is what the
//! simulator's reproducibility tests rely on.

/// xoshiro256++ generator seeded via SplitMix64.
///
/// ```
/// use htmpll_num::rng::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of the SplitMix64 stream, used to expand a 64-bit seed into
/// the 256-bit xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Builds a generator whose stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        // SplitMix64 expansion guarantees a nonzero state for every seed.
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Builds the generator for stream `stream` of a seeded family:
    /// the `(seed, stream)` pair fully determines the sequence, and
    /// nearby stream indices land in unrelated regions of the state
    /// space (the index is remixed through SplitMix64 before the state
    /// expansion, so `stream` and `stream + 1` share no structure).
    ///
    /// Design-space sweeps key one stream per candidate index: the
    /// draws for candidate `i` are then a pure function of `(seed, i)`,
    /// independent of evaluation order, thread count, and chunking.
    ///
    /// ```
    /// use htmpll_num::rng::Rng;
    /// let mut a = Rng::for_stream(7, 1000);
    /// let mut b = Rng::for_stream(7, 1000);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn for_stream(seed: u64, stream: u64) -> Rng {
        // Derive a per-stream 64-bit seed by running the stream index
        // through the SplitMix64 permutation on top of the base seed's
        // own expansion; a plain `seed ^ stream` would make streams of
        // adjacent indices start from near-identical states.
        let mut sm = seed;
        let base = splitmix64(&mut sm);
        let mut mix = base ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Rng::seed_from_u64(splitmix64(&mut mix))
    }

    /// Next 64 uniformly distributed bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo < hi` and both finite.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi && lo.is_finite() && hi.is_finite());
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal draw (Box–Muller). The log argument is bounded
    /// away from zero so the transform never produces an infinity.
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// `i`-th element of the van der Corput sequence in base `base`: the
/// radical inverse of `i`, a low-discrepancy point in `[0, 1)`.
///
/// Pairing coprime bases across dimensions yields a Halton sequence,
/// which covers a hyper-rectangle far more evenly than independent
/// uniform draws — useful when a design-space sweep wants stratified
/// coverage instead of Monte Carlo clumping. Fully deterministic: the
/// value depends only on `(i, base)`.
///
/// ```
/// use htmpll_num::rng::radical_inverse;
/// // Base 2: 0, 1/2, 1/4, 3/4, 1/8, ...
/// assert_eq!(radical_inverse(1, 2), 0.5);
/// assert_eq!(radical_inverse(3, 2), 0.75);
/// ```
pub fn radical_inverse(mut i: u64, base: u64) -> f64 {
    debug_assert!(base >= 2);
    let inv_base = 1.0 / base as f64;
    let mut f = 1.0;
    let mut r = 0.0;
    while i > 0 {
        f *= inv_base;
        r += f * (i % base) as f64;
        i /= base;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::seed_from_u64(12345);
        let mut b = Rng::seed_from_u64(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs of SplitMix64 for seed 0, from the reference
        // implementation (Steele/Lea/Flood; used by many test vectors).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(&mut s), 0x6e789e6aa1b965f4);
        assert_eq!(splitmix64(&mut s), 0x06c45d188009454f);
    }

    #[test]
    fn streams_are_reproducible_and_independent() {
        // Same (seed, stream) → same sequence.
        let mut a = Rng::for_stream(42, 17);
        let mut b = Rng::for_stream(42, 17);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Adjacent streams and adjacent seeds both decorrelate.
        let mut s0 = Rng::for_stream(42, 0);
        let mut s1 = Rng::for_stream(42, 1);
        let same = (0..64).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert!(same < 2, "adjacent streams should be independent");
        let mut t0 = Rng::for_stream(1, 5);
        let mut t1 = Rng::for_stream(2, 5);
        let same = (0..64).filter(|_| t0.next_u64() == t1.next_u64()).count();
        assert!(same < 2, "same stream of different seeds should differ");
    }

    #[test]
    fn radical_inverse_reference_values() {
        // Base 2 (van der Corput) and base 3 openings.
        let b2: Vec<f64> = (0..6).map(|i| radical_inverse(i, 2)).collect();
        assert_eq!(b2, vec![0.0, 0.5, 0.25, 0.75, 0.125, 0.625]);
        let b3: Vec<f64> = (0..4).map(|i| radical_inverse(i, 3)).collect();
        for (got, want) in b3.iter().zip([0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0 / 9.0]) {
            assert!((got - want).abs() < 1e-15, "{got} vs {want}");
        }
    }

    #[test]
    fn radical_inverse_is_low_discrepancy() {
        // Every length-n prefix of the base-2 sequence fills [0,1) more
        // evenly than random draws: max gap between sorted neighbours
        // is O(1/n), not O(log n / n).
        let mut pts: Vec<f64> = (0..256).map(|i| radical_inverse(i, 2)).collect();
        pts.sort_by(f64::total_cmp);
        let max_gap = pts.windows(2).map(|w| w[1] - w[0]).fold(0.0_f64, f64::max);
        assert!(max_gap <= 1.0 / 128.0 + 1e-12, "max gap {max_gap}");
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = Rng::seed_from_u64(2024);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let g = r.gaussian();
            assert!(g.is_finite());
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
