//! Scalar reference implementations of the SIMD kernels.
//!
//! These define the *semantics contract*: every vector backend must
//! produce bitwise-identical results lane for lane. The contract is
//! what makes SIMD dispatch invisible to the determinism machinery —
//! each lane performs exactly the floating-point operations, in exactly
//! the order, that the pre-SIMD scalar hot loops performed per element
//! (complex multiply as `a.re·b.re − a.im·b.im` / `a.re·b.im +
//! a.im·b.re`, subtraction as componentwise `sub`, Smith division with
//! the uniform-denominator branch hoisted). No backend may use FMA
//! (fused rounding differs) or reassociate a reduction.

use crate::complex::Complex;

/// `dst[i] -= m · src[i]` over split planes.
pub fn caxpy_sub(
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    for i in 0..dst_re.len() {
        let t_re = m.re * src_re[i] - m.im * src_im[i];
        let t_im = m.re * src_im[i] + m.im * src_re[i];
        dst_re[i] -= t_re;
        dst_im[i] -= t_im;
    }
}

/// [`caxpy_sub`] that leaves `dst[i]` untouched where `src[i] == 0`
/// (both components `== 0.0`, so `±0` both skip — the forward-solve
/// zero-skip semantics).
pub fn caxpy_sub_masked(
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    for i in 0..dst_re.len() {
        if src_re[i] == 0.0 && src_im[i] == 0.0 {
            continue;
        }
        let t_re = m.re * src_re[i] - m.im * src_im[i];
        let t_im = m.re * src_im[i] + m.im * src_re[i];
        dst_re[i] -= t_re;
        dst_im[i] -= t_im;
    }
}

/// `dst[i] /= d` over split planes: Smith's algorithm with the branch
/// and the scalars `r`, `den` hoisted out of the loop (the denominator
/// is uniform, so the branch is too — per lane the operations match
/// [`Complex`]'s `Div` exactly).
pub fn cdiv_assign(dst_re: &mut [f64], dst_im: &mut [f64], d: Complex) {
    if d.re.abs() >= d.im.abs() {
        if d.re == 0.0 && d.im == 0.0 {
            dst_re.fill(f64::NAN);
            dst_im.fill(f64::NAN);
            return;
        }
        let r = d.im / d.re;
        let den = d.re + d.im * r;
        for i in 0..dst_re.len() {
            let re = (dst_re[i] + dst_im[i] * r) / den;
            let im = (dst_im[i] - dst_re[i] * r) / den;
            dst_re[i] = re;
            dst_im[i] = im;
        }
    } else {
        let r = d.re / d.im;
        let den = d.re * r + d.im;
        for i in 0..dst_re.len() {
            let re = (dst_re[i] * r + dst_im[i]) / den;
            let im = (dst_im[i] * r - dst_re[i]) / den;
            dst_re[i] = re;
            dst_im[i] = im;
        }
    }
}

/// One radix-2 butterfly pass over split planes:
/// `t = v[i]·w[i]; v[i] = u[i] − t; u[i] = u[i] + t`.
pub fn butterfly(
    u_re: &mut [f64],
    u_im: &mut [f64],
    v_re: &mut [f64],
    v_im: &mut [f64],
    w_re: &[f64],
    w_im: &[f64],
) {
    for i in 0..u_re.len() {
        let t_re = v_re[i] * w_re[i] - v_im[i] * w_im[i];
        let t_im = v_re[i] * w_im[i] + v_im[i] * w_re[i];
        let ur = u_re[i];
        let ui = u_im[i];
        u_re[i] = ur + t_re;
        u_im[i] = ui + t_im;
        v_re[i] = ur - t_re;
        v_im[i] = ui - t_im;
    }
}

/// One λ(s) lattice-sum term over a batch of grid points:
/// Horner in `c[i]` over `poly` (highest coefficient first after the
/// internal reversal), times `factor`, times `coeff`, accumulated into
/// `acc[i]`. Per lane this is exactly
/// `acc += coeff · (factor · horner(poly, c))` with the scalar
/// operation order of `special::lattice_sum`.
pub fn lambda_term_acc(
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    c_re: &[f64],
    c_im: &[f64],
    poly: &[f64],
    factor: Complex,
    coeff: Complex,
) {
    for i in 0..acc_re.len() {
        let mut h_re = 0.0f64;
        let mut h_im = 0.0f64;
        for &a in poly.iter().rev() {
            let t_re = h_re * c_re[i] - h_im * c_im[i];
            let t_im = h_re * c_im[i] + h_im * c_re[i];
            h_re = t_re + a;
            h_im = t_im;
        }
        let f_re = factor.re * h_re - factor.im * h_im;
        let f_im = factor.re * h_im + factor.im * h_re;
        let g_re = coeff.re * f_re - coeff.im * f_im;
        let g_im = coeff.re * f_im + coeff.im * f_re;
        acc_re[i] += g_re;
        acc_im[i] += g_im;
    }
}

/// `out[i] += d[i] · x[i]` with `d` in split planes and `out`/`x`
/// interleaved — one diagonal pass of the banded mat-vec.
pub fn band_diag_madd(out: &mut [Complex], d_re: &[f64], d_im: &[f64], x: &[Complex]) {
    for i in 0..out.len() {
        let t_re = d_re[i] * x[i].re - d_im[i] * x[i].im;
        let t_im = d_re[i] * x[i].im + d_im[i] * x[i].re;
        out[i].re += t_re;
        out[i].im += t_im;
    }
}

/// `out[i] += c · x[i]` over split re/im planes — one diagonal pass of
/// the banded-Toeplitz mat-vec (uniform coefficient per diagonal).
///
/// Plane layout keeps the vector backends permute-free: the broadcast
/// coefficient meets contiguous `f64` lanes directly, with no AoS
/// de/re-interleave shuffles on the memory-bound path.
pub fn cmul_bcast_add(
    out_re: &mut [f64],
    out_im: &mut [f64],
    c: Complex,
    x_re: &[f64],
    x_im: &[f64],
) {
    for i in 0..out_re.len() {
        let t_re = c.re * x_re[i] - c.im * x_im[i];
        let t_im = c.re * x_im[i] + c.im * x_re[i];
        out_re[i] += t_re;
        out_im[i] += t_im;
    }
}

/// `dst[i] = r[i] · dst[i]` over interleaved slices — the per-row
/// scaling pass of the VCO banded-Toeplitz representation.
pub fn cmul_pairwise(dst: &mut [Complex], r: &[Complex]) {
    for i in 0..dst.len() {
        let t_re = r[i].re * dst[i].re - r[i].im * dst[i].im;
        let t_im = r[i].re * dst[i].im + r[i].im * dst[i].re;
        dst[i].re = t_re;
        dst[i].im = t_im;
    }
}
