//! 64-byte-aligned structure-of-arrays storage for complex planes.
//!
//! The SIMD kernels in [`crate::simd`] want the real and imaginary
//! parts of a complex vector in *separate contiguous planes* so a
//! single vector load grabs four (AVX2) or two (NEON) lanes of the same
//! component with no shuffling. [`AlignedF64`] is the building block: a
//! `Vec<f64>` whose backing allocation is 64-byte aligned (one full
//! cache line, and the widest vector register any supported ISA uses).
//! [`SoaVec`] pairs two such planes into a split-complex vector.
//!
//! Alignment is obtained safely by allocating `#[repr(align(64))]`
//! chunks of eight `f64`s through an ordinary `Vec` — no raw allocator
//! calls, no `unsafe` beyond the slice reinterpret, and the tail past
//! `len` is kept zeroed so whole-chunk reads never see garbage.

use crate::complex::Complex;

/// One cache line of eight `f64`s; the alignment carrier for
/// [`AlignedF64`].
#[derive(Clone, Copy)]
#[repr(C, align(64))]
struct Chunk([f64; 8]);

const LANES: usize = 8;

/// A growable `f64` buffer whose storage is 64-byte aligned.
///
/// Behaves like a fixed-length `Vec<f64>` created with
/// [`AlignedF64::zeros`]; elements are reached through
/// [`as_slice`](AlignedF64::as_slice) /
/// [`as_mut_slice`](AlignedF64::as_mut_slice).
pub struct AlignedF64 {
    chunks: Vec<Chunk>,
    len: usize,
}

impl AlignedF64 {
    /// A zero-filled buffer of `len` elements.
    pub fn zeros(len: usize) -> AlignedF64 {
        AlignedF64 {
            chunks: vec![Chunk([0.0; LANES]); len.div_ceil(LANES)],
            len,
        }
    }

    /// Number of addressable elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a plain `f64` slice (64-byte-aligned base).
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: `Chunk` is `#[repr(C)]` over `[f64; 8]`, so the chunk
        // storage is exactly `chunks.len() * 8` contiguous f64s, of
        // which the first `len` are the live elements.
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr().cast::<f64>(), self.len) }
    }

    /// The elements as a mutable `f64` slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as in `as_slice`; the tail past `len` stays untouched.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<f64>(), self.len) }
    }

    /// Resets every element to zero.
    pub fn fill_zero(&mut self) {
        self.chunks.fill(Chunk([0.0; LANES]));
    }
}

impl Clone for AlignedF64 {
    fn clone(&self) -> AlignedF64 {
        AlignedF64 {
            chunks: self.chunks.clone(),
            len: self.len,
        }
    }
}

impl std::fmt::Debug for AlignedF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for AlignedF64 {
    fn eq(&self, other: &AlignedF64) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A split-complex vector: one 64-byte-aligned plane per component.
///
/// The structure-of-arrays counterpart of `Vec<Complex>`: element `i`
/// is `re()[i] + j·im()[i]`. Conversion helpers move data between the
/// interleaved (`&[Complex]`) and split representations; the SIMD
/// kernels operate on the planes directly.
#[derive(Clone, Debug, PartialEq)]
pub struct SoaVec {
    re: AlignedF64,
    im: AlignedF64,
}

impl SoaVec {
    /// A zero vector of `len` elements.
    pub fn zeros(len: usize) -> SoaVec {
        SoaVec {
            re: AlignedF64::zeros(len),
            im: AlignedF64::zeros(len),
        }
    }

    /// Splits an interleaved complex slice into planes.
    pub fn from_complex(xs: &[Complex]) -> SoaVec {
        let mut v = SoaVec::zeros(xs.len());
        v.copy_from_complex(xs);
        v
    }

    /// Number of complex elements.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// True when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// The real plane.
    pub fn re(&self) -> &[f64] {
        self.re.as_slice()
    }

    /// The imaginary plane.
    pub fn im(&self) -> &[f64] {
        self.im.as_slice()
    }

    /// Both planes, mutably.
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (self.re.as_mut_slice(), self.im.as_mut_slice())
    }

    /// Element `i` as a [`Complex`].
    pub fn get(&self, i: usize) -> Complex {
        Complex::new(self.re.as_slice()[i], self.im.as_slice()[i])
    }

    /// Sets element `i`.
    pub fn set(&mut self, i: usize, v: Complex) {
        self.re.as_mut_slice()[i] = v.re;
        self.im.as_mut_slice()[i] = v.im;
    }

    /// Swaps elements `i` and `j` in both planes.
    pub fn swap(&mut self, i: usize, j: usize) {
        self.re.as_mut_slice().swap(i, j);
        self.im.as_mut_slice().swap(i, j);
    }

    /// Resets every element to zero.
    pub fn fill_zero(&mut self) {
        self.re.fill_zero();
        self.im.fill_zero();
    }

    /// Overwrites the planes from an interleaved slice of equal length.
    pub fn copy_from_complex(&mut self, xs: &[Complex]) {
        assert_eq!(xs.len(), self.len(), "SoaVec length mismatch");
        let (re, im) = (self.re.as_mut_slice(), self.im.as_mut_slice());
        for (i, x) in xs.iter().enumerate() {
            re[i] = x.re;
            im[i] = x.im;
        }
    }

    /// Writes the planes back into an interleaved slice of equal length.
    pub fn copy_to_complex(&self, out: &mut [Complex]) {
        assert_eq!(out.len(), self.len(), "SoaVec length mismatch");
        let (re, im) = (self.re.as_slice(), self.im.as_slice());
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Complex::new(re[i], im[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_64_bytes() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 1000] {
            let v = AlignedF64::zeros(len);
            assert_eq!(v.as_slice().as_ptr() as usize % 64, 0, "len={len}");
            assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn soa_roundtrip_preserves_bits() {
        let xs: Vec<Complex> = vec![
            Complex::new(1.5, -2.5),
            Complex::new(f64::NAN, f64::INFINITY),
            Complex::new(-0.0, 5e-324),
            Complex::new(1e308, -1e-308),
        ];
        let v = SoaVec::from_complex(&xs);
        let mut back = vec![Complex::ZERO; xs.len()];
        v.copy_to_complex(&mut back);
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn accessors_and_swap() {
        let mut v = SoaVec::zeros(3);
        v.set(0, Complex::new(1.0, 2.0));
        v.set(2, Complex::new(3.0, 4.0));
        v.swap(0, 2);
        assert_eq!(v.get(0), Complex::new(3.0, 4.0));
        assert_eq!(v.get(2), Complex::new(1.0, 2.0));
        assert!(!v.is_empty());
        assert_eq!(v.len(), 3);
        v.fill_zero();
        assert_eq!(v.get(0), Complex::ZERO);
        assert!(SoaVec::zeros(0).is_empty());
    }
}
