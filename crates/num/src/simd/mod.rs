//! Runtime-dispatched SIMD kernels over split-complex (SoA) planes.
//!
//! The numerical hot loops of the workspace — the banded-LU factor and
//! solve inner kernels, the λ(s) grid evaluation, the radix-2 FFT
//! butterflies and the banded-Toeplitz mat-vec — all reduce to a small
//! set of elementwise complex primitives. This module provides those
//! primitives three ways: a scalar reference ([`scalar`]-equivalent
//! semantics), an AVX2 backend (x86_64, 4 lanes) and a NEON backend
//! (aarch64, 2 lanes), selected once at runtime behind a single
//! dispatch point. Zero external dependencies: detection is
//! `std::arch::is_*_feature_detected!`, kernels are `std::arch`
//! intrinsics.
//!
//! ## Determinism contract
//!
//! Every backend performs, per lane, **exactly the floating-point
//! operations of the scalar path in exactly the same order**: complex
//! multiplies are expanded as `a.re·b.re − a.im·b.im` /
//! `a.re·b.im + a.im·b.re` with separate multiply and add/sub
//! instructions (FMA is never used — its single rounding differs from
//! the two-rounding scalar result), divisions hoist the uniform Smith
//! branch, and reductions are never reassociated: vectorization is
//! always *across independent outputs* (matrix rows, right-hand sides,
//! grid points), never within one accumulation chain. Results are
//! therefore bitwise identical whichever backend runs, which is what
//! keeps the 1-vs-N-thread determinism contract and the xcheck report
//! digest invariant under `HTMPLL_SIMD` and ISA changes.
//!
//! ## Override
//!
//! Set `HTMPLL_SIMD=0` (or `off`/`scalar`) to force the scalar backend;
//! any other value (or unset) uses the best detected ISA. Tests and
//! benches can flip the active backend with [`set_active_level`] —
//! safe at any time precisely because all backends agree bitwise.

mod soa;

pub(crate) mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

#[cfg(target_arch = "aarch64")]
mod neon;

pub use soa::{AlignedF64, SoaVec};

use crate::complex::Complex;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel backend runs. Ordered by preference within an ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar loops — the semantics reference.
    Scalar = 0,
    /// AVX2, 4 × `f64` lanes (x86_64).
    Avx2 = 1,
    /// NEON, 2 × `f64` lanes (aarch64).
    Neon = 2,
}

impl SimdLevel {
    /// Human-readable backend name (`scalar`, `avx2`, `neon`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            1 => SimdLevel::Avx2,
            2 => SimdLevel::Neon,
            _ => SimdLevel::Scalar,
        }
    }

    /// True when this backend can run on the current CPU.
    pub fn supported(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            SimdLevel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            SimdLevel::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }
}

/// The best backend the CPU supports, ignoring the environment
/// override.
pub fn hardware_level() -> SimdLevel {
    if SimdLevel::Avx2.supported() {
        SimdLevel::Avx2
    } else if SimdLevel::Neon.supported() {
        SimdLevel::Neon
    } else {
        SimdLevel::Scalar
    }
}

/// The backend selected by hardware detection plus the `HTMPLL_SIMD`
/// environment override (`0` / `off` / `scalar` force the scalar
/// backend).
pub fn detect_level() -> SimdLevel {
    if let Ok(v) = std::env::var("HTMPLL_SIMD") {
        let v = v.trim().to_ascii_lowercase();
        if v == "0" || v == "off" || v == "scalar" {
            return SimdLevel::Scalar;
        }
    }
    hardware_level()
}

const UNINIT: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(UNINIT);

/// The backend the dispatching kernels currently use. Detected once on
/// first use (hardware + `HTMPLL_SIMD`), then cached.
pub fn active_level() -> SimdLevel {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != UNINIT {
        return SimdLevel::from_u8(v);
    }
    let level = detect_level();
    ACTIVE.store(level as u8, Ordering::Relaxed);
    match level {
        SimdLevel::Scalar => htmpll_obs::counter!("num", "simd.active.scalar").inc(),
        SimdLevel::Avx2 => htmpll_obs::counter!("num", "simd.active.avx2").inc(),
        SimdLevel::Neon => htmpll_obs::counter!("num", "simd.active.neon").inc(),
    }
    level
}

/// Forces the active backend (clamped to what the CPU supports) and
/// returns the previous one. Intended for tests and benches comparing
/// backends; safe to flip at any time because every backend produces
/// bitwise-identical results.
pub fn set_active_level(level: SimdLevel) -> SimdLevel {
    let prev = active_level();
    let level = if level.supported() {
        level
    } else {
        SimdLevel::Scalar
    };
    ACTIVE.store(level as u8, Ordering::Relaxed);
    prev
}

macro_rules! dispatch {
    ($level:expr, $name:ident ( $($arg:expr),* $(,)? )) => {
        match $level {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `SimdLevel::Avx2` is only ever active or passed
            // through `*_with` after `supported()` confirmed AVX2.
            SimdLevel::Avx2 => unsafe { avx2::$name($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above for NEON.
            SimdLevel::Neon => unsafe { neon::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    };
}

/// Clamps an explicitly requested backend to what the CPU supports.
fn clamp(level: SimdLevel) -> SimdLevel {
    if level.supported() {
        level
    } else {
        SimdLevel::Scalar
    }
}

/// `dst[i] -= m · src[i]` over split planes — the banded-LU elimination
/// inner kernel (row AXPY) and the lane-blocked solve update.
///
/// # Panics
///
/// All four slices must share one length.
pub fn caxpy_sub(
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    caxpy_sub_with(active_level(), dst_re, dst_im, src_re, src_im, m);
}

/// [`caxpy_sub`] with an explicit backend (clamped to hardware).
pub fn caxpy_sub_with(
    level: SimdLevel,
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    assert!(
        dst_re.len() == dst_im.len()
            && dst_re.len() == src_re.len()
            && dst_re.len() == src_im.len(),
        "caxpy_sub plane length mismatch"
    );
    dispatch!(clamp(level), caxpy_sub(dst_re, dst_im, src_re, src_im, m));
}

/// [`caxpy_sub`] that leaves `dst[i]` unchanged where `src[i] == 0` —
/// the forward-solve zero-skip, applied per lane.
///
/// # Panics
///
/// All four slices must share one length.
pub fn caxpy_sub_masked(
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    caxpy_sub_masked_with(active_level(), dst_re, dst_im, src_re, src_im, m);
}

/// [`caxpy_sub_masked`] with an explicit backend (clamped to hardware).
pub fn caxpy_sub_masked_with(
    level: SimdLevel,
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    assert!(
        dst_re.len() == dst_im.len()
            && dst_re.len() == src_re.len()
            && dst_re.len() == src_im.len(),
        "caxpy_sub_masked plane length mismatch"
    );
    dispatch!(
        clamp(level),
        caxpy_sub_masked(dst_re, dst_im, src_re, src_im, m)
    );
}

/// `dst[i] /= d` over split planes (uniform denominator, Smith's
/// algorithm) — the lane-blocked back-substitution pivot divide.
///
/// # Panics
///
/// Both planes must share one length.
pub fn cdiv_assign(dst_re: &mut [f64], dst_im: &mut [f64], d: Complex) {
    cdiv_assign_with(active_level(), dst_re, dst_im, d);
}

/// [`cdiv_assign`] with an explicit backend (clamped to hardware).
pub fn cdiv_assign_with(level: SimdLevel, dst_re: &mut [f64], dst_im: &mut [f64], d: Complex) {
    assert_eq!(
        dst_re.len(),
        dst_im.len(),
        "cdiv_assign plane length mismatch"
    );
    dispatch!(clamp(level), cdiv_assign(dst_re, dst_im, d));
}

/// One radix-2 butterfly pass: `t = v[i]·w[i]; u[i] += t; v[i] = u −
/// t` over split planes.
///
/// # Panics
///
/// All six slices must share one length.
pub fn butterfly(
    u_re: &mut [f64],
    u_im: &mut [f64],
    v_re: &mut [f64],
    v_im: &mut [f64],
    w_re: &[f64],
    w_im: &[f64],
) {
    butterfly_with(active_level(), u_re, u_im, v_re, v_im, w_re, w_im);
}

/// [`butterfly`] with an explicit backend (clamped to hardware).
#[allow(clippy::too_many_arguments)]
pub fn butterfly_with(
    level: SimdLevel,
    u_re: &mut [f64],
    u_im: &mut [f64],
    v_re: &mut [f64],
    v_im: &mut [f64],
    w_re: &[f64],
    w_im: &[f64],
) {
    let n = u_re.len();
    assert!(
        u_im.len() == n && v_re.len() == n && v_im.len() == n && w_re.len() == n && w_im.len() == n,
        "butterfly plane length mismatch"
    );
    dispatch!(clamp(level), butterfly(u_re, u_im, v_re, v_im, w_re, w_im));
}

/// One λ(s) partial-fraction term accumulated over a batch of grid
/// points: `acc[i] += coeff · (factor · horner(poly, c[i]))`.
///
/// # Panics
///
/// The accumulator and argument planes must share one length.
pub fn lambda_term_acc(
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    c_re: &[f64],
    c_im: &[f64],
    poly: &[f64],
    factor: Complex,
    coeff: Complex,
) {
    lambda_term_acc_with(
        active_level(),
        acc_re,
        acc_im,
        c_re,
        c_im,
        poly,
        factor,
        coeff,
    );
}

/// [`lambda_term_acc`] with an explicit backend (clamped to hardware).
#[allow(clippy::too_many_arguments)]
pub fn lambda_term_acc_with(
    level: SimdLevel,
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    c_re: &[f64],
    c_im: &[f64],
    poly: &[f64],
    factor: Complex,
    coeff: Complex,
) {
    let n = acc_re.len();
    assert!(
        acc_im.len() == n && c_re.len() == n && c_im.len() == n,
        "lambda_term_acc plane length mismatch"
    );
    dispatch!(
        clamp(level),
        lambda_term_acc(acc_re, acc_im, c_re, c_im, poly, factor, coeff)
    );
}

/// `out[i] += d[i] · x[i]` with the diagonal in split planes and the
/// vectors interleaved — one diagonal pass of the [`crate::BandMat`]
/// mat-vec.
///
/// # Panics
///
/// All four operands must share one length.
pub fn band_diag_madd(out: &mut [Complex], d_re: &[f64], d_im: &[f64], x: &[Complex]) {
    band_diag_madd_with(active_level(), out, d_re, d_im, x);
}

/// [`band_diag_madd`] with an explicit backend (clamped to hardware).
pub fn band_diag_madd_with(
    level: SimdLevel,
    out: &mut [Complex],
    d_re: &[f64],
    d_im: &[f64],
    x: &[Complex],
) {
    let n = out.len();
    assert!(
        d_re.len() == n && d_im.len() == n && x.len() == n,
        "band_diag_madd length mismatch"
    );
    dispatch!(clamp(level), band_diag_madd(out, d_re, d_im, x));
}

/// `out[i] += c · x[i]` over split re/im planes — one diagonal pass of
/// the banded-Toeplitz mat-vec. Callers convert to SoA once per
/// mat-vec so every diagonal pass is permute-free plane arithmetic.
///
/// # Panics
///
/// All four plane slices must share one length.
pub fn cmul_bcast_add(
    out_re: &mut [f64],
    out_im: &mut [f64],
    c: Complex,
    x_re: &[f64],
    x_im: &[f64],
) {
    cmul_bcast_add_with(active_level(), out_re, out_im, c, x_re, x_im);
}

/// [`cmul_bcast_add`] with an explicit backend (clamped to hardware).
pub fn cmul_bcast_add_with(
    level: SimdLevel,
    out_re: &mut [f64],
    out_im: &mut [f64],
    c: Complex,
    x_re: &[f64],
    x_im: &[f64],
) {
    assert!(
        out_re.len() == out_im.len() && out_re.len() == x_re.len() && out_re.len() == x_im.len(),
        "cmul_bcast_add length mismatch"
    );
    dispatch!(clamp(level), cmul_bcast_add(out_re, out_im, c, x_re, x_im));
}

/// `dst[i] = r[i] · dst[i]` over interleaved slices — the per-row
/// scaling pass of the VCO banded-Toeplitz mat-vec.
///
/// # Panics
///
/// `dst` and `r` must share one length.
pub fn cmul_pairwise(dst: &mut [Complex], r: &[Complex]) {
    cmul_pairwise_with(active_level(), dst, r);
}

/// [`cmul_pairwise`] with an explicit backend (clamped to hardware).
pub fn cmul_pairwise_with(level: SimdLevel, dst: &mut [Complex], r: &[Complex]) {
    assert_eq!(dst.len(), r.len(), "cmul_pairwise length mismatch");
    dispatch!(clamp(level), cmul_pairwise(dst, r));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn rand_plane(rng: &mut Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.range(-1.0, 1.0)).collect()
    }

    #[test]
    fn detection_is_cached_and_overridable() {
        let first = active_level();
        assert_eq!(active_level(), first);
        let prev = set_active_level(SimdLevel::Scalar);
        assert_eq!(active_level(), SimdLevel::Scalar);
        set_active_level(prev);
        assert_eq!(active_level(), prev);
        assert!(SimdLevel::Scalar.supported());
        // hardware_level is one of the three names.
        assert!(["scalar", "avx2", "neon"].contains(&hardware_level().name()));
    }

    #[test]
    fn unsupported_level_clamps_to_scalar() {
        // At most one vector ISA exists per arch, so the other one must
        // clamp; on a scalar-only host both do.
        let foreign = if cfg!(target_arch = "x86_64") {
            SimdLevel::Neon
        } else {
            SimdLevel::Avx2
        };
        let prev = set_active_level(foreign);
        assert_eq!(active_level(), SimdLevel::Scalar);
        set_active_level(prev);
    }

    #[test]
    fn kernels_match_scalar_bitwise_on_random_data() {
        let hw = hardware_level();
        let mut rng = Rng::seed_from_u64(0xDEC0DE);
        for n in [0usize, 1, 3, 4, 5, 8, 17, 33] {
            let m = Complex::new(rng.uniform(), rng.uniform());
            let src_re = rand_plane(&mut rng, n);
            let src_im = rand_plane(&mut rng, n);
            let base_re = rand_plane(&mut rng, n);
            let base_im = rand_plane(&mut rng, n);

            let mut a_re = base_re.clone();
            let mut a_im = base_im.clone();
            caxpy_sub_with(SimdLevel::Scalar, &mut a_re, &mut a_im, &src_re, &src_im, m);
            let mut b_re = base_re.clone();
            let mut b_im = base_im.clone();
            caxpy_sub_with(hw, &mut b_re, &mut b_im, &src_re, &src_im, m);
            assert_eq!(bits(&a_re), bits(&b_re), "caxpy_sub re n={n}");
            assert_eq!(bits(&a_im), bits(&b_im), "caxpy_sub im n={n}");

            let mut a_re = base_re.clone();
            let mut a_im = base_im.clone();
            cdiv_assign_with(SimdLevel::Scalar, &mut a_re, &mut a_im, m);
            let mut b_re = base_re.clone();
            let mut b_im = base_im.clone();
            cdiv_assign_with(hw, &mut b_re, &mut b_im, m);
            assert_eq!(bits(&a_re), bits(&b_re), "cdiv re n={n}");
            assert_eq!(bits(&a_im), bits(&b_im), "cdiv im n={n}");
        }
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }
}
