//! AVX2 backends (4 × `f64` lanes).
//!
//! Every function mirrors its [`super::scalar`] counterpart operation
//! for operation: multiplies and adds/subtracts are issued separately
//! (`vmulpd` + `vaddpd`/`vsubpd`, never FMA, which rounds once instead
//! of twice), and each lane sees exactly the scalar operation order, so
//! the results are bitwise identical to the scalar backend. Tails
//! shorter than one vector fall through to the scalar kernel.
//!
//! Interleaved (`&[Complex]`) operands rely on `Complex` being
//! `#[repr(C)]` — a slice of `n` complex numbers is exactly `2n`
//! contiguous `f64`s `[re₀, im₀, re₁, im₁, …]` — and are split into
//! component vectors in-register with two 128-bit permutes and an
//! unpack pair per four elements.

#![allow(unsafe_op_in_unsafe_fn)]

use crate::complex::Complex;
use std::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_and_pd, _mm256_blendv_pd, _mm256_cmp_pd, _mm256_div_pd,
    _mm256_loadu_pd, _mm256_mul_pd, _mm256_permute2f128_pd, _mm256_set1_pd, _mm256_setzero_pd,
    _mm256_storeu_pd, _mm256_sub_pd, _mm256_unpackhi_pd, _mm256_unpacklo_pd, _CMP_EQ_OQ,
};

const W: usize = 4;

/// Loads four interleaved complex numbers and splits them into
/// component vectors: `[re₀..re₃]`, `[im₀..im₃]`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn deinterleave(p: *const f64) -> (__m256d, __m256d) {
    let a = _mm256_loadu_pd(p); // re0 im0 re1 im1
    let b = _mm256_loadu_pd(p.add(4)); // re2 im2 re3 im3
    let lo = _mm256_permute2f128_pd(a, b, 0x20); // re0 im0 re2 im2
    let hi = _mm256_permute2f128_pd(a, b, 0x31); // re1 im1 re3 im3
    (_mm256_unpacklo_pd(lo, hi), _mm256_unpackhi_pd(lo, hi))
}

/// Inverse of [`deinterleave`]: stores component vectors as four
/// interleaved complex numbers.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn interleave(re: __m256d, im: __m256d, p: *mut f64) {
    let lo = _mm256_unpacklo_pd(re, im); // re0 im0 re2 im2
    let hi = _mm256_unpackhi_pd(re, im); // re1 im1 re3 im3
    _mm256_storeu_pd(p, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(p.add(4), _mm256_permute2f128_pd(lo, hi, 0x31));
}

/// See [`super::scalar::caxpy_sub`].
#[target_feature(enable = "avx2")]
pub unsafe fn caxpy_sub(
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    let n = dst_re.len();
    let m_re = _mm256_set1_pd(m.re);
    let m_im = _mm256_set1_pd(m.im);
    let mut i = 0;
    while i + W <= n {
        let s_re = _mm256_loadu_pd(src_re.as_ptr().add(i));
        let s_im = _mm256_loadu_pd(src_im.as_ptr().add(i));
        let t_re = _mm256_sub_pd(_mm256_mul_pd(m_re, s_re), _mm256_mul_pd(m_im, s_im));
        let t_im = _mm256_add_pd(_mm256_mul_pd(m_re, s_im), _mm256_mul_pd(m_im, s_re));
        let d_re = _mm256_loadu_pd(dst_re.as_ptr().add(i));
        let d_im = _mm256_loadu_pd(dst_im.as_ptr().add(i));
        _mm256_storeu_pd(dst_re.as_mut_ptr().add(i), _mm256_sub_pd(d_re, t_re));
        _mm256_storeu_pd(dst_im.as_mut_ptr().add(i), _mm256_sub_pd(d_im, t_im));
        i += W;
    }
    super::scalar::caxpy_sub(
        &mut dst_re[i..],
        &mut dst_im[i..],
        &src_re[i..],
        &src_im[i..],
        m,
    );
}

/// See [`super::scalar::caxpy_sub_masked`].
#[target_feature(enable = "avx2")]
pub unsafe fn caxpy_sub_masked(
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    let n = dst_re.len();
    let m_re = _mm256_set1_pd(m.re);
    let m_im = _mm256_set1_pd(m.im);
    let zero = _mm256_setzero_pd();
    let mut i = 0;
    while i + W <= n {
        let s_re = _mm256_loadu_pd(src_re.as_ptr().add(i));
        let s_im = _mm256_loadu_pd(src_im.as_ptr().add(i));
        // Lane skips exactly when src == 0: ±0 compares equal to zero,
        // NaN compares unequal (ordered EQ), matching the scalar
        // `src == Complex::ZERO` test.
        let skip = _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_EQ_OQ>(s_re, zero),
            _mm256_cmp_pd::<_CMP_EQ_OQ>(s_im, zero),
        );
        let t_re = _mm256_sub_pd(_mm256_mul_pd(m_re, s_re), _mm256_mul_pd(m_im, s_im));
        let t_im = _mm256_add_pd(_mm256_mul_pd(m_re, s_im), _mm256_mul_pd(m_im, s_re));
        let d_re = _mm256_loadu_pd(dst_re.as_ptr().add(i));
        let d_im = _mm256_loadu_pd(dst_im.as_ptr().add(i));
        let r_re = _mm256_blendv_pd(_mm256_sub_pd(d_re, t_re), d_re, skip);
        let r_im = _mm256_blendv_pd(_mm256_sub_pd(d_im, t_im), d_im, skip);
        _mm256_storeu_pd(dst_re.as_mut_ptr().add(i), r_re);
        _mm256_storeu_pd(dst_im.as_mut_ptr().add(i), r_im);
        i += W;
    }
    super::scalar::caxpy_sub_masked(
        &mut dst_re[i..],
        &mut dst_im[i..],
        &src_re[i..],
        &src_im[i..],
        m,
    );
}

/// See [`super::scalar::cdiv_assign`].
#[target_feature(enable = "avx2")]
pub unsafe fn cdiv_assign(dst_re: &mut [f64], dst_im: &mut [f64], d: Complex) {
    let n = dst_re.len();
    if d.re.abs() >= d.im.abs() {
        if d.re == 0.0 && d.im == 0.0 {
            dst_re.fill(f64::NAN);
            dst_im.fill(f64::NAN);
            return;
        }
        let r = d.im / d.re;
        let den = d.re + d.im * r;
        let r_v = _mm256_set1_pd(r);
        let den_v = _mm256_set1_pd(den);
        let mut i = 0;
        while i + W <= n {
            let x_re = _mm256_loadu_pd(dst_re.as_ptr().add(i));
            let x_im = _mm256_loadu_pd(dst_im.as_ptr().add(i));
            let re = _mm256_div_pd(_mm256_add_pd(x_re, _mm256_mul_pd(x_im, r_v)), den_v);
            let im = _mm256_div_pd(_mm256_sub_pd(x_im, _mm256_mul_pd(x_re, r_v)), den_v);
            _mm256_storeu_pd(dst_re.as_mut_ptr().add(i), re);
            _mm256_storeu_pd(dst_im.as_mut_ptr().add(i), im);
            i += W;
        }
        super::scalar::cdiv_assign(&mut dst_re[i..], &mut dst_im[i..], d);
    } else {
        let r = d.re / d.im;
        let den = d.re * r + d.im;
        let r_v = _mm256_set1_pd(r);
        let den_v = _mm256_set1_pd(den);
        let mut i = 0;
        while i + W <= n {
            let x_re = _mm256_loadu_pd(dst_re.as_ptr().add(i));
            let x_im = _mm256_loadu_pd(dst_im.as_ptr().add(i));
            let re = _mm256_div_pd(_mm256_add_pd(_mm256_mul_pd(x_re, r_v), x_im), den_v);
            let im = _mm256_div_pd(_mm256_sub_pd(_mm256_mul_pd(x_im, r_v), x_re), den_v);
            _mm256_storeu_pd(dst_re.as_mut_ptr().add(i), re);
            _mm256_storeu_pd(dst_im.as_mut_ptr().add(i), im);
            i += W;
        }
        super::scalar::cdiv_assign(&mut dst_re[i..], &mut dst_im[i..], d);
    }
}

/// See [`super::scalar::butterfly`].
#[target_feature(enable = "avx2")]
pub unsafe fn butterfly(
    u_re: &mut [f64],
    u_im: &mut [f64],
    v_re: &mut [f64],
    v_im: &mut [f64],
    w_re: &[f64],
    w_im: &[f64],
) {
    let n = u_re.len();
    let mut i = 0;
    while i + W <= n {
        let vr = _mm256_loadu_pd(v_re.as_ptr().add(i));
        let vi = _mm256_loadu_pd(v_im.as_ptr().add(i));
        let wr = _mm256_loadu_pd(w_re.as_ptr().add(i));
        let wi = _mm256_loadu_pd(w_im.as_ptr().add(i));
        let t_re = _mm256_sub_pd(_mm256_mul_pd(vr, wr), _mm256_mul_pd(vi, wi));
        let t_im = _mm256_add_pd(_mm256_mul_pd(vr, wi), _mm256_mul_pd(vi, wr));
        let ur = _mm256_loadu_pd(u_re.as_ptr().add(i));
        let ui = _mm256_loadu_pd(u_im.as_ptr().add(i));
        _mm256_storeu_pd(u_re.as_mut_ptr().add(i), _mm256_add_pd(ur, t_re));
        _mm256_storeu_pd(u_im.as_mut_ptr().add(i), _mm256_add_pd(ui, t_im));
        _mm256_storeu_pd(v_re.as_mut_ptr().add(i), _mm256_sub_pd(ur, t_re));
        _mm256_storeu_pd(v_im.as_mut_ptr().add(i), _mm256_sub_pd(ui, t_im));
        i += W;
    }
    super::scalar::butterfly(
        &mut u_re[i..],
        &mut u_im[i..],
        &mut v_re[i..],
        &mut v_im[i..],
        &w_re[i..],
        &w_im[i..],
    );
}

/// See [`super::scalar::lambda_term_acc`].
#[target_feature(enable = "avx2")]
pub unsafe fn lambda_term_acc(
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    c_re: &[f64],
    c_im: &[f64],
    poly: &[f64],
    factor: Complex,
    coeff: Complex,
) {
    let n = acc_re.len();
    let f_re = _mm256_set1_pd(factor.re);
    let f_im = _mm256_set1_pd(factor.im);
    let k_re = _mm256_set1_pd(coeff.re);
    let k_im = _mm256_set1_pd(coeff.im);
    let mut i = 0;
    while i + W <= n {
        let cr = _mm256_loadu_pd(c_re.as_ptr().add(i));
        let ci = _mm256_loadu_pd(c_im.as_ptr().add(i));
        let mut h_re = _mm256_setzero_pd();
        let mut h_im = _mm256_setzero_pd();
        for &a in poly.iter().rev() {
            let t_re = _mm256_sub_pd(_mm256_mul_pd(h_re, cr), _mm256_mul_pd(h_im, ci));
            let t_im = _mm256_add_pd(_mm256_mul_pd(h_re, ci), _mm256_mul_pd(h_im, cr));
            h_re = _mm256_add_pd(t_re, _mm256_set1_pd(a));
            h_im = t_im;
        }
        let p_re = _mm256_sub_pd(_mm256_mul_pd(f_re, h_re), _mm256_mul_pd(f_im, h_im));
        let p_im = _mm256_add_pd(_mm256_mul_pd(f_re, h_im), _mm256_mul_pd(f_im, h_re));
        let g_re = _mm256_sub_pd(_mm256_mul_pd(k_re, p_re), _mm256_mul_pd(k_im, p_im));
        let g_im = _mm256_add_pd(_mm256_mul_pd(k_re, p_im), _mm256_mul_pd(k_im, p_re));
        let a_re = _mm256_loadu_pd(acc_re.as_ptr().add(i));
        let a_im = _mm256_loadu_pd(acc_im.as_ptr().add(i));
        _mm256_storeu_pd(acc_re.as_mut_ptr().add(i), _mm256_add_pd(a_re, g_re));
        _mm256_storeu_pd(acc_im.as_mut_ptr().add(i), _mm256_add_pd(a_im, g_im));
        i += W;
    }
    super::scalar::lambda_term_acc(
        &mut acc_re[i..],
        &mut acc_im[i..],
        &c_re[i..],
        &c_im[i..],
        poly,
        factor,
        coeff,
    );
}

/// See [`super::scalar::band_diag_madd`].
#[target_feature(enable = "avx2")]
pub unsafe fn band_diag_madd(out: &mut [Complex], d_re: &[f64], d_im: &[f64], x: &[Complex]) {
    let n = out.len();
    let x_ptr = x.as_ptr().cast::<f64>();
    let out_ptr = out.as_mut_ptr().cast::<f64>();
    let mut i = 0;
    while i + W <= n {
        let (x_re, x_im) = deinterleave(x_ptr.add(2 * i));
        let dr = _mm256_loadu_pd(d_re.as_ptr().add(i));
        let di = _mm256_loadu_pd(d_im.as_ptr().add(i));
        let t_re = _mm256_sub_pd(_mm256_mul_pd(dr, x_re), _mm256_mul_pd(di, x_im));
        let t_im = _mm256_add_pd(_mm256_mul_pd(dr, x_im), _mm256_mul_pd(di, x_re));
        let (o_re, o_im) = deinterleave(out_ptr.add(2 * i));
        interleave(
            _mm256_add_pd(o_re, t_re),
            _mm256_add_pd(o_im, t_im),
            out_ptr.add(2 * i),
        );
        i += W;
    }
    super::scalar::band_diag_madd(&mut out[i..], &d_re[i..], &d_im[i..], &x[i..]);
}

/// See [`super::scalar::cmul_bcast_add`].
#[target_feature(enable = "avx2")]
pub unsafe fn cmul_bcast_add(
    out_re: &mut [f64],
    out_im: &mut [f64],
    c: Complex,
    x_re: &[f64],
    x_im: &[f64],
) {
    let n = out_re.len();
    let cr = _mm256_set1_pd(c.re);
    let ci = _mm256_set1_pd(c.im);
    let mut i = 0;
    while i + W <= n {
        let xr = _mm256_loadu_pd(x_re.as_ptr().add(i));
        let xi = _mm256_loadu_pd(x_im.as_ptr().add(i));
        let t_re = _mm256_sub_pd(_mm256_mul_pd(cr, xr), _mm256_mul_pd(ci, xi));
        let t_im = _mm256_add_pd(_mm256_mul_pd(cr, xi), _mm256_mul_pd(ci, xr));
        let o_re = _mm256_loadu_pd(out_re.as_ptr().add(i));
        let o_im = _mm256_loadu_pd(out_im.as_ptr().add(i));
        _mm256_storeu_pd(out_re.as_mut_ptr().add(i), _mm256_add_pd(o_re, t_re));
        _mm256_storeu_pd(out_im.as_mut_ptr().add(i), _mm256_add_pd(o_im, t_im));
        i += W;
    }
    super::scalar::cmul_bcast_add(
        &mut out_re[i..],
        &mut out_im[i..],
        c,
        &x_re[i..],
        &x_im[i..],
    );
}

/// See [`super::scalar::cmul_pairwise`].
#[target_feature(enable = "avx2")]
pub unsafe fn cmul_pairwise(dst: &mut [Complex], r: &[Complex]) {
    let n = dst.len();
    let r_ptr = r.as_ptr().cast::<f64>();
    let dst_ptr = dst.as_mut_ptr().cast::<f64>();
    let mut i = 0;
    while i + W <= n {
        let (r_re, r_im) = deinterleave(r_ptr.add(2 * i));
        let (d_re, d_im) = deinterleave(dst_ptr.add(2 * i));
        let t_re = _mm256_sub_pd(_mm256_mul_pd(r_re, d_re), _mm256_mul_pd(r_im, d_im));
        let t_im = _mm256_add_pd(_mm256_mul_pd(r_re, d_im), _mm256_mul_pd(r_im, d_re));
        interleave(t_re, t_im, dst_ptr.add(2 * i));
        i += W;
    }
    super::scalar::cmul_pairwise(&mut dst[i..], &r[i..]);
}
