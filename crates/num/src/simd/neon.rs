//! NEON backends (2 × `f64` lanes, aarch64).
//!
//! Mirrors [`super::scalar`] operation for operation, exactly like the
//! AVX2 backend: separate multiply and add/subtract instructions (no
//! fused `vfma`), scalar operation order per lane, scalar fallthrough
//! for tails. Interleaved operands use the structure load/store pair
//! `vld2q_f64`/`vst2q_f64`, which deinterleave in one instruction.

#![allow(unsafe_op_in_unsafe_fn)]

use crate::complex::Complex;
use std::arch::aarch64::{
    float64x2x2_t, vaddq_f64, vandq_u64, vbslq_f64, vceqq_f64, vdivq_f64, vdupq_n_f64, vld1q_f64,
    vld2q_f64, vmulq_f64, vst1q_f64, vst2q_f64, vsubq_f64,
};

const W: usize = 2;

/// See [`super::scalar::caxpy_sub`].
#[target_feature(enable = "neon")]
pub unsafe fn caxpy_sub(
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    let n = dst_re.len();
    let m_re = vdupq_n_f64(m.re);
    let m_im = vdupq_n_f64(m.im);
    let mut i = 0;
    while i + W <= n {
        let s_re = vld1q_f64(src_re.as_ptr().add(i));
        let s_im = vld1q_f64(src_im.as_ptr().add(i));
        let t_re = vsubq_f64(vmulq_f64(m_re, s_re), vmulq_f64(m_im, s_im));
        let t_im = vaddq_f64(vmulq_f64(m_re, s_im), vmulq_f64(m_im, s_re));
        let d_re = vld1q_f64(dst_re.as_ptr().add(i));
        let d_im = vld1q_f64(dst_im.as_ptr().add(i));
        vst1q_f64(dst_re.as_mut_ptr().add(i), vsubq_f64(d_re, t_re));
        vst1q_f64(dst_im.as_mut_ptr().add(i), vsubq_f64(d_im, t_im));
        i += W;
    }
    super::scalar::caxpy_sub(
        &mut dst_re[i..],
        &mut dst_im[i..],
        &src_re[i..],
        &src_im[i..],
        m,
    );
}

/// See [`super::scalar::caxpy_sub_masked`].
#[target_feature(enable = "neon")]
pub unsafe fn caxpy_sub_masked(
    dst_re: &mut [f64],
    dst_im: &mut [f64],
    src_re: &[f64],
    src_im: &[f64],
    m: Complex,
) {
    let n = dst_re.len();
    let m_re = vdupq_n_f64(m.re);
    let m_im = vdupq_n_f64(m.im);
    let zero = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + W <= n {
        let s_re = vld1q_f64(src_re.as_ptr().add(i));
        let s_im = vld1q_f64(src_im.as_ptr().add(i));
        // Lane skips exactly when src == 0 (±0 equal, NaN unequal).
        let skip = vandq_u64(vceqq_f64(s_re, zero), vceqq_f64(s_im, zero));
        let t_re = vsubq_f64(vmulq_f64(m_re, s_re), vmulq_f64(m_im, s_im));
        let t_im = vaddq_f64(vmulq_f64(m_re, s_im), vmulq_f64(m_im, s_re));
        let d_re = vld1q_f64(dst_re.as_ptr().add(i));
        let d_im = vld1q_f64(dst_im.as_ptr().add(i));
        vst1q_f64(
            dst_re.as_mut_ptr().add(i),
            vbslq_f64(skip, d_re, vsubq_f64(d_re, t_re)),
        );
        vst1q_f64(
            dst_im.as_mut_ptr().add(i),
            vbslq_f64(skip, d_im, vsubq_f64(d_im, t_im)),
        );
        i += W;
    }
    super::scalar::caxpy_sub_masked(
        &mut dst_re[i..],
        &mut dst_im[i..],
        &src_re[i..],
        &src_im[i..],
        m,
    );
}

/// See [`super::scalar::cdiv_assign`].
#[target_feature(enable = "neon")]
pub unsafe fn cdiv_assign(dst_re: &mut [f64], dst_im: &mut [f64], d: Complex) {
    let n = dst_re.len();
    if d.re.abs() >= d.im.abs() {
        if d.re == 0.0 && d.im == 0.0 {
            dst_re.fill(f64::NAN);
            dst_im.fill(f64::NAN);
            return;
        }
        let r = d.im / d.re;
        let den = d.re + d.im * r;
        let r_v = vdupq_n_f64(r);
        let den_v = vdupq_n_f64(den);
        let mut i = 0;
        while i + W <= n {
            let x_re = vld1q_f64(dst_re.as_ptr().add(i));
            let x_im = vld1q_f64(dst_im.as_ptr().add(i));
            let re = vdivq_f64(vaddq_f64(x_re, vmulq_f64(x_im, r_v)), den_v);
            let im = vdivq_f64(vsubq_f64(x_im, vmulq_f64(x_re, r_v)), den_v);
            vst1q_f64(dst_re.as_mut_ptr().add(i), re);
            vst1q_f64(dst_im.as_mut_ptr().add(i), im);
            i += W;
        }
        super::scalar::cdiv_assign(&mut dst_re[i..], &mut dst_im[i..], d);
    } else {
        let r = d.re / d.im;
        let den = d.re * r + d.im;
        let r_v = vdupq_n_f64(r);
        let den_v = vdupq_n_f64(den);
        let mut i = 0;
        while i + W <= n {
            let x_re = vld1q_f64(dst_re.as_ptr().add(i));
            let x_im = vld1q_f64(dst_im.as_ptr().add(i));
            let re = vdivq_f64(vaddq_f64(vmulq_f64(x_re, r_v), x_im), den_v);
            let im = vdivq_f64(vsubq_f64(vmulq_f64(x_im, r_v), x_re), den_v);
            vst1q_f64(dst_re.as_mut_ptr().add(i), re);
            vst1q_f64(dst_im.as_mut_ptr().add(i), im);
            i += W;
        }
        super::scalar::cdiv_assign(&mut dst_re[i..], &mut dst_im[i..], d);
    }
}

/// See [`super::scalar::butterfly`].
#[target_feature(enable = "neon")]
pub unsafe fn butterfly(
    u_re: &mut [f64],
    u_im: &mut [f64],
    v_re: &mut [f64],
    v_im: &mut [f64],
    w_re: &[f64],
    w_im: &[f64],
) {
    let n = u_re.len();
    let mut i = 0;
    while i + W <= n {
        let vr = vld1q_f64(v_re.as_ptr().add(i));
        let vi = vld1q_f64(v_im.as_ptr().add(i));
        let wr = vld1q_f64(w_re.as_ptr().add(i));
        let wi = vld1q_f64(w_im.as_ptr().add(i));
        let t_re = vsubq_f64(vmulq_f64(vr, wr), vmulq_f64(vi, wi));
        let t_im = vaddq_f64(vmulq_f64(vr, wi), vmulq_f64(vi, wr));
        let ur = vld1q_f64(u_re.as_ptr().add(i));
        let ui = vld1q_f64(u_im.as_ptr().add(i));
        vst1q_f64(u_re.as_mut_ptr().add(i), vaddq_f64(ur, t_re));
        vst1q_f64(u_im.as_mut_ptr().add(i), vaddq_f64(ui, t_im));
        vst1q_f64(v_re.as_mut_ptr().add(i), vsubq_f64(ur, t_re));
        vst1q_f64(v_im.as_mut_ptr().add(i), vsubq_f64(ui, t_im));
        i += W;
    }
    super::scalar::butterfly(
        &mut u_re[i..],
        &mut u_im[i..],
        &mut v_re[i..],
        &mut v_im[i..],
        &w_re[i..],
        &w_im[i..],
    );
}

/// See [`super::scalar::lambda_term_acc`].
#[target_feature(enable = "neon")]
pub unsafe fn lambda_term_acc(
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    c_re: &[f64],
    c_im: &[f64],
    poly: &[f64],
    factor: Complex,
    coeff: Complex,
) {
    let n = acc_re.len();
    let f_re = vdupq_n_f64(factor.re);
    let f_im = vdupq_n_f64(factor.im);
    let k_re = vdupq_n_f64(coeff.re);
    let k_im = vdupq_n_f64(coeff.im);
    let mut i = 0;
    while i + W <= n {
        let cr = vld1q_f64(c_re.as_ptr().add(i));
        let ci = vld1q_f64(c_im.as_ptr().add(i));
        let mut h_re = vdupq_n_f64(0.0);
        let mut h_im = vdupq_n_f64(0.0);
        for &a in poly.iter().rev() {
            let t_re = vsubq_f64(vmulq_f64(h_re, cr), vmulq_f64(h_im, ci));
            let t_im = vaddq_f64(vmulq_f64(h_re, ci), vmulq_f64(h_im, cr));
            h_re = vaddq_f64(t_re, vdupq_n_f64(a));
            h_im = t_im;
        }
        let p_re = vsubq_f64(vmulq_f64(f_re, h_re), vmulq_f64(f_im, h_im));
        let p_im = vaddq_f64(vmulq_f64(f_re, h_im), vmulq_f64(f_im, h_re));
        let g_re = vsubq_f64(vmulq_f64(k_re, p_re), vmulq_f64(k_im, p_im));
        let g_im = vaddq_f64(vmulq_f64(k_re, p_im), vmulq_f64(k_im, p_re));
        let a_re = vld1q_f64(acc_re.as_ptr().add(i));
        let a_im = vld1q_f64(acc_im.as_ptr().add(i));
        vst1q_f64(acc_re.as_mut_ptr().add(i), vaddq_f64(a_re, g_re));
        vst1q_f64(acc_im.as_mut_ptr().add(i), vaddq_f64(a_im, g_im));
        i += W;
    }
    super::scalar::lambda_term_acc(
        &mut acc_re[i..],
        &mut acc_im[i..],
        &c_re[i..],
        &c_im[i..],
        poly,
        factor,
        coeff,
    );
}

/// See [`super::scalar::band_diag_madd`].
#[target_feature(enable = "neon")]
pub unsafe fn band_diag_madd(out: &mut [Complex], d_re: &[f64], d_im: &[f64], x: &[Complex]) {
    let n = out.len();
    let x_ptr = x.as_ptr().cast::<f64>();
    let out_ptr = out.as_mut_ptr().cast::<f64>();
    let mut i = 0;
    while i + W <= n {
        let xv = vld2q_f64(x_ptr.add(2 * i));
        let dr = vld1q_f64(d_re.as_ptr().add(i));
        let di = vld1q_f64(d_im.as_ptr().add(i));
        let t_re = vsubq_f64(vmulq_f64(dr, xv.0), vmulq_f64(di, xv.1));
        let t_im = vaddq_f64(vmulq_f64(dr, xv.1), vmulq_f64(di, xv.0));
        let ov = vld2q_f64(out_ptr.add(2 * i));
        vst2q_f64(
            out_ptr.add(2 * i),
            float64x2x2_t(vaddq_f64(ov.0, t_re), vaddq_f64(ov.1, t_im)),
        );
        i += W;
    }
    super::scalar::band_diag_madd(&mut out[i..], &d_re[i..], &d_im[i..], &x[i..]);
}

/// See [`super::scalar::cmul_bcast_add`].
#[target_feature(enable = "neon")]
pub unsafe fn cmul_bcast_add(
    out_re: &mut [f64],
    out_im: &mut [f64],
    c: Complex,
    x_re: &[f64],
    x_im: &[f64],
) {
    let n = out_re.len();
    let cr = vdupq_n_f64(c.re);
    let ci = vdupq_n_f64(c.im);
    let mut i = 0;
    while i + W <= n {
        let xr = vld1q_f64(x_re.as_ptr().add(i));
        let xi = vld1q_f64(x_im.as_ptr().add(i));
        let t_re = vsubq_f64(vmulq_f64(cr, xr), vmulq_f64(ci, xi));
        let t_im = vaddq_f64(vmulq_f64(cr, xi), vmulq_f64(ci, xr));
        let o_re = vld1q_f64(out_re.as_ptr().add(i));
        let o_im = vld1q_f64(out_im.as_ptr().add(i));
        vst1q_f64(out_re.as_mut_ptr().add(i), vaddq_f64(o_re, t_re));
        vst1q_f64(out_im.as_mut_ptr().add(i), vaddq_f64(o_im, t_im));
        i += W;
    }
    super::scalar::cmul_bcast_add(
        &mut out_re[i..],
        &mut out_im[i..],
        c,
        &x_re[i..],
        &x_im[i..],
    );
}

/// See [`super::scalar::cmul_pairwise`].
#[target_feature(enable = "neon")]
pub unsafe fn cmul_pairwise(dst: &mut [Complex], r: &[Complex]) {
    let n = dst.len();
    let r_ptr = r.as_ptr().cast::<f64>();
    let dst_ptr = dst.as_mut_ptr().cast::<f64>();
    let mut i = 0;
    while i + W <= n {
        let rv = vld2q_f64(r_ptr.add(2 * i));
        let dv = vld2q_f64(dst_ptr.add(2 * i));
        let t_re = vsubq_f64(vmulq_f64(rv.0, dv.0), vmulq_f64(rv.1, dv.1));
        let t_im = vaddq_f64(vmulq_f64(rv.0, dv.1), vmulq_f64(rv.1, dv.0));
        vst2q_f64(dst_ptr.add(2 * i), float64x2x2_t(t_re, t_im));
        i += W;
    }
    super::scalar::cmul_pairwise(&mut dst[i..], &r[i..]);
}
