//! Escalating, panic-free dense solves: refined partial pivoting →
//! complete pivoting → Tikhonov perturbation.
//!
//! The dense closed-loop path inverts `I + G̃(s)` on frequency grids that
//! deliberately probe near-instability regimes (ω_UG → ω₀, points close
//! to closed-loop poles). There a plain partial-pivot LU either fails
//! outright or silently loses most of its digits. [`RobustLu`] climbs an
//! escalation ladder instead of giving up:
//!
//! 1. **Refined partial pivot** — [`Lu::factor`] plus one step of
//!    iterative refinement per solve, gated on the pivot growth and a
//!    cheap condition estimate.
//! 2. **Complete (full) pivoting** — [`FullPivLu`]: row *and* column
//!    pivoting bounds element growth where partial pivoting cannot.
//! 3. **Tikhonov perturbation** — a tiny diagonal shift
//!    `A + δI, δ = ‖A‖_max·n·√ε`, as the last resort on a matrix that is
//!    singular to working precision. The solution is that of a nearby
//!    well-posed problem; the report marks it [`SolveReport::perturbed`].
//!
//! Every stage tried is recorded in a [`SolveReport`], so callers can
//! grade each grid point (`Exact`/`Refined`/`Perturbed`) instead of
//! aborting a whole sweep.
//!
//! ```
//! use htmpll_num::{CMat, Complex, RobustLu};
//!
//! // Exactly singular: a plain LU refuses, the robust ladder perturbs.
//! let a = CMat::from_rows(2, 2, &[
//!     Complex::from_re(1.0), Complex::from_re(2.0),
//!     Complex::from_re(2.0), Complex::from_re(4.0),
//! ]);
//! let r = RobustLu::factor(&a).unwrap();
//! assert!(r.report().perturbed);
//! let x = r.solve(&[Complex::from_re(1.0), Complex::from_re(2.0)]).unwrap();
//! assert!(x.value.iter().all(|z| z.re.is_finite() && z.im.is_finite()));
//! ```

use crate::band_lu::{BandLu, BandMat};
use crate::complex::Complex;
use crate::lu::{Lu, LuError};
use crate::mat::CMat;
use std::fmt;

/// Condition-estimate gate: beyond this, a partial-pivot solve keeps
/// fewer than ~4 correct digits in double precision and the ladder
/// escalates to complete pivoting.
pub const COND_GATE: f64 = 1e12;

/// Pivot-growth gate for the partial-pivot stage: growth far above 1
/// means elimination amplified entries and the factorization is not to
/// be trusted even if no pivot underflowed.
pub const GROWTH_GATE: f64 = 1e8;

/// One rung of the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStage {
    /// Closed-form structured solve: rank-one Sherman–Morrison or a
    /// diagonal reciprocal, used when the operator's structured
    /// representation admits one.
    Structured,
    /// Banded LU with partial pivoting confined to the band
    /// ([`BandLu`]), O(n·b²) instead of O(n³).
    Banded,
    /// Partial (row) pivoting with one-step iterative refinement.
    RefinedPartial,
    /// Complete (row + column) pivoting.
    FullPivot,
    /// Diagonal Tikhonov perturbation `A + δI`, then complete pivoting.
    Tikhonov,
}

impl fmt::Display for SolveStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveStage::Structured => write!(f, "structured"),
            SolveStage::Banded => write!(f, "banded"),
            SolveStage::RefinedPartial => write!(f, "refined-partial"),
            SolveStage::FullPivot => write!(f, "full-pivot"),
            SolveStage::Tikhonov => write!(f, "tikhonov"),
        }
    }
}

/// What the escalation ladder did for one factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Ladder rungs tried, in order; the last one is the rung that
    /// produced the accepted factorization.
    pub stages_tried: Vec<SolveStage>,
    /// Relative backward residual `‖b − Ax‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` of
    /// the most demanding solve performed through this factorization so
    /// far (0.0 until the first solve).
    pub residual: f64,
    /// Condition estimate `‖A‖₁·‖A⁻¹‖₁` of the accepted factorization
    /// (of the *perturbed* matrix on the Tikhonov rung).
    pub cond_estimate: f64,
    /// True when the accepted factorization is of `A + δI`, not `A`.
    pub perturbed: bool,
    /// True when the most recent solve through this factorization kept
    /// an iterative-refinement correction (it reduced the residual).
    pub refinement_kept: bool,
    /// Pivot growth of the accepted factorization.
    pub pivot_growth: f64,
}

impl SolveReport {
    /// The rung that produced the accepted factorization.
    pub fn accepted_stage(&self) -> SolveStage {
        *self
            .stages_tried
            .last()
            .unwrap_or(&SolveStage::RefinedPartial)
    }

    /// True when the ladder went beyond the first rung.
    pub fn escalated(&self) -> bool {
        self.stages_tried.len() > 1
    }
}

/// An LU factorization `P A Q = L U` with complete (row + column)
/// pivoting — slower than partial pivoting but with bounded element
/// growth, the second rung of the escalation ladder.
#[derive(Debug, Clone)]
pub struct FullPivLu {
    /// Combined L (strict lower, unit diagonal implicit) and U factors.
    lu: CMat,
    /// Row permutation: `row_perm[i]` is the original row in position `i`.
    row_perm: Vec<usize>,
    /// Column permutation: `col_perm[j]` is the original column in
    /// position `j`.
    col_perm: Vec<usize>,
    /// Pivot growth `‖U‖_max/‖A‖_max`.
    growth: f64,
}

impl FullPivLu {
    /// Factors a square matrix with complete pivoting.
    ///
    /// # Errors
    ///
    /// [`LuError::NotSquare`] for rectangular inputs,
    /// [`LuError::NonFinite`] for NaN/∞ entries and
    /// [`LuError::Singular`] when the largest remaining entry underflows
    /// `‖A‖_max · n · ε`.
    pub fn factor(a: &CMat) -> Result<FullPivLu, LuError> {
        if !a.is_square() {
            return Err(LuError::NotSquare);
        }
        if !a.is_finite() {
            return Err(LuError::NonFinite);
        }
        htmpll_obs::counter!("num", "lu.full_pivot.factor").inc();
        let n = a.rows();
        let mut lu = a.clone();
        let mut row_perm: Vec<usize> = (0..n).collect();
        let mut col_perm: Vec<usize> = (0..n).collect();
        let norm_a = lu.norm_max();
        let tiny = norm_a * (n as f64) * f64::EPSILON;

        for k in 0..n {
            // Complete pivoting: largest |entry| in the trailing block.
            let (mut p, mut q) = (k, k);
            let mut best = lu[(k, k)].abs();
            for i in k..n {
                for j in k..n {
                    let v = lu[(i, j)].abs();
                    if v > best {
                        best = v;
                        p = i;
                        q = j;
                    }
                }
            }
            if best <= tiny || !best.is_finite() {
                return Err(LuError::Singular { step: k });
            }
            if p != k {
                lu.swap_rows(p, k);
                row_perm.swap(p, k);
            }
            if q != k {
                lu.swap_cols(q, k);
                col_perm.swap(q, k);
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == Complex::ZERO {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= m * ukj;
                }
            }
        }
        let growth = if norm_a > 0.0 {
            lu.norm_max() / norm_a
        } else {
            1.0
        };
        Ok(FullPivLu {
            lu,
            row_perm,
            col_perm,
            growth,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Pivot growth `‖U‖_max/‖A‖_max` of this factorization.
    pub fn pivot_growth(&self) -> f64 {
        self.growth
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LuError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LuError::DimensionMismatch);
        }
        // Row permutation, forward substitution (unit-diagonal L).
        let mut y: Vec<Complex> = self.row_perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = y[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * *yj;
            }
            y[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = y[i];
            #[allow(clippy::needless_range_loop)] // y is mutated at i below
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc / self.lu[(i, i)];
        }
        // Undo the column permutation: x[col_perm[j]] = z[j].
        let mut x = vec![Complex::ZERO; n];
        for (j, &cj) in self.col_perm.iter().enumerate() {
            x[cj] = y[j];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `B.rows() != dim()`.
    pub fn solve_mat(&self, b: &CMat) -> Result<CMat, LuError> {
        if b.rows() != self.dim() {
            return Err(LuError::DimensionMismatch);
        }
        let mut out = CMat::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for (i, v) in col.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// The inverse matrix `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// matrix of matching dimension).
    pub fn inverse(&self) -> Result<CMat, LuError> {
        self.solve_mat(&CMat::identity(self.dim()))
    }

    /// Condition estimate `‖A‖₁·‖A⁻¹‖₁` against the original matrix.
    pub fn cond_estimate(&self, a: &CMat) -> f64 {
        match self.inverse() {
            Ok(inv) => a.norm_one() * inv.norm_one(),
            Err(_) => f64::INFINITY,
        }
    }
}

/// The accepted factorization inside a [`RobustLu`].
#[derive(Debug, Clone)]
enum Factor {
    Band(BandLu),
    Partial(Lu),
    Full(FullPivLu),
}

impl Factor {
    fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LuError> {
        match self {
            Factor::Band(lu) => lu.solve(b),
            Factor::Partial(lu) => lu.solve(b),
            Factor::Full(lu) => lu.solve(b),
        }
    }

    fn dim(&self) -> usize {
        match self {
            Factor::Band(lu) => lu.dim(),
            Factor::Partial(lu) => lu.dim(),
            Factor::Full(lu) => lu.dim(),
        }
    }
}

/// The operator a [`RobustLu`] factored — dense, or band-stored so the
/// banded rung never materializes the O(n²) matrix it avoided.
#[derive(Debug, Clone)]
enum Operator {
    Dense(CMat),
    Band(BandMat),
}

impl Operator {
    fn norm_max(&self) -> f64 {
        match self {
            Operator::Dense(m) => m.norm_max(),
            Operator::Band(m) => m.norm_max(),
        }
    }

    fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        match self {
            Operator::Dense(m) => m.mul_vec(x),
            Operator::Band(m) => m.mul_vec(x),
        }
    }

    fn to_dense(&self) -> CMat {
        match self {
            Operator::Dense(m) => m.clone(),
            Operator::Band(m) => m.to_dense(),
        }
    }
}

/// A solution produced through a [`RobustLu`], annotated with the
/// refinement outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Refined<T> {
    /// The solution itself.
    pub value: T,
    /// Relative backward residual of the returned solution.
    pub residual: f64,
    /// True when the iterative-refinement correction was kept (it
    /// reduced the residual); false when the raw solve was already at
    /// least as good.
    pub refined: bool,
}

/// Escalating dense factorization of `A`: refined partial pivot →
/// complete pivoting → Tikhonov-perturbed complete pivoting. See the
/// [module docs](self) for the ladder; [`RobustLu::report`] records
/// which rungs ran.
#[derive(Debug, Clone)]
pub struct RobustLu {
    /// The original matrix — kept for residual computation and
    /// iterative refinement (refinement against `A` also pulls a
    /// Tikhonov-perturbed solve back toward the unperturbed problem).
    a: Operator,
    factor: Factor,
    report: SolveReport,
}

/// Content hash of a matrix's first row (up to 8 entries) — the fault
/// key for `lu.pivot_fail`, chosen so injection decisions depend on
/// *what* is being factored, never on call order or thread schedule.
fn content_key(a: &CMat) -> u64 {
    let n = a.rows().min(8);
    let mut bytes = Vec::with_capacity(n * 16);
    for j in 0..n {
        let v = a[(0, j)];
        bytes.extend_from_slice(&v.re.to_bits().to_le_bytes());
        bytes.extend_from_slice(&v.im.to_bits().to_le_bytes());
    }
    htmpll_fault::fnv64(&bytes)
}

impl RobustLu {
    /// Factors `A`, escalating as far as needed.
    ///
    /// # Errors
    ///
    /// [`LuError::NotSquare`] for rectangular inputs and
    /// [`LuError::NonFinite`] for NaN/∞ entries. A merely singular or
    /// ill-conditioned finite matrix never errors — the Tikhonov rung
    /// always produces *some* factorization, flagged
    /// [`SolveReport::perturbed`].
    pub fn factor(a: &CMat) -> Result<RobustLu, LuError> {
        if !a.is_square() {
            return Err(LuError::NotSquare);
        }
        if !a.is_finite() {
            return Err(LuError::NonFinite);
        }
        htmpll_obs::counter!("num", "robust.factor").inc();
        let _span =
            htmpll_obs::span_labeled_at("num", "robust_factor", htmpll_obs::Level::Debug, || {
                format!("n={}", a.rows())
            });
        let mut stages = vec![SolveStage::RefinedPartial];

        // Fault site `lu.pivot_fail`: pretend rung 1's gates failed so
        // the ladder escalates to complete pivoting (a `Refined`
        // verdict, never a wrong value). Keyed by matrix content, not
        // call order, so a given matrix faults identically at every
        // thread count.
        let pivot_fault =
            htmpll_fault::enabled() && htmpll_fault::fires("lu.pivot_fail", content_key(a));
        if pivot_fault {
            htmpll_obs::counter!("num", "fault.pivot_fail").inc();
        }

        // Rung 1: refined partial pivot, gated on growth + condition.
        if !pivot_fault {
            if let Ok(lu) = Lu::factor(a) {
                let growth = lu.pivot_growth();
                let cond = lu.cond_estimate(a);
                if growth <= GROWTH_GATE && cond.is_finite() && cond <= COND_GATE {
                    return Ok(RobustLu {
                        a: Operator::Dense(a.clone()),
                        factor: Factor::Partial(lu),
                        report: SolveReport {
                            stages_tried: stages,
                            residual: 0.0,
                            cond_estimate: cond,
                            perturbed: false,
                            refinement_kept: false,
                            pivot_growth: growth,
                        },
                    });
                }
            }
        }

        // Rung 2: complete pivoting.
        htmpll_obs::counter!("num", "robust.escalate_full").inc();
        htmpll_obs::instant("num", || {
            format!("ladder{{stage=full-pivot,n={}}}", a.rows())
        });
        stages.push(SolveStage::FullPivot);
        if let Ok(lu) = FullPivLu::factor(a) {
            let cond = lu.cond_estimate(a);
            if cond.is_finite() && cond <= COND_GATE {
                let growth = lu.pivot_growth();
                return Ok(RobustLu {
                    a: Operator::Dense(a.clone()),
                    factor: Factor::Full(lu),
                    report: SolveReport {
                        stages_tried: stages,
                        residual: 0.0,
                        cond_estimate: cond,
                        perturbed: false,
                        refinement_kept: false,
                        pivot_growth: growth,
                    },
                });
            }
        }

        // Rung 3: Tikhonov. δ scales with ‖A‖_max (absolute fallback for
        // the zero matrix) so the shift is tiny relative to the data but
        // large relative to roundoff.
        htmpll_obs::counter!("num", "robust.escalate_tikhonov").inc();
        htmpll_obs::instant("num", || format!("ladder{{stage=tikhonov,n={}}}", a.rows()));
        stages.push(SolveStage::Tikhonov);
        let n = a.rows();
        let scale = if a.norm_max() > 0.0 {
            a.norm_max()
        } else {
            1.0
        };
        let delta = scale * (n.max(1) as f64) * f64::EPSILON.sqrt();
        let mut perturbed = a.clone();
        for i in 0..n {
            perturbed[(i, i)] += Complex::from_re(delta);
        }
        let lu = FullPivLu::factor(&perturbed)?;
        let cond = lu.cond_estimate(&perturbed);
        let growth = lu.pivot_growth();
        Ok(RobustLu {
            a: Operator::Dense(a.clone()),
            factor: Factor::Full(lu),
            report: SolveReport {
                stages_tried: stages,
                residual: 0.0,
                cond_estimate: cond,
                perturbed: true,
                refinement_kept: false,
                pivot_growth: growth,
            },
        })
    }

    /// Factors a band-stored matrix through the structured rung of the
    /// ladder: a banded LU ([`BandLu`], O(n·b²)) gated on pivot growth
    /// and a probe condition estimate. Structure-breaking pivots — or
    /// ill-conditioning the in-band pivoting cannot contain — fall back
    /// to the dense escalation ladder on the densified matrix, keeping
    /// [`SolveStage::Banded`] as the first `stages_tried` entry so
    /// callers grade those points as escalated rather than exact.
    ///
    /// # Errors
    ///
    /// [`LuError::NonFinite`] for NaN/∞ entries; a merely singular or
    /// ill-conditioned finite matrix never errors (the dense ladder's
    /// Tikhonov rung catches it).
    pub fn factor_banded(a: &BandMat) -> Result<RobustLu, LuError> {
        if !a.is_finite() {
            return Err(LuError::NonFinite);
        }
        htmpll_obs::counter!("num", "robust.factor_banded").inc();
        let _span = htmpll_obs::span_labeled_at(
            "num",
            "robust_factor_banded",
            htmpll_obs::Level::Debug,
            || format!("n={},b={}", a.dim(), a.bandwidth()),
        );
        if let Ok(lu) = BandLu::factor(a) {
            let growth = lu.pivot_growth();
            let cond = lu.cond_probe(a);
            if growth <= GROWTH_GATE && cond.is_finite() && cond <= COND_GATE {
                return Ok(RobustLu {
                    a: Operator::Band(a.clone()),
                    factor: Factor::Band(lu),
                    report: SolveReport {
                        stages_tried: vec![SolveStage::Banded],
                        residual: 0.0,
                        cond_estimate: cond,
                        perturbed: false,
                        refinement_kept: false,
                        pivot_growth: growth,
                    },
                });
            }
        }
        htmpll_obs::counter!("num", "robust.banded_fallback").inc();
        htmpll_obs::instant("num", || {
            format!("ladder{{stage=banded-fallback,n={}}}", a.dim())
        });
        let mut robust = RobustLu::factor(&a.to_dense())?;
        robust.report.stages_tried.insert(0, SolveStage::Banded);
        Ok(robust)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factor.dim()
    }

    /// What the ladder did (stages, condition estimate, perturbation).
    pub fn report(&self) -> &SolveReport {
        &self.report
    }

    /// A dense copy of the original (unperturbed) matrix. Band-stored
    /// operators are densified on demand — the factorization itself
    /// never materializes them.
    pub fn matrix(&self) -> CMat {
        self.a.to_dense()
    }

    /// Relative backward residual `‖b − Ax‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)`
    /// of a candidate solution against the **original** matrix.
    fn rel_residual(&self, b: &[Complex], x: &[Complex], r: &[Complex]) -> f64 {
        let rn = r.iter().map(|z| z.abs()).fold(0.0, f64::max);
        let xn = x.iter().map(|z| z.abs()).fold(0.0, f64::max);
        let bn = b.iter().map(|z| z.abs()).fold(0.0, f64::max);
        let denom = self.a.norm_max() * xn + bn;
        if denom > 0.0 {
            rn / denom
        } else {
            rn
        }
    }

    fn residual_vec(&self, b: &[Complex], x: &[Complex]) -> Vec<Complex> {
        let ax = self.a.mul_vec(x);
        b.iter().zip(&ax).map(|(bi, axi)| *bi - *axi).collect()
    }

    /// Solves `A x = b` with one step of iterative refinement against
    /// the original matrix; the correction is kept only when it reduces
    /// the residual.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] for a wrong-length `b` and
    /// [`LuError::NonFinite`] when `b` contains NaN/∞.
    pub fn solve(&self, b: &[Complex]) -> Result<Refined<Vec<Complex>>, LuError> {
        if b.len() != self.dim() {
            return Err(LuError::DimensionMismatch);
        }
        if !b.iter().all(|z| z.re.is_finite() && z.im.is_finite()) {
            return Err(LuError::NonFinite);
        }
        let x0 = self.factor.solve(b)?;
        let r0 = self.residual_vec(b, &x0);
        let res0 = self.rel_residual(b, &x0, &r0);

        // One refinement step: solve A d = r, candidate x1 = x0 + d —
        // but only when the raw solve actually lost digits; a residual
        // already at working precision has nothing left to recover and
        // should grade `Exact`.
        let refined = if res0 <= 64.0 * f64::EPSILON {
            None
        } else {
            match self.factor.solve(&r0) {
                Ok(d) => {
                    let x1: Vec<Complex> = x0.iter().zip(&d).map(|(x, d)| *x + *d).collect();
                    let r1 = self.residual_vec(b, &x1);
                    let res1 = self.rel_residual(b, &x1, &r1);
                    if res1.is_finite() && res1 < res0 {
                        htmpll_obs::counter!("num", "robust.refine_kept").inc();
                        Some((x1, res1))
                    } else {
                        None
                    }
                }
                Err(_) => None,
            }
        };
        let (x, residual, kept) = match refined {
            Some((x1, res1)) => (x1, res1, true),
            None => (x0, res0, false),
        };
        if !x.iter().all(|z| z.re.is_finite() && z.im.is_finite()) {
            return Err(LuError::NonFinite);
        }
        Ok(Refined {
            value: x,
            residual,
            refined: kept,
        })
    }

    /// Solves `A X = B` column by column through [`RobustLu::solve`];
    /// the reported residual is the worst column residual and `refined`
    /// is set when any column kept its correction.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `B.rows() != dim()`;
    /// [`LuError::NonFinite`] when `B` contains NaN/∞.
    pub fn solve_mat(&self, b: &CMat) -> Result<Refined<CMat>, LuError> {
        if b.rows() != self.dim() {
            return Err(LuError::DimensionMismatch);
        }
        let mut out = CMat::zeros(b.rows(), b.cols());
        let mut worst = 0.0f64;
        let mut any_refined = false;
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            worst = worst.max(col.residual);
            any_refined |= col.refined;
            for (i, v) in col.value.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(Refined {
            value: out,
            residual: worst,
            refined: any_refined,
        })
    }

    /// [`RobustLu::solve`], additionally returning a completed
    /// [`SolveReport`] with the residual of this solve filled in.
    ///
    /// # Errors
    ///
    /// See [`RobustLu::solve`].
    pub fn solve_reported(&self, b: &[Complex]) -> Result<(Vec<Complex>, SolveReport), LuError> {
        let sol = self.solve(b)?;
        let mut report = self.report.clone();
        report.residual = sol.residual;
        report.refinement_kept = sol.refined;
        Ok((sol.value, report))
    }
}

/// Convenience one-shot robust solve of `A x = b`, returning the
/// solution together with the full report.
///
/// # Errors
///
/// See [`RobustLu::factor`] and [`RobustLu::solve`].
pub fn solve_robust(a: &CMat, b: &[Complex]) -> Result<(Vec<Complex>, SolveReport), LuError> {
    RobustLu::factor(a)?.solve_reported(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn random_like(n: usize, seed: u64) -> CMat {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64) / (u32::MAX as f64) - 0.5
        };
        CMat::from_fn(n, n, |_, _| c(next(), next()))
    }

    #[test]
    fn well_conditioned_stays_on_first_rung() {
        let a = random_like(8, 3);
        let r = RobustLu::factor(&a).unwrap();
        assert_eq!(r.report().stages_tried, vec![SolveStage::RefinedPartial]);
        assert!(!r.report().perturbed);
        assert!(!r.report().escalated());
        let b: Vec<Complex> = (0..8).map(|i| c(i as f64, -1.0)).collect();
        let sol = r.solve(&b).unwrap();
        // Residual at working precision.
        assert!(sol.residual < 1e-12, "residual {}", sol.residual);
        // Verify against the plain solver.
        let plain = crate::lu::solve(&a, &b).unwrap();
        for (x, y) in sol.value.iter().zip(&plain) {
            assert!((*x - *y).abs() < 1e-10);
        }
    }

    #[test]
    fn pivot_fail_injection_escalates_to_full_pivot() {
        let a = random_like(8, 3);
        htmpll_fault::install(
            htmpll_fault::FaultPlan::parse("seed=1;lu.pivot_fail=always").unwrap(),
        );
        let faulted = {
            let _scope = htmpll_fault::scope_guard(Some(7));
            RobustLu::factor(&a).unwrap()
        };
        htmpll_fault::clear();
        // Forced past rung 1: the ladder escalated but the result is
        // still unperturbed (Refined, not Perturbed — a correct value).
        assert!(faulted.report().escalated(), "{:?}", faulted.report());
        assert!(!faulted.report().perturbed);
        // Without an ambient scope the same plan never fires, so code
        // outside explicit fault scopes is immune.
        htmpll_fault::install(
            htmpll_fault::FaultPlan::parse("seed=1;lu.pivot_fail=always").unwrap(),
        );
        let unscoped = RobustLu::factor(&a).unwrap();
        htmpll_fault::clear();
        assert!(!unscoped.report().escalated());
    }

    #[test]
    fn full_pivot_matches_partial_on_regular_matrix() {
        let a = random_like(10, 17);
        let b: Vec<Complex> = (0..10).map(|i| c(0.3 * i as f64, 1.0)).collect();
        let full = FullPivLu::factor(&a).unwrap().solve(&b).unwrap();
        let partial = crate::lu::solve(&a, &b).unwrap();
        for (x, y) in full.iter().zip(&partial) {
            assert!((*x - *y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn full_pivot_inverse_roundtrip() {
        let a = random_like(9, 23);
        let inv = FullPivLu::factor(&a).unwrap().inverse().unwrap();
        assert!((&a * &inv).max_diff(&CMat::identity(9)) < 1e-10);
    }

    #[test]
    fn singular_matrix_perturbs_and_solves() {
        // Rank-one 3×3: plain LU errors, robust ladder ends on Tikhonov.
        let u = [c(1.0, 0.0), c(2.0, 1.0), c(-0.5, 0.3)];
        let a = CMat::outer(&u, &u);
        assert!(Lu::factor(&a).is_err());
        let r = RobustLu::factor(&a).unwrap();
        assert!(r.report().perturbed);
        assert_eq!(r.report().accepted_stage(), SolveStage::Tikhonov);
        assert!(r
            .report()
            .stages_tried
            .contains(&SolveStage::RefinedPartial));
        assert!(r.report().stages_tried.contains(&SolveStage::FullPivot));
        // Consistent rhs (in the range of A): the perturbed solve must
        // produce a finite solution with small residual.
        let b = a.mul_vec(&[Complex::ONE, Complex::ONE, Complex::ONE]);
        let (x, report) = r.solve_reported(&b).unwrap();
        assert!(x.iter().all(|z| z.re.is_finite() && z.im.is_finite()));
        assert!(report.residual < 1e-6, "residual {}", report.residual);
    }

    #[test]
    fn near_singular_escalates_but_stays_unperturbed_or_perturbed() {
        // ε-perturbed rank-one matrix: cond ≈ 1/ε blows past the gate.
        let u = [c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)];
        let mut a = CMat::outer(&u, &u);
        for i in 0..3 {
            a[(i, i)] += Complex::from_re(1e-14);
        }
        let r = RobustLu::factor(&a).unwrap();
        assert!(r.report().escalated());
        let b = [Complex::ONE, Complex::ONE, Complex::ONE];
        let sol = r.solve(&b).unwrap();
        assert!(sol
            .value
            .iter()
            .all(|z| z.re.is_finite() && z.im.is_finite()));
    }

    #[test]
    fn nan_matrix_rejected_not_panicking() {
        let mut a = CMat::identity(3);
        a[(1, 1)] = c(f64::NAN, 0.0);
        assert_eq!(RobustLu::factor(&a).unwrap_err(), LuError::NonFinite);
        assert_eq!(FullPivLu::factor(&a).unwrap_err(), LuError::NonFinite);
    }

    #[test]
    fn infinite_rhs_rejected() {
        let a = CMat::identity(2);
        let r = RobustLu::factor(&a).unwrap();
        let b = [c(1.0, 0.0), c(f64::INFINITY, 0.0)];
        assert_eq!(r.solve(&b).unwrap_err(), LuError::NonFinite);
    }

    #[test]
    fn rectangular_rejected() {
        let a = CMat::zeros(2, 3);
        assert_eq!(RobustLu::factor(&a).unwrap_err(), LuError::NotSquare);
        assert_eq!(FullPivLu::factor(&a).unwrap_err(), LuError::NotSquare);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let r = RobustLu::factor(&CMat::identity(3)).unwrap();
        assert_eq!(
            r.solve(&[Complex::ONE; 2]).unwrap_err(),
            LuError::DimensionMismatch
        );
        assert_eq!(
            r.solve_mat(&CMat::zeros(2, 2)).unwrap_err(),
            LuError::DimensionMismatch
        );
        let f = FullPivLu::factor(&CMat::identity(3)).unwrap();
        assert_eq!(
            f.solve(&[Complex::ONE; 2]).unwrap_err(),
            LuError::DimensionMismatch
        );
    }

    #[test]
    fn zero_matrix_perturbs_to_identity_scale() {
        let a = CMat::zeros(4, 4);
        let r = RobustLu::factor(&a).unwrap();
        assert!(r.report().perturbed);
        let sol = r.solve(&[Complex::ONE; 4]).unwrap();
        assert!(sol
            .value
            .iter()
            .all(|z| z.re.is_finite() && z.im.is_finite()));
    }

    #[test]
    fn refinement_reduces_residual_on_ill_conditioned_system() {
        // Hilbert-like matrix: notoriously ill conditioned; refinement
        // must never make the residual worse.
        let n = 8;
        let a = CMat::from_fn(n, n, |i, j| c(1.0 / ((i + j + 1) as f64), 0.0));
        let r = RobustLu::factor(&a).unwrap();
        let b: Vec<Complex> = (0..n).map(|i| c(1.0 + i as f64, 0.0)).collect();
        let sol = r.solve(&b).unwrap();
        // Compare with the raw (unrefined) partial-pivot solve residual.
        if let Ok(lu) = Lu::factor(&a) {
            let raw = lu.solve(&b).unwrap();
            let raw_r = r.residual_vec(&b, &raw);
            let raw_res = r.rel_residual(&b, &raw, &raw_r);
            assert!(
                sol.residual <= raw_res * (1.0 + 1e-12),
                "refined {} vs raw {}",
                sol.residual,
                raw_res
            );
        }
    }

    #[test]
    fn solve_mat_aggregates_worst_residual() {
        let a = random_like(6, 99);
        let r = RobustLu::factor(&a).unwrap();
        let b = random_like(6, 100);
        let sol = r.solve_mat(&b).unwrap();
        assert!(sol.residual < 1e-10);
        assert!((&a * &sol.value).max_diff(&b) < 1e-9);
    }

    #[test]
    fn one_shot_helper_reports() {
        let a = random_like(5, 7);
        let b: Vec<Complex> = (0..5).map(|i| c(i as f64, 0.5)).collect();
        let (x, report) = solve_robust(&a, &b).unwrap();
        assert_eq!(x.len(), 5);
        assert!(report.cond_estimate >= 1.0);
        assert!(!report.perturbed);
    }

    #[test]
    fn stage_display() {
        assert_eq!(SolveStage::Structured.to_string(), "structured");
        assert_eq!(SolveStage::Banded.to_string(), "banded");
        assert_eq!(SolveStage::RefinedPartial.to_string(), "refined-partial");
        assert_eq!(SolveStage::FullPivot.to_string(), "full-pivot");
        assert_eq!(SolveStage::Tikhonov.to_string(), "tikhonov");
    }

    #[test]
    fn banded_rung_accepts_well_conditioned_band() {
        let a = BandMat::from_fn(9, 1, |i, j| {
            if i == j {
                Complex::from_re(4.0)
            } else {
                Complex::from_re(-1.0)
            }
        });
        let r = RobustLu::factor_banded(&a).unwrap();
        assert_eq!(r.report().stages_tried, vec![SolveStage::Banded]);
        assert!(!r.report().escalated());
        let b = vec![Complex::ONE; 9];
        let sol = r.solve(&b).unwrap();
        let res = a.mul_vec(&sol.value);
        for (ri, bi) in res.iter().zip(&b) {
            assert!((*ri - *bi).abs() < 1e-12);
        }
    }

    #[test]
    fn banded_rung_falls_back_on_singular_band() {
        // The zero band is singular: the banded LU refuses, the dense
        // ladder climbs to Tikhonov, and the report keeps the Banded
        // rung as evidence of the attempted fast path.
        let a = BandMat::zeros(5, 1);
        let r = RobustLu::factor_banded(&a).unwrap();
        assert_eq!(r.report().stages_tried[0], SolveStage::Banded);
        assert_eq!(r.report().accepted_stage(), SolveStage::Tikhonov);
        assert!(r.report().perturbed);
        assert!(r.report().escalated());
    }

    #[test]
    fn banded_rung_falls_back_on_hidden_ill_conditioning() {
        // Pivot growth 1 but an inverse growing like 40⁸ along the
        // superdiagonal chain: only the probe condition estimate can
        // reject this one. (The chain is kept short enough that the
        // dense ladder's Tikhonov rung still factors the matrix.)
        let a = BandMat::from_fn(12, 1, |i, j| {
            if i == j {
                Complex::ONE
            } else if j == i + 1 {
                Complex::from_re(if i < 8 { 40.0 } else { 0.5 })
            } else {
                Complex::ZERO
            }
        });
        let r = RobustLu::factor_banded(&a).unwrap();
        assert_eq!(r.report().stages_tried[0], SolveStage::Banded);
        assert!(r.report().escalated());
    }

    #[test]
    fn banded_rung_rejects_non_finite() {
        let mut a = BandMat::zeros(3, 1);
        a.set(1, 1, Complex::new(f64::INFINITY, 0.0));
        assert_eq!(RobustLu::factor_banded(&a).unwrap_err(), LuError::NonFinite);
    }
}
