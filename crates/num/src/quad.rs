//! Adaptive quadrature.
//!
//! Phase-noise budgeting integrates PSDs over wide frequency decades;
//! [`integrate`] provides adaptive Simpson quadrature with a recursion
//! guard, and [`integrate_log`] changes variables to integrate smoothly
//! over many decades.
//!
//! ```
//! use htmpll_num::quad::integrate;
//!
//! let v = integrate(|x| x.sin(), 0.0, std::f64::consts::PI, 1e-12);
//! assert!((v - 2.0).abs() < 1e-10);
//! ```

/// Adaptive Simpson quadrature of `f` over `[a, b]` to absolute
/// tolerance `tol`.
///
/// Recursion depth is capped (60 levels); intervals that still disagree
/// at the cap contribute their best estimate, so the result degrades
/// gracefully on non-smooth integrands instead of overflowing the stack.
pub fn integrate<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    adaptive(&mut f, a, b, fa, fm, fb, whole, tol, 60)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: FnMut(f64) -> f64>(
    f: &mut F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation of the two half-interval estimates.
        left + right + delta / 15.0
    } else {
        adaptive(f, a, m, fa, flm, fm, left, tol * 0.5, depth - 1)
            + adaptive(f, m, b, fm, frm, fb, right, tol * 0.5, depth - 1)
    }
}

/// Integrates `f` over `[a, b]` with `0 < a < b` using the substitution
/// `x = e^u`, which equidistributes effort across decades — the right
/// tool for spectral-density integrals like integrated phase noise.
///
/// # Panics
///
/// Panics when `a <= 0` or `b <= a`.
pub fn integrate_log<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(a > 0.0 && b > a, "integrate_log needs 0 < a < b");
    integrate(
        |u| {
            let x = u.exp();
            f(x) * x
        },
        a.ln(),
        b.ln(),
        tol,
    )
}

/// Composite trapezoid rule over explicit samples `(x_k, y_k)`.
///
/// Useful when the integrand is only available on a measurement grid.
///
/// # Panics
///
/// Panics when `x` and `y` differ in length.
pub fn trapezoid(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "trapezoid needs matching sample arrays");
    let mut acc = 0.0;
    for k in 1..x.len() {
        acc += 0.5 * (y[k] + y[k - 1]) * (x[k] - x[k - 1]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn polynomial_exact() {
        // Simpson is exact for cubics.
        let v = integrate(|x| x * x * x - 2.0 * x + 1.0, -1.0, 2.0, 1e-14);
        let exact = |x: f64| x.powi(4) / 4.0 - x * x + x;
        assert!((v - (exact(2.0) - exact(-1.0))).abs() < 1e-12);
    }

    #[test]
    fn oscillatory() {
        let v = integrate(|x| (10.0 * x).cos(), 0.0, PI, 1e-12);
        assert!((v - (10.0 * PI).sin() / 10.0).abs() < 1e-10);
    }

    #[test]
    fn empty_interval() {
        assert_eq!(integrate(|x| x, 3.0, 3.0, 1e-12), 0.0);
    }

    #[test]
    fn reversed_interval_is_negative() {
        let fwd = integrate(|x| x * x, 0.0, 1.0, 1e-12);
        let bwd = integrate(|x| x * x, 1.0, 0.0, 1e-12);
        assert!((fwd + bwd).abs() < 1e-12);
    }

    #[test]
    fn log_substitution_handles_decades() {
        // ∫ 1/x dx from 1e-3 to 1e3 = ln(1e6).
        let v = integrate_log(|x| 1.0 / x, 1e-3, 1e3, 1e-12);
        assert!((v - (1e6f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn log_substitution_power_law() {
        // ∫ x^{-2} dx from 1 to 100 = 1 − 1/100.
        let v = integrate_log(|x| x.powi(-2), 1.0, 100.0, 1e-13);
        assert!((v - 0.99).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "needs 0 < a < b")]
    fn log_substitution_rejects_nonpositive() {
        let _ = integrate_log(|x| x, -1.0, 1.0, 1e-12);
    }

    #[test]
    fn trapezoid_linear_exact() {
        let x = [0.0, 0.5, 2.0];
        let y = [0.0, 1.0, 4.0]; // y = 2x
        assert!((trapezoid(&x, &y) - 4.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "matching sample arrays")]
    fn trapezoid_length_checked() {
        let _ = trapezoid(&[0.0, 1.0], &[0.0]);
    }

    #[test]
    fn kink_integrand_converges() {
        // |x| has a kink at 0; adaptive refinement must still converge.
        let v = integrate(f64::abs, -1.0, 1.0, 1e-10);
        assert!((v - 1.0).abs() < 1e-8);
    }
}
