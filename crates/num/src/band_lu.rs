//! Banded complex matrices and an O(n·b²) banded LU factorization.
//!
//! Every HTM the paper builds is structured: LTI blocks are diagonal
//! (eq. 13), periodic multipliers are Toeplitz in the Fourier
//! coefficients (eq. 16) and the VCO is a banded Toeplitz scaled per
//! row by `1/(s+jnω₀)` (eq. 25). The closed-loop operator `I + G̃(s)`
//! built from those blocks is *banded* with half-bandwidth
//! `b = max ISF/filter harmonic`, so factoring it densely at O(n³) per
//! grid point throws the structure away. [`BandMat`] stores only the
//! band; [`BandLu`] factors it with partial pivoting confined to the
//! band in O(n·b²) and solves in O(n·b).
//!
//! Row pivoting widens the upper triangle: a banded matrix with `b`
//! sub- and super-diagonals factors into a `U` with up to `2b`
//! super-diagonals (the classic LAPACK `gbtrf` fill-in), so the
//! factored storage holds offsets `j−i ∈ [−b, 2b]` per row.
//!
//! Storage is structure-of-arrays ([`SoaVec`]): split re/im planes in
//! 64-byte-aligned buffers. [`BandMat`] keeps its band *diagonal-major*
//! so the mat-vec is a sum of contiguous elementwise passes, and
//! [`BandLu`] keeps its factored rows contiguous so the elimination
//! inner kernel is a contiguous complex AXPY — both feed the
//! runtime-dispatched SIMD kernels in [`crate::simd`], which are
//! bitwise identical to the scalar path at every level.
//!
//! ```
//! use htmpll_num::{BandMat, BandLu, Complex};
//!
//! // Tridiagonal: 2 on the diagonal, -1 off it.
//! let a = BandMat::from_fn(5, 1, |i, j| {
//!     if i == j { Complex::from_re(2.0) } else { Complex::from_re(-1.0) }
//! });
//! let lu = BandLu::factor(&a).expect("nonsingular");
//! let b = vec![Complex::ONE; 5];
//! let x = lu.solve(&b).unwrap();
//! let r = a.mul_vec(&x);
//! assert!(r.iter().zip(&b).all(|(ri, bi)| (*ri - *bi).abs() < 1e-12));
//! ```

use crate::complex::Complex;
use crate::lu::LuError;
use crate::mat::CMat;
use crate::simd::{self, SoaVec};

/// Right-hand sides solved per lane block in [`BandLu::solve_mat`].
const SOLVE_LANES: usize = 8;

/// A square complex matrix with entries confined to `|i − j| ≤ b`.
///
/// Storage is diagonal-major in split re/im planes: diagonal
/// `t = j − i` occupies plane slots `(t + b)·n + i` for the valid rows,
/// so entry `(i, j)` lives at `(j − i + b)·n + i` and every diagonal is
/// a contiguous run — the layout the SIMD mat-vec wants. Slots outside
/// the matrix (the clipped diagonal ends) stay zero. Reads outside the
/// band return zero; writes outside the band are rejected by a debug
/// assertion and ignored in release builds (the entry is structurally
/// zero).
#[derive(Debug, Clone, PartialEq)]
pub struct BandMat {
    n: usize,
    b: usize,
    diag: SoaVec,
}

impl BandMat {
    /// An `n × n` banded matrix of zeros with half-bandwidth `b`
    /// (clamped to `n−1`, the widest meaningful band).
    pub fn zeros(n: usize, b: usize) -> BandMat {
        let b = b.min(n.saturating_sub(1));
        BandMat {
            n,
            b,
            diag: SoaVec::zeros(n * (2 * b + 1)),
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        (j + self.b - i) * self.n + i
    }

    /// Builds from a closure evaluated only on the band.
    pub fn from_fn(n: usize, b: usize, mut f: impl FnMut(usize, usize) -> Complex) -> BandMat {
        let mut m = BandMat::zeros(n, b);
        let b = m.b;
        for i in 0..n {
            let lo = i.saturating_sub(b);
            let hi = (i + b).min(n.saturating_sub(1));
            for j in lo..=hi {
                let idx = m.idx(i, j);
                m.diag.set(idx, f(i, j));
            }
        }
        m
    }

    /// Extracts the band of a dense square matrix; entries outside
    /// `|i − j| ≤ b` are dropped.
    pub fn from_dense(a: &CMat, b: usize) -> BandMat {
        BandMat::from_fn(a.rows(), b, |i, j| a[(i, j)])
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Half-bandwidth `b`.
    pub fn bandwidth(&self) -> usize {
        self.b
    }

    /// Entry `(i, j)`, zero outside the band.
    pub fn get(&self, i: usize, j: usize) -> Complex {
        if i < self.n && j < self.n && i.abs_diff(j) <= self.b {
            self.diag.get(self.idx(i, j))
        } else {
            Complex::ZERO
        }
    }

    /// Sets entry `(i, j)`. Writes outside the band are ignored (the
    /// entry is structurally zero); a debug assertion catches them.
    pub fn set(&mut self, i: usize, j: usize, v: Complex) {
        debug_assert!(
            i < self.n && j < self.n && i.abs_diff(j) <= self.b,
            "BandMat::set outside band: ({i}, {j}) with n={}, b={}",
            self.n,
            self.b
        );
        if i < self.n && j < self.n && i.abs_diff(j) <= self.b {
            let idx = self.idx(i, j);
            self.diag.set(idx, v);
        }
    }

    /// Densifies into a [`CMat`].
    pub fn to_dense(&self) -> CMat {
        CMat::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// Banded matrix–vector product `A x` in O(n·b).
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.n];
        self.mul_vec_into(x, &mut out);
        out
    }

    /// [`BandMat::mul_vec`] into a caller-provided buffer (resized to
    /// `n`), for allocation-free sweep loops.
    ///
    /// One contiguous SIMD pass per diagonal, taken in ascending
    /// `j − i` order so each output row accumulates its terms in
    /// exactly the `j`-ascending order of a row scan — the result is
    /// bitwise identical to the historical per-row walk (and no longer
    /// O(n²) for narrow bands: the old row iterator advanced through
    /// every skipped prefix element).
    pub fn mul_vec_into(&self, x: &[Complex], out: &mut Vec<Complex>) {
        assert_eq!(x.len(), self.n, "BandMat::mul_vec dimension mismatch");
        out.clear();
        out.resize(self.n, Complex::ZERO);
        let (n, b) = (self.n, self.b);
        if n == 0 {
            return;
        }
        for p in 0..=2 * b {
            // Diagonal t = p − b holds entries (i, i + t); valid rows
            // are i ∈ [max(0, −t), n−1 − max(0, t)].
            let i0 = b.saturating_sub(p);
            let i1 = n - 1 - p.saturating_sub(b);
            if i1 < i0 {
                continue;
            }
            let len = i1 - i0 + 1;
            let d_re = &self.diag.re()[p * n + i0..p * n + i0 + len];
            let d_im = &self.diag.im()[p * n + i0..p * n + i0 + len];
            let j0 = i0 + p - b; // column of the first valid row
            simd::band_diag_madd(&mut out[i0..i0 + len], d_re, d_im, &x[j0..j0 + len]);
        }
    }

    /// Largest entry magnitude `‖A‖_max`.
    pub fn norm_max(&self) -> f64 {
        // Only on-band slots are ever nonzero, so scanning the raw
        // planes (which include the clipped diagonal ends) is safe.
        self.diag
            .re()
            .iter()
            .zip(self.diag.im())
            .map(|(re, im)| re.hypot(*im))
            .fold(0.0, f64::max)
    }

    /// Maximum absolute column sum `‖A‖₁`.
    pub fn norm_one(&self) -> f64 {
        let mut sums = vec![0.0f64; self.n];
        // Row-major accumulation order, kept from the row-major era so
        // the sums round identically.
        for i in 0..self.n {
            let lo = i.saturating_sub(self.b);
            let hi = (i + self.b).min(self.n.saturating_sub(1));
            #[allow(clippy::needless_range_loop)] // j indexes both sums and the band row
            for j in lo..=hi {
                sums[j] += self.diag.get(self.idx(i, j)).abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }

    /// True when every entry is finite (no NaN/∞).
    pub fn is_finite(&self) -> bool {
        self.diag
            .re()
            .iter()
            .zip(self.diag.im())
            .all(|(re, im)| re.is_finite() && im.is_finite())
    }
}

/// A banded LU factorization `P A = L U` with partial pivoting confined
/// to the band: O(n·b²) to factor, O(n·b) per solve.
///
/// Pivot rows are chosen among the `b+1` candidates the band admits at
/// each step, so elimination never leaves the band; the price is fill-in
/// widening `U` to `2b` super-diagonals, which the factored storage
/// carries explicitly.
#[derive(Debug, Clone)]
pub struct BandLu {
    n: usize,
    b: usize,
    /// Factored storage in split re/im planes, row-major with width
    /// `3b+1`: row `i` holds offsets `j − i ∈ [−b, 2b]` contiguously.
    /// Offsets `< 0` are the L multipliers, `≥ 0` the U entries.
    lu: SoaVec,
    /// `piv[k]` is the row swapped into position `k` at step `k`.
    piv: Vec<usize>,
    growth: f64,
}

impl BandLu {
    /// Factors a banded matrix with partial pivoting inside the band.
    ///
    /// The elimination inner kernel — `row_i −= m · row_k` over the
    /// active column window — runs on contiguous row slices through the
    /// dispatched [`crate::simd`] AXPY, bitwise identical to the scalar
    /// path.
    ///
    /// # Errors
    ///
    /// [`LuError::NonFinite`] for NaN/∞ entries and
    /// [`LuError::Singular`] when the best in-band pivot underflows
    /// `‖A‖_max · n · ε`.
    pub fn factor(a: &BandMat) -> Result<BandLu, LuError> {
        if !a.is_finite() {
            return Err(LuError::NonFinite);
        }
        htmpll_obs::counter!("num", "band_lu.factor").inc();
        htmpll_obs::record!("num", "band_lu.dim").record(a.n as f64);
        let n = a.n;
        let b = a.b;
        let w = 3 * b + 1;
        // Working array with offsets j−i ∈ [−b, 2b]: index (i, j) →
        // i·w + (j − i + b).
        let mut lu = SoaVec::zeros(n * w);
        for i in 0..n {
            let lo = i.saturating_sub(b);
            let hi = (i + b).min(n.saturating_sub(1));
            for j in lo..=hi {
                lu.set(i * w + (j + b - i), a.get(i, j));
            }
        }
        let mut piv = vec![0usize; n];
        let norm_a = a.norm_max();
        let tiny = norm_a * (n as f64) * f64::EPSILON;
        let mut umax = 0.0f64;

        #[allow(clippy::needless_range_loop)] // k drives the band window, not just piv
        for k in 0..n {
            // Pivot among the rows the band reaches in column k.
            let i_max = (k + b).min(n.saturating_sub(1));
            let mut p = k;
            let mut best = lu.get(k * w + b).abs();
            for i in (k + 1)..=i_max {
                let v = lu.get(i * w + (k + b - i)).abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= tiny || !best.is_finite() {
                return Err(LuError::Singular { step: k });
            }
            piv[k] = p;
            // At step k every active row's support sits in columns
            // [k, k+2b], which both rows' storage windows cover.
            if p != k {
                let j_hi = (k + 2 * b).min(n.saturating_sub(1));
                for j in k..=j_hi {
                    lu.swap(k * w + (j + b - k), p * w + (j + b - p));
                }
            }
            let pivot = lu.get(k * w + b);
            let j_hi = (k + 2 * b).min(n.saturating_sub(1));
            // Row k's active window [k+1, j_hi] starts at offset b+1 in
            // its storage row; the same columns sit at offset
            // (k+1) + b − i in row i. Both runs are contiguous.
            let len = j_hi - k;
            for i in (k + 1)..=i_max {
                let m = lu.get(i * w + (k + b - i)) / pivot;
                lu.set(i * w + (k + b - i), m);
                if m == Complex::ZERO {
                    continue;
                }
                if len == 0 {
                    continue;
                }
                let src_at = k * w + b + 1;
                let dst_at = i * w + (k + 1 + b - i);
                let (re, im) = lu.planes_mut();
                let (re_lo, re_hi) = re.split_at_mut(i * w);
                let (im_lo, im_hi) = im.split_at_mut(i * w);
                simd::caxpy_sub(
                    &mut re_hi[dst_at - i * w..dst_at - i * w + len],
                    &mut im_hi[dst_at - i * w..dst_at - i * w + len],
                    &re_lo[src_at..src_at + len],
                    &im_lo[src_at..src_at + len],
                    m,
                );
            }
            // Row k is final now: fold it into the U growth scan.
            for j in k..=j_hi {
                umax = umax.max(lu.get(k * w + (j + b - k)).abs());
            }
        }
        let growth = if norm_a > 0.0 { umax / norm_a } else { 1.0 };
        let growth_rec =
            htmpll_obs::record!("num", "band_lu.pivot_growth", htmpll_obs::Level::Debug);
        if growth_rec.is_enabled() {
            growth_rec.record(growth);
        }
        Ok(BandLu {
            n,
            b,
            lu,
            piv,
            growth,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Half-bandwidth of the factored matrix (before fill-in).
    pub fn bandwidth(&self) -> usize {
        self.b
    }

    /// Pivot growth `‖U‖_max/‖A‖_max`. In-band pivoting cannot always
    /// pick the column's best row, so growth far above 1 is the signal
    /// to abandon the banded factorization for the dense ladder.
    pub fn pivot_growth(&self) -> f64 {
        self.growth
    }

    /// Solves `A x = b` in place in O(n·b), reusing `x` as the
    /// right-hand side on entry and the solution on exit.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `x.len() != dim()`.
    pub fn solve_in_place(&self, x: &mut [Complex]) -> Result<(), LuError> {
        let (n, b, w) = (self.n, self.b, 3 * self.b + 1);
        if x.len() != n {
            return Err(LuError::DimensionMismatch);
        }
        // Forward: interleave the recorded row swaps with L.
        for k in 0..n {
            let p = self.piv[k];
            if p != k {
                x.swap(k, p);
            }
            let xk = x[k];
            if xk == Complex::ZERO {
                continue;
            }
            let i_max = (k + b).min(n.saturating_sub(1));
            #[allow(clippy::needless_range_loop)] // i indexes both x and the band column
            for i in (k + 1)..=i_max {
                x[i] -= self.lu.get(i * w + (k + b - i)) * xk;
            }
        }
        // Backward substitution with the fill-widened U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            let j_hi = (i + 2 * b).min(n.saturating_sub(1));
            #[allow(clippy::needless_range_loop)] // j indexes both x and the band row
            for j in (i + 1)..=j_hi {
                acc -= self.lu.get(i * w + (j + b - i)) * x[j];
            }
            x[i] = acc / self.lu.get(i * w + b);
        }
        Ok(())
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LuError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `A X = B`, lane-blocking up to eight right-hand sides
    /// into split-plane groups so the forward/backward substitutions
    /// run through the SIMD kernels — one lane per column, each lane
    /// replaying the exact scalar operation order (including the
    /// forward-solve zero-skip, applied per lane by the masked AXPY).
    /// Results are bitwise identical to solving column by column.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `B.rows() != dim()`.
    pub fn solve_mat(&self, b: &CMat) -> Result<CMat, LuError> {
        if b.rows() != self.n {
            return Err(LuError::DimensionMismatch);
        }
        let (n, hb, w) = (self.n, self.b, 3 * self.b + 1);
        let mut out = CMat::zeros(b.rows(), b.cols());
        let mut block = SoaVec::zeros(n * SOLVE_LANES);
        let mut j0 = 0;
        while j0 < b.cols() {
            let lanes = SOLVE_LANES.min(b.cols() - j0);
            // Pack: lane l of row group i is column j0+l.
            for i in 0..n {
                for l in 0..lanes {
                    block.set(i * SOLVE_LANES + l, b[(i, j0 + l)]);
                }
            }
            // Forward: interleave the recorded row swaps with L.
            for k in 0..n {
                let p = self.piv[k];
                if p != k {
                    for l in 0..lanes {
                        block.swap(k * SOLVE_LANES + l, p * SOLVE_LANES + l);
                    }
                }
                let i_max = (k + hb).min(n.saturating_sub(1));
                for i in (k + 1)..=i_max {
                    let m = self.lu.get(i * w + (k + hb - i));
                    let (re, im) = block.planes_mut();
                    let (re_k, re_i) = re.split_at_mut(i * SOLVE_LANES);
                    let (im_k, im_i) = im.split_at_mut(i * SOLVE_LANES);
                    simd::caxpy_sub_masked(
                        &mut re_i[..lanes],
                        &mut im_i[..lanes],
                        &re_k[k * SOLVE_LANES..k * SOLVE_LANES + lanes],
                        &im_k[k * SOLVE_LANES..k * SOLVE_LANES + lanes],
                        m,
                    );
                }
            }
            // Backward substitution with the fill-widened U.
            for i in (0..n).rev() {
                let j_hi = (i + 2 * hb).min(n.saturating_sub(1));
                for j in (i + 1)..=j_hi {
                    let m = self.lu.get(i * w + (j + hb - i));
                    let (re, im) = block.planes_mut();
                    let (re_i, re_j) = re.split_at_mut(j * SOLVE_LANES);
                    let (im_i, im_j) = im.split_at_mut(j * SOLVE_LANES);
                    simd::caxpy_sub(
                        &mut re_i[i * SOLVE_LANES..i * SOLVE_LANES + lanes],
                        &mut im_i[i * SOLVE_LANES..i * SOLVE_LANES + lanes],
                        &re_j[..lanes],
                        &im_j[..lanes],
                        m,
                    );
                }
                let pivot = self.lu.get(i * w + hb);
                let (re, im) = block.planes_mut();
                simd::cdiv_assign(
                    &mut re[i * SOLVE_LANES..i * SOLVE_LANES + lanes],
                    &mut im[i * SOLVE_LANES..i * SOLVE_LANES + lanes],
                    pivot,
                );
            }
            // Unpack.
            for i in 0..n {
                for l in 0..lanes {
                    out[(i, j0 + l)] = block.get(i * SOLVE_LANES + l);
                }
            }
            j0 += lanes;
        }
        Ok(out)
    }

    /// Probe-based condition estimate `‖A‖₁ · max ‖A⁻¹e‖₁/‖e‖₁` over a
    /// small set of structured probe vectors (all-ones, alternating
    /// signs, single spike). A cheap O(n·b) *lower bound* on the true
    /// `‖A‖₁·‖A⁻¹‖₁` — enough to gate the banded rung against
    /// ill-conditioning that pivot growth alone cannot see (e.g. a
    /// benign-looking triangular factor hiding exponential inverse
    /// growth).
    pub fn cond_probe(&self, a: &BandMat) -> f64 {
        let n = self.n;
        if n == 0 {
            return 1.0;
        }
        let mut worst = 0.0f64;
        let mut probe = vec![Complex::ZERO; n];
        for kind in 0..3u8 {
            for (i, slot) in probe.iter_mut().enumerate() {
                *slot = match kind {
                    0 => Complex::ONE,
                    1 => {
                        if i % 2 == 0 {
                            Complex::ONE
                        } else {
                            -Complex::ONE
                        }
                    }
                    _ => {
                        if i == n / 2 {
                            Complex::ONE
                        } else {
                            Complex::ZERO
                        }
                    }
                };
            }
            let e1: f64 = probe.iter().map(|z| z.abs()).sum();
            if self.solve_in_place(&mut probe).is_err() {
                return f64::INFINITY;
            }
            let x1: f64 = probe.iter().map(|z| z.abs()).sum();
            if !x1.is_finite() {
                return f64::INFINITY;
            }
            if e1 > 0.0 {
                worst = worst.max(x1 / e1);
            }
        }
        a.norm_one() * worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// Deterministic banded test matrix with a dominant diagonal.
    fn banded_like(n: usize, b: usize, seed: u64) -> BandMat {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64) / (u32::MAX as f64) - 0.5
        };
        BandMat::from_fn(n, b, |i, j| {
            let base = c(next(), next());
            if i == j {
                base + c(4.0, 1.0)
            } else {
                base
            }
        })
    }

    /// The pre-SoA `mul_vec` semantics: a per-row scan in ascending
    /// `j`, accumulating `Σ_j A(i,j)·x[j]` in a register. The rewritten
    /// diagonal-major path must match it bit for bit.
    fn mul_vec_row_scan(a: &BandMat, x: &[Complex]) -> Vec<Complex> {
        let n = a.dim();
        let b = a.bandwidth();
        let mut out = vec![Complex::ZERO; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let lo = i.saturating_sub(b);
            let hi = (i + b).min(n.saturating_sub(1));
            let mut acc = Complex::ZERO;
            for (j, xj) in x.iter().enumerate().take(hi + 1).skip(lo) {
                acc += a.get(i, j) * *xj;
            }
            *slot = acc;
        }
        out
    }

    #[test]
    fn matches_dense_solve() {
        for (n, b) in [(1, 0), (5, 1), (9, 2), (17, 3), (25, 5)] {
            let a = banded_like(n, b, 1000 + n as u64);
            let rhs: Vec<Complex> = (0..n).map(|i| c(i as f64 + 1.0, -(i as f64))).collect();
            let x = BandLu::factor(&a).unwrap().solve(&rhs).unwrap();
            let xd = crate::lu::solve(&a.to_dense(), &rhs).unwrap();
            for (xi, di) in x.iter().zip(&xd) {
                assert!((*xi - *di).abs() < 1e-10, "n={n} b={b}");
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Diagonal zero forces the in-band row swap path.
        let a = BandMat::from_fn(4, 1, |i, j| {
            if i == j {
                Complex::ZERO
            } else {
                c(1.0 + i as f64 + j as f64, 0.0)
            }
        });
        let lu = BandLu::factor(&a).unwrap();
        let rhs = vec![Complex::ONE; 4];
        let x = lu.solve(&rhs).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&rhs) {
            assert!((*ri - *bi).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let a = BandMat::zeros(3, 1);
        assert!(matches!(
            BandLu::factor(&a),
            Err(LuError::Singular { step: 0 })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = banded_like(4, 1, 7);
        a.set(2, 2, c(f64::NAN, 0.0));
        assert_eq!(BandLu::factor(&a).unwrap_err(), LuError::NonFinite);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = banded_like(4, 1, 9);
        let lu = BandLu::factor(&a).unwrap();
        assert_eq!(
            lu.solve(&[Complex::ONE; 3]).unwrap_err(),
            LuError::DimensionMismatch
        );
        assert_eq!(
            lu.solve_mat(&CMat::zeros(3, 3)).unwrap_err(),
            LuError::DimensionMismatch
        );
    }

    #[test]
    fn solve_mat_matches_dense() {
        let a = banded_like(8, 2, 11);
        let b = CMat::from_fn(8, 3, |i, j| c(i as f64 - j as f64, 0.5 * j as f64));
        let x = BandLu::factor(&a).unwrap().solve_mat(&b).unwrap();
        let xd = crate::lu::Lu::factor(&a.to_dense())
            .unwrap()
            .solve_mat(&b)
            .unwrap();
        assert!(x.max_diff(&xd) < 1e-10);
    }

    #[test]
    fn solve_mat_bitwise_matches_column_solves() {
        // The lane-blocked path must agree bit for bit with solving
        // each column through `solve_in_place`, across lane-count
        // remainders (cols spanning and straddling the 8-lane block)
        // and zero-heavy right-hand sides that exercise the per-lane
        // forward zero-skip.
        for (n, b, cols) in [(9, 2, 1), (12, 1, 8), (17, 3, 11), (6, 0, 5)] {
            let a = banded_like(n, b, 400 + n as u64);
            let lu = BandLu::factor(&a).unwrap();
            let rhs = CMat::from_fn(n, cols, |i, j| {
                if (i + j) % 3 == 0 {
                    Complex::ZERO
                } else {
                    c(i as f64 - 0.5 * j as f64, j as f64)
                }
            });
            let blocked = lu.solve_mat(&rhs).unwrap();
            for j in 0..cols {
                let mut col: Vec<Complex> = (0..n).map(|i| rhs[(i, j)]).collect();
                lu.solve_in_place(&mut col).unwrap();
                for (i, v) in col.iter().enumerate() {
                    assert_eq!(
                        blocked[(i, j)].re.to_bits(),
                        v.re.to_bits(),
                        "n={n} b={b} col={j} row={i}"
                    );
                    assert_eq!(blocked[(i, j)].im.to_bits(), v.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn band_storage_reads_and_writes() {
        let mut m = BandMat::zeros(5, 1);
        m.set(2, 3, c(7.0, 0.0));
        assert_eq!(m.get(2, 3), c(7.0, 0.0));
        assert_eq!(m.get(0, 4), Complex::ZERO); // outside the band
        assert_eq!(m.get(9, 0), Complex::ZERO); // outside the matrix
        assert_eq!(m.to_dense()[(2, 3)], c(7.0, 0.0));
        assert_eq!(m.bandwidth(), 1);
        assert_eq!(m.dim(), 5);
    }

    #[test]
    fn bandwidth_clamped_to_dim() {
        let m = BandMat::zeros(3, 10);
        assert_eq!(m.bandwidth(), 2);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = banded_like(7, 2, 21);
        let x: Vec<Complex> = (0..7).map(|i| c(0.3 * i as f64, 1.0 - i as f64)).collect();
        let lhs = a.mul_vec(&x);
        let rhs = a.to_dense().mul_vec(&x);
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((*l - *r).abs() < 1e-13);
        }
    }

    #[test]
    fn mul_vec_bitwise_matches_old_row_scan() {
        // Regression for the O(n²) iterator walk: the replacement must
        // reproduce the old output exactly — same values, same bits —
        // across band edges (diagonal-only, full-bandwidth) and
        // non-finite payloads.
        for (n, b) in [(1, 0), (5, 0), (8, 1), (13, 3), (9, 8), (33, 2)] {
            let a = banded_like(n, b, 77 + n as u64);
            let x: Vec<Complex> = (0..n)
                .map(|i| c(0.7 * i as f64 - 3.0, (i * i % 7) as f64 - 2.0))
                .collect();
            let new = a.mul_vec(&x);
            let old = mul_vec_row_scan(&a, &x);
            for (i, (l, r)) in new.iter().zip(&old).enumerate() {
                assert_eq!(l.re.to_bits(), r.re.to_bits(), "n={n} b={b} row={i}");
                assert_eq!(l.im.to_bits(), r.im.to_bits(), "n={n} b={b} row={i}");
            }
        }
        // NaN/∞ must propagate identically too.
        let mut a = banded_like(6, 1, 5);
        a.set(2, 2, c(f64::NAN, f64::INFINITY));
        let x = vec![c(1.0, -1.0); 6];
        let new = a.mul_vec(&x);
        let old = mul_vec_row_scan(&a, &x);
        for (l, r) in new.iter().zip(&old) {
            assert_eq!(l.re.to_bits(), r.re.to_bits());
            assert_eq!(l.im.to_bits(), r.im.to_bits());
        }
    }

    #[test]
    fn norms_match_dense() {
        let a = banded_like(6, 2, 33);
        let d = a.to_dense();
        assert!((a.norm_max() - d.norm_max()).abs() < 1e-15);
        assert!((a.norm_one() - d.norm_one()).abs() < 1e-13);
    }

    #[test]
    fn cond_probe_flags_hidden_ill_conditioning() {
        // Bidiagonal with huge superdiagonal: pivot growth is 1 (it is
        // already upper triangular) but the inverse grows like 50ⁿ.
        let n = 12;
        let a = BandMat::from_fn(n, 1, |i, j| {
            if i == j {
                Complex::ONE
            } else if j == i + 1 {
                c(50.0, 0.0)
            } else {
                Complex::ZERO
            }
        });
        let lu = BandLu::factor(&a).unwrap();
        assert!(lu.pivot_growth() < 10.0);
        assert!(lu.cond_probe(&a) > 1e12);
        // A well-conditioned system stays near 1.
        let id = BandMat::from_fn(
            4,
            1,
            |i, j| {
                if i == j {
                    Complex::ONE
                } else {
                    Complex::ZERO
                }
            },
        );
        let lu = BandLu::factor(&id).unwrap();
        assert!(lu.cond_probe(&id) < 10.0);
    }

    #[test]
    fn full_bandwidth_equals_dense_case() {
        // b = n−1 degenerates to a dense matrix; the banded code must
        // still agree with the dense route.
        let n = 6;
        let a = banded_like(n, n - 1, 55);
        let rhs: Vec<Complex> = (0..n).map(|i| c(1.0, i as f64)).collect();
        let x = BandLu::factor(&a).unwrap().solve(&rhs).unwrap();
        let xd = crate::lu::solve(&a.to_dense(), &rhs).unwrap();
        for (xi, di) in x.iter().zip(&xd) {
            assert!((*xi - *di).abs() < 1e-11);
        }
    }
}
