//! Banded complex matrices and an O(n·b²) banded LU factorization.
//!
//! Every HTM the paper builds is structured: LTI blocks are diagonal
//! (eq. 13), periodic multipliers are Toeplitz in the Fourier
//! coefficients (eq. 16) and the VCO is a banded Toeplitz scaled per
//! row by `1/(s+jnω₀)` (eq. 25). The closed-loop operator `I + G̃(s)`
//! built from those blocks is *banded* with half-bandwidth
//! `b = max ISF/filter harmonic`, so factoring it densely at O(n³) per
//! grid point throws the structure away. [`BandMat`] stores only the
//! band; [`BandLu`] factors it with partial pivoting confined to the
//! band in O(n·b²) and solves in O(n·b).
//!
//! Row pivoting widens the upper triangle: a banded matrix with `b`
//! sub- and super-diagonals factors into a `U` with up to `2b`
//! super-diagonals (the classic LAPACK `gbtrf` fill-in), so the
//! factored storage holds offsets `j−i ∈ [−b, 2b]` per row.
//!
//! ```
//! use htmpll_num::{BandMat, BandLu, Complex};
//!
//! // Tridiagonal: 2 on the diagonal, -1 off it.
//! let a = BandMat::from_fn(5, 1, |i, j| {
//!     if i == j { Complex::from_re(2.0) } else { Complex::from_re(-1.0) }
//! });
//! let lu = BandLu::factor(&a).expect("nonsingular");
//! let b = vec![Complex::ONE; 5];
//! let x = lu.solve(&b).unwrap();
//! let r = a.mul_vec(&x);
//! assert!(r.iter().zip(&b).all(|(ri, bi)| (*ri - *bi).abs() < 1e-12));
//! ```

use crate::complex::Complex;
use crate::lu::LuError;
use crate::mat::CMat;

/// A square complex matrix with entries confined to `|i − j| ≤ b`.
///
/// Storage is row-major with `2b+1` slots per row; entry `(i, j)` lives
/// at `data[i·(2b+1) + (j − i + b)]`. Reads outside the band return
/// zero; writes outside the band are rejected by a debug assertion and
/// ignored in release builds (the entry is structurally zero).
#[derive(Debug, Clone, PartialEq)]
pub struct BandMat {
    n: usize,
    b: usize,
    data: Vec<Complex>,
}

impl BandMat {
    /// An `n × n` banded matrix of zeros with half-bandwidth `b`
    /// (clamped to `n−1`, the widest meaningful band).
    pub fn zeros(n: usize, b: usize) -> BandMat {
        let b = b.min(n.saturating_sub(1));
        BandMat {
            n,
            b,
            data: vec![Complex::ZERO; n * (2 * b + 1)],
        }
    }

    /// Builds from a closure evaluated only on the band.
    pub fn from_fn(n: usize, b: usize, mut f: impl FnMut(usize, usize) -> Complex) -> BandMat {
        let mut m = BandMat::zeros(n, b);
        let b = m.b;
        for i in 0..n {
            let lo = i.saturating_sub(b);
            let hi = (i + b).min(n.saturating_sub(1));
            for j in lo..=hi {
                m.data[i * (2 * b + 1) + (j + b - i)] = f(i, j);
            }
        }
        m
    }

    /// Extracts the band of a dense square matrix; entries outside
    /// `|i − j| ≤ b` are dropped.
    pub fn from_dense(a: &CMat, b: usize) -> BandMat {
        BandMat::from_fn(a.rows(), b, |i, j| a[(i, j)])
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Half-bandwidth `b`.
    pub fn bandwidth(&self) -> usize {
        self.b
    }

    /// Entry `(i, j)`, zero outside the band.
    pub fn get(&self, i: usize, j: usize) -> Complex {
        if i < self.n && j < self.n && i.abs_diff(j) <= self.b {
            self.data[i * (2 * self.b + 1) + (j + self.b - i)]
        } else {
            Complex::ZERO
        }
    }

    /// Sets entry `(i, j)`. Writes outside the band are ignored (the
    /// entry is structurally zero); a debug assertion catches them.
    pub fn set(&mut self, i: usize, j: usize, v: Complex) {
        debug_assert!(
            i < self.n && j < self.n && i.abs_diff(j) <= self.b,
            "BandMat::set outside band: ({i}, {j}) with n={}, b={}",
            self.n,
            self.b
        );
        if i < self.n && j < self.n && i.abs_diff(j) <= self.b {
            self.data[i * (2 * self.b + 1) + (j + self.b - i)] = v;
        }
    }

    /// Densifies into a [`CMat`].
    pub fn to_dense(&self) -> CMat {
        CMat::from_fn(self.n, self.n, |i, j| self.get(i, j))
    }

    /// Banded matrix–vector product `A x` in O(n·b).
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.n];
        self.mul_vec_into(x, &mut out);
        out
    }

    /// [`BandMat::mul_vec`] into a caller-provided buffer (resized to
    /// `n`), for allocation-free sweep loops.
    pub fn mul_vec_into(&self, x: &[Complex], out: &mut Vec<Complex>) {
        assert_eq!(x.len(), self.n, "BandMat::mul_vec dimension mismatch");
        out.clear();
        out.resize(self.n, Complex::ZERO);
        let w = 2 * self.b + 1;
        for (i, slot) in out.iter_mut().enumerate() {
            let lo = i.saturating_sub(self.b);
            let hi = (i + self.b).min(self.n.saturating_sub(1));
            let mut acc = Complex::ZERO;
            for (j, xj) in x.iter().enumerate().take(hi + 1).skip(lo) {
                acc += self.data[i * w + (j + self.b - i)] * *xj;
            }
            *slot = acc;
        }
    }

    /// Largest entry magnitude `‖A‖_max`.
    pub fn norm_max(&self) -> f64 {
        // Only on-band slots are ever nonzero, so scanning the raw
        // storage (which includes the clipped corners) is safe.
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Maximum absolute column sum `‖A‖₁`.
    pub fn norm_one(&self) -> f64 {
        let mut sums = vec![0.0f64; self.n];
        let w = 2 * self.b + 1;
        for i in 0..self.n {
            let lo = i.saturating_sub(self.b);
            let hi = (i + self.b).min(self.n.saturating_sub(1));
            #[allow(clippy::needless_range_loop)] // j indexes both sums and the band row
            for j in lo..=hi {
                sums[j] += self.data[i * w + (j + self.b - i)].abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }

    /// True when every entry is finite (no NaN/∞).
    pub fn is_finite(&self) -> bool {
        self.data
            .iter()
            .all(|z| z.re.is_finite() && z.im.is_finite())
    }
}

/// A banded LU factorization `P A = L U` with partial pivoting confined
/// to the band: O(n·b²) to factor, O(n·b) per solve.
///
/// Pivot rows are chosen among the `b+1` candidates the band admits at
/// each step, so elimination never leaves the band; the price is fill-in
/// widening `U` to `2b` super-diagonals, which the factored storage
/// carries explicitly.
#[derive(Debug, Clone)]
pub struct BandLu {
    n: usize,
    b: usize,
    /// Factored storage, row-major with width `3b+1`: row `i` holds
    /// offsets `j − i ∈ [−b, 2b]`. Offsets `< 0` are the L multipliers,
    /// `≥ 0` the U entries.
    lu: Vec<Complex>,
    /// `piv[k]` is the row swapped into position `k` at step `k`.
    piv: Vec<usize>,
    growth: f64,
}

impl BandLu {
    /// Factors a banded matrix with partial pivoting inside the band.
    ///
    /// # Errors
    ///
    /// [`LuError::NonFinite`] for NaN/∞ entries and
    /// [`LuError::Singular`] when the best in-band pivot underflows
    /// `‖A‖_max · n · ε`.
    pub fn factor(a: &BandMat) -> Result<BandLu, LuError> {
        if !a.is_finite() {
            return Err(LuError::NonFinite);
        }
        htmpll_obs::counter!("num", "band_lu.factor").inc();
        htmpll_obs::record!("num", "band_lu.dim").record(a.n as f64);
        let n = a.n;
        let b = a.b;
        let w = 3 * b + 1;
        // Working array with offsets j−i ∈ [−b, 2b]: index (i, j) →
        // i·w + (j − i + b).
        let mut lu = vec![Complex::ZERO; n * w];
        for i in 0..n {
            let lo = i.saturating_sub(b);
            let hi = (i + b).min(n.saturating_sub(1));
            for j in lo..=hi {
                lu[i * w + (j + b - i)] = a.get(i, j);
            }
        }
        let mut piv = vec![0usize; n];
        let norm_a = a.norm_max();
        let tiny = norm_a * (n as f64) * f64::EPSILON;
        let mut umax = 0.0f64;

        for k in 0..n {
            // Pivot among the rows the band reaches in column k.
            let i_max = (k + b).min(n.saturating_sub(1));
            let mut p = k;
            let mut best = lu[k * w + b].abs();
            for i in (k + 1)..=i_max {
                let v = lu[i * w + (k + b - i)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= tiny || !best.is_finite() {
                return Err(LuError::Singular { step: k });
            }
            piv[k] = p;
            // At step k every active row's support sits in columns
            // [k, k+2b], which both rows' storage windows cover.
            if p != k {
                let j_hi = (k + 2 * b).min(n.saturating_sub(1));
                for j in k..=j_hi {
                    lu.swap(k * w + (j + b - k), p * w + (j + b - p));
                }
            }
            let pivot = lu[k * w + b];
            let j_hi = (k + 2 * b).min(n.saturating_sub(1));
            for i in (k + 1)..=i_max {
                let m = lu[i * w + (k + b - i)] / pivot;
                lu[i * w + (k + b - i)] = m;
                if m == Complex::ZERO {
                    continue;
                }
                for j in (k + 1)..=j_hi {
                    let ukj = lu[k * w + (j + b - k)];
                    lu[i * w + (j + b - i)] -= m * ukj;
                }
            }
            // Row k is final now: fold it into the U growth scan.
            for j in k..=j_hi {
                umax = umax.max(lu[k * w + (j + b - k)].abs());
            }
        }
        let growth = if norm_a > 0.0 { umax / norm_a } else { 1.0 };
        let growth_rec =
            htmpll_obs::record!("num", "band_lu.pivot_growth", htmpll_obs::Level::Debug);
        if growth_rec.is_enabled() {
            growth_rec.record(growth);
        }
        Ok(BandLu {
            n,
            b,
            lu,
            piv,
            growth,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Half-bandwidth of the factored matrix (before fill-in).
    pub fn bandwidth(&self) -> usize {
        self.b
    }

    /// Pivot growth `‖U‖_max/‖A‖_max`. In-band pivoting cannot always
    /// pick the column's best row, so growth far above 1 is the signal
    /// to abandon the banded factorization for the dense ladder.
    pub fn pivot_growth(&self) -> f64 {
        self.growth
    }

    /// Solves `A x = b` in place in O(n·b), reusing `x` as the
    /// right-hand side on entry and the solution on exit.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `x.len() != dim()`.
    pub fn solve_in_place(&self, x: &mut [Complex]) -> Result<(), LuError> {
        let (n, b, w) = (self.n, self.b, 3 * self.b + 1);
        if x.len() != n {
            return Err(LuError::DimensionMismatch);
        }
        // Forward: interleave the recorded row swaps with L.
        for k in 0..n {
            let p = self.piv[k];
            if p != k {
                x.swap(k, p);
            }
            let xk = x[k];
            if xk == Complex::ZERO {
                continue;
            }
            let i_max = (k + b).min(n.saturating_sub(1));
            #[allow(clippy::needless_range_loop)] // i indexes both x and the band column
            for i in (k + 1)..=i_max {
                x[i] -= self.lu[i * w + (k + b - i)] * xk;
            }
        }
        // Backward substitution with the fill-widened U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            let j_hi = (i + 2 * b).min(n.saturating_sub(1));
            #[allow(clippy::needless_range_loop)] // j indexes both x and the band row
            for j in (i + 1)..=j_hi {
                acc -= self.lu[i * w + (j + b - i)] * x[j];
            }
            x[i] = acc / self.lu[i * w + b];
        }
        Ok(())
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LuError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `B.rows() != dim()`.
    pub fn solve_mat(&self, b: &CMat) -> Result<CMat, LuError> {
        if b.rows() != self.n {
            return Err(LuError::DimensionMismatch);
        }
        let mut out = CMat::zeros(b.rows(), b.cols());
        let mut col = vec![Complex::ZERO; self.n];
        for j in 0..b.cols() {
            for i in 0..self.n {
                col[i] = b[(i, j)];
            }
            self.solve_in_place(&mut col)?;
            for (i, v) in col.iter().enumerate() {
                out[(i, j)] = *v;
            }
        }
        Ok(out)
    }

    /// Probe-based condition estimate `‖A‖₁ · max ‖A⁻¹e‖₁/‖e‖₁` over a
    /// small set of structured probe vectors (all-ones, alternating
    /// signs, single spike). A cheap O(n·b) *lower bound* on the true
    /// `‖A‖₁·‖A⁻¹‖₁` — enough to gate the banded rung against
    /// ill-conditioning that pivot growth alone cannot see (e.g. a
    /// benign-looking triangular factor hiding exponential inverse
    /// growth).
    pub fn cond_probe(&self, a: &BandMat) -> f64 {
        let n = self.n;
        if n == 0 {
            return 1.0;
        }
        let mut worst = 0.0f64;
        let mut probe = vec![Complex::ZERO; n];
        for kind in 0..3u8 {
            for (i, slot) in probe.iter_mut().enumerate() {
                *slot = match kind {
                    0 => Complex::ONE,
                    1 => {
                        if i % 2 == 0 {
                            Complex::ONE
                        } else {
                            -Complex::ONE
                        }
                    }
                    _ => {
                        if i == n / 2 {
                            Complex::ONE
                        } else {
                            Complex::ZERO
                        }
                    }
                };
            }
            let e1: f64 = probe.iter().map(|z| z.abs()).sum();
            if self.solve_in_place(&mut probe).is_err() {
                return f64::INFINITY;
            }
            let x1: f64 = probe.iter().map(|z| z.abs()).sum();
            if !x1.is_finite() {
                return f64::INFINITY;
            }
            if e1 > 0.0 {
                worst = worst.max(x1 / e1);
            }
        }
        a.norm_one() * worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// Deterministic banded test matrix with a dominant diagonal.
    fn banded_like(n: usize, b: usize, seed: u64) -> BandMat {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64) / (u32::MAX as f64) - 0.5
        };
        BandMat::from_fn(n, b, |i, j| {
            let base = c(next(), next());
            if i == j {
                base + c(4.0, 1.0)
            } else {
                base
            }
        })
    }

    #[test]
    fn matches_dense_solve() {
        for (n, b) in [(1, 0), (5, 1), (9, 2), (17, 3), (25, 5)] {
            let a = banded_like(n, b, 1000 + n as u64);
            let rhs: Vec<Complex> = (0..n).map(|i| c(i as f64 + 1.0, -(i as f64))).collect();
            let x = BandLu::factor(&a).unwrap().solve(&rhs).unwrap();
            let xd = crate::lu::solve(&a.to_dense(), &rhs).unwrap();
            for (xi, di) in x.iter().zip(&xd) {
                assert!((*xi - *di).abs() < 1e-10, "n={n} b={b}");
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Diagonal zero forces the in-band row swap path.
        let a = BandMat::from_fn(4, 1, |i, j| {
            if i == j {
                Complex::ZERO
            } else {
                c(1.0 + i as f64 + j as f64, 0.0)
            }
        });
        let lu = BandLu::factor(&a).unwrap();
        let rhs = vec![Complex::ONE; 4];
        let x = lu.solve(&rhs).unwrap();
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&rhs) {
            assert!((*ri - *bi).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let a = BandMat::zeros(3, 1);
        assert!(matches!(
            BandLu::factor(&a),
            Err(LuError::Singular { step: 0 })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = banded_like(4, 1, 7);
        a.set(2, 2, c(f64::NAN, 0.0));
        assert_eq!(BandLu::factor(&a).unwrap_err(), LuError::NonFinite);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = banded_like(4, 1, 9);
        let lu = BandLu::factor(&a).unwrap();
        assert_eq!(
            lu.solve(&[Complex::ONE; 3]).unwrap_err(),
            LuError::DimensionMismatch
        );
        assert_eq!(
            lu.solve_mat(&CMat::zeros(3, 3)).unwrap_err(),
            LuError::DimensionMismatch
        );
    }

    #[test]
    fn solve_mat_matches_dense() {
        let a = banded_like(8, 2, 11);
        let b = CMat::from_fn(8, 3, |i, j| c(i as f64 - j as f64, 0.5 * j as f64));
        let x = BandLu::factor(&a).unwrap().solve_mat(&b).unwrap();
        let xd = crate::lu::Lu::factor(&a.to_dense())
            .unwrap()
            .solve_mat(&b)
            .unwrap();
        assert!(x.max_diff(&xd) < 1e-10);
    }

    #[test]
    fn band_storage_reads_and_writes() {
        let mut m = BandMat::zeros(5, 1);
        m.set(2, 3, c(7.0, 0.0));
        assert_eq!(m.get(2, 3), c(7.0, 0.0));
        assert_eq!(m.get(0, 4), Complex::ZERO); // outside the band
        assert_eq!(m.get(9, 0), Complex::ZERO); // outside the matrix
        assert_eq!(m.to_dense()[(2, 3)], c(7.0, 0.0));
        assert_eq!(m.bandwidth(), 1);
        assert_eq!(m.dim(), 5);
    }

    #[test]
    fn bandwidth_clamped_to_dim() {
        let m = BandMat::zeros(3, 10);
        assert_eq!(m.bandwidth(), 2);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = banded_like(7, 2, 21);
        let x: Vec<Complex> = (0..7).map(|i| c(0.3 * i as f64, 1.0 - i as f64)).collect();
        let lhs = a.mul_vec(&x);
        let rhs = a.to_dense().mul_vec(&x);
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((*l - *r).abs() < 1e-13);
        }
    }

    #[test]
    fn norms_match_dense() {
        let a = banded_like(6, 2, 33);
        let d = a.to_dense();
        assert!((a.norm_max() - d.norm_max()).abs() < 1e-15);
        assert!((a.norm_one() - d.norm_one()).abs() < 1e-13);
    }

    #[test]
    fn cond_probe_flags_hidden_ill_conditioning() {
        // Bidiagonal with huge superdiagonal: pivot growth is 1 (it is
        // already upper triangular) but the inverse grows like 50ⁿ.
        let n = 12;
        let a = BandMat::from_fn(n, 1, |i, j| {
            if i == j {
                Complex::ONE
            } else if j == i + 1 {
                c(50.0, 0.0)
            } else {
                Complex::ZERO
            }
        });
        let lu = BandLu::factor(&a).unwrap();
        assert!(lu.pivot_growth() < 10.0);
        assert!(lu.cond_probe(&a) > 1e12);
        // A well-conditioned system stays near 1.
        let id = BandMat::from_fn(
            4,
            1,
            |i, j| {
                if i == j {
                    Complex::ONE
                } else {
                    Complex::ZERO
                }
            },
        );
        let lu = BandLu::factor(&id).unwrap();
        assert!(lu.cond_probe(&id) < 10.0);
    }

    #[test]
    fn full_bandwidth_equals_dense_case() {
        // b = n−1 degenerates to a dense matrix; the banded code must
        // still agree with the dense route.
        let n = 6;
        let a = banded_like(n, n - 1, 55);
        let rhs: Vec<Complex> = (0..n).map(|i| c(1.0, i as f64)).collect();
        let x = BandLu::factor(&a).unwrap().solve(&rhs).unwrap();
        let xd = crate::lu::solve(&a.to_dense(), &rhs).unwrap();
        for (xi, di) in x.iter().zip(&xd) {
            assert!((*xi - *di).abs() < 1e-11);
        }
    }
}
