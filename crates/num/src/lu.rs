//! LU decomposition with partial pivoting for complex matrices.
//!
//! The dense solve path of the HTM machinery — inverting `I + G̃(s)` when
//! no rank-one shortcut applies (e.g. time-varying VCOs) — runs through
//! [`Lu`].
//!
//! ```
//! use htmpll_num::{CMat, Complex, Lu};
//!
//! let a = CMat::from_rows(2, 2, &[
//!     Complex::new(2.0, 0.0), Complex::new(1.0, 0.0),
//!     Complex::new(1.0, 0.0), Complex::new(3.0, 0.0),
//! ]);
//! let lu = Lu::factor(&a).expect("nonsingular");
//! let x = lu.solve(&[Complex::new(3.0, 0.0), Complex::new(4.0, 0.0)]).unwrap();
//! assert!((x[0] - Complex::new(1.0, 0.0)).abs() < 1e-12);
//! assert!((x[1] - Complex::new(1.0, 0.0)).abs() < 1e-12);
//! ```

use crate::complex::Complex;
use crate::mat::CMat;
use std::fmt;

/// Error returned when a matrix cannot be factored or solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare,
    /// A zero (or numerically negligible) pivot was encountered at the
    /// given elimination step: the matrix is singular to working precision.
    Singular {
        /// Index of the failing elimination step.
        step: usize,
    },
    /// Right-hand-side length does not match the factored dimension.
    DimensionMismatch,
    /// The matrix (or right-hand side) contains NaN or ±∞ entries; no
    /// factorization, refinement or perturbation can recover from those.
    NonFinite,
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "matrix is not square"),
            LuError::Singular { step } => {
                write!(f, "matrix is singular to working precision at step {step}")
            }
            LuError::DimensionMismatch => write!(f, "right-hand side has the wrong dimension"),
            LuError::NonFinite => write!(f, "matrix contains non-finite (NaN/∞) entries"),
        }
    }
}

impl std::error::Error for LuError {}

/// An LU factorization `P A = L U` with partial (row) pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implicit) and U (upper) factors.
    lu: CMat,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 or −1), used by the determinant.
    perm_sign: f64,
    /// Pivot growth `‖U‖_max/‖A‖_max`, recorded at factor time.
    growth: f64,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::NotSquare`] for a rectangular input and
    /// [`LuError::Singular`] when a pivot underflows
    /// `‖A‖_max · n · ε` (the matrix is singular to working precision).
    pub fn factor(a: &CMat) -> Result<Lu, LuError> {
        if !a.is_square() {
            return Err(LuError::NotSquare);
        }
        htmpll_obs::counter!("num", "lu.factor").inc();
        htmpll_obs::record!("num", "lu.dim").record(a.rows() as f64);
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let norm_a = lu.norm_max();
        let tiny = norm_a * (n as f64) * f64::EPSILON;

        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at/below row k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= tiny || !best.is_finite() {
                return Err(LuError::Singular { step: k });
            }
            if p != k {
                lu.swap_rows(p, k);
                perm.swap(p, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == Complex::ZERO {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= m * ukj;
                }
            }
        }
        // Pivot growth ‖U‖_max/‖A‖_max ≫ 1 flags an ill-conditioned HTM
        // truncation long before the solve visibly misbehaves.
        let growth = if norm_a > 0.0 {
            lu.norm_max() / norm_a
        } else {
            1.0
        };
        let growth_rec = htmpll_obs::record!("num", "lu.pivot_growth", htmpll_obs::Level::Debug);
        if growth_rec.is_enabled() {
            growth_rec.record(growth);
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
            growth,
        })
    }

    /// Pivot growth `‖U‖_max/‖A‖_max` of this factorization. Values far
    /// above 1 flag element growth during elimination — the classic early
    /// warning that partial pivoting is losing accuracy on this matrix.
    pub fn pivot_growth(&self) -> f64 {
        self.growth
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LuError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LuError::DimensionMismatch);
        }
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut x: Vec<Complex> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * *xj;
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            #[allow(clippy::needless_range_loop)] // x is mutated at i below
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::DimensionMismatch`] when `B.rows() != dim()`.
    pub fn solve_mat(&self, b: &CMat) -> Result<CMat, LuError> {
        if b.rows() != self.dim() {
            return Err(LuError::DimensionMismatch);
        }
        let mut out = CMat::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for (i, v) in col.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// The inverse matrix `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// matrix of matching dimension).
    pub fn inverse(&self) -> Result<CMat, LuError> {
        self.solve_mat(&CMat::identity(self.dim()))
    }

    /// The determinant, from the product of pivots and the permutation sign.
    pub fn det(&self) -> Complex {
        let mut d = Complex::from_re(self.perm_sign);
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// A cheap condition-number estimate `‖A‖₁ · ‖A⁻¹‖₁` (computes the
    /// explicit inverse; intended for diagnostics on the small matrices
    /// used by truncated HTMs).
    pub fn cond_estimate(&self, a: &CMat) -> f64 {
        match self.inverse() {
            Ok(inv) => a.norm_one() * inv.norm_one(),
            Err(_) => f64::INFINITY,
        }
    }
}

/// Convenience one-shot solve of `A x = b`.
///
/// # Errors
///
/// See [`Lu::factor`] and [`Lu::solve`].
pub fn solve(a: &CMat, b: &[Complex]) -> Result<Vec<Complex>, LuError> {
    Lu::factor(a)?.solve(b)
}

/// Convenience one-shot inverse.
///
/// # Errors
///
/// See [`Lu::factor`].
pub fn inverse(a: &CMat) -> Result<CMat, LuError> {
    Lu::factor(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn random_like(n: usize, seed: u64) -> CMat {
        // Small deterministic LCG so the test needs no external RNG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as u32 as f64) / (u32::MAX as f64) - 0.5
        };
        CMat::from_fn(n, n, |_, _| c(next(), next()))
    }

    #[test]
    fn solve_known_system() {
        // (1+j)x + y = 2 ; x − y = j  →  hand-checked solution below.
        let a = CMat::from_rows(2, 2, &[c(1.0, 1.0), c(1.0, 0.0), c(1.0, 0.0), c(-1.0, 0.0)]);
        let b = [c(2.0, 0.0), c(0.0, 1.0)];
        let x = solve(&a, &b).unwrap();
        // Verify by substitution.
        let r0 = a[(0, 0)] * x[0] + a[(0, 1)] * x[1];
        let r1 = a[(1, 0)] * x[0] + a[(1, 1)] * x[1];
        assert!(r0.approx_eq(b[0], 1e-13));
        assert!(r1.approx_eq(b[1], 1e-13));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = random_like(12, 42);
        let inv = inverse(&a).unwrap();
        let prod = &a * &inv;
        assert!(prod.max_diff(&CMat::identity(12)) < 1e-10);
    }

    #[test]
    fn determinant_of_triangular() {
        let a = CMat::from_rows(
            3,
            3,
            &[
                c(2.0, 0.0),
                c(5.0, 1.0),
                c(0.0, 3.0),
                Complex::ZERO,
                c(0.0, 1.0),
                c(7.0, 0.0),
                Complex::ZERO,
                Complex::ZERO,
                c(3.0, 0.0),
            ],
        );
        let lu = Lu::factor(&a).unwrap();
        // det = 2 · j · 3 = 6j
        assert!(lu.det().approx_eq(c(0.0, 6.0), 1e-12));
    }

    #[test]
    fn determinant_tracks_row_swaps() {
        // A permutation matrix with one swap has det −1.
        let mut p = CMat::identity(3);
        p.swap_rows(0, 1);
        let lu = Lu::factor(&p).unwrap();
        assert!(lu.det().approx_eq(c(-1.0, 0.0), 1e-14));
    }

    #[test]
    fn singular_detected() {
        let a = CMat::from_rows(2, 2, &[c(1.0, 0.0), c(2.0, 0.0), c(2.0, 0.0), c(4.0, 0.0)]);
        match Lu::factor(&a) {
            Err(LuError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn not_square_rejected() {
        let a = CMat::zeros(2, 3);
        assert_eq!(Lu::factor(&a).unwrap_err(), LuError::NotSquare);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CMat::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert_eq!(
            lu.solve(&[Complex::ONE; 2]).unwrap_err(),
            LuError::DimensionMismatch
        );
        assert_eq!(
            lu.solve_mat(&CMat::zeros(2, 2)).unwrap_err(),
            LuError::DimensionMismatch
        );
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let a = random_like(5, 7);
        let b = random_like(5, 9);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_mat(&b).unwrap();
        assert!((&a * &x).max_diff(&b) < 1e-11);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Without pivoting this matrix would divide by zero immediately.
        let a = CMat::from_rows(
            2,
            2,
            &[Complex::ZERO, c(1.0, 0.0), c(1.0, 0.0), Complex::ZERO],
        );
        let x = solve(&a, &[c(3.0, 0.0), c(4.0, 0.0)]).unwrap();
        assert!(x[0].approx_eq(c(4.0, 0.0), 1e-14));
        assert!(x[1].approx_eq(c(3.0, 0.0), 1e-14));
    }

    #[test]
    fn cond_estimate_identity_is_small() {
        let a = CMat::identity(4);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.cond_estimate(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        assert_eq!(LuError::NotSquare.to_string(), "matrix is not square");
        assert!(LuError::Singular { step: 3 }.to_string().contains("step 3"));
        assert!(LuError::DimensionMismatch.to_string().contains("dimension"));
    }
}
