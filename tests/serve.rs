//! Integration tests for `plltool serve`: the batched JSONL analysis
//! service (tentpole of the request/response-layer redesign).
//!
//! Covers the acceptance contract end to end:
//! * a mixed-spec stream over a real OS pipe — including one malformed
//!   line and one numerically adversarial (at-the-sampling-limit) spec —
//!   answers every line, in order, with the right ids, without the
//!   process dying;
//! * worker count never changes a single response byte;
//! * a 1000-request repeated-spec stream is lossless at default queue
//!   bounds (zero shed) and runs warm: response-cache hit rate > 50 %.

use htmpll::service::{serve_lines, ServeOptions, ServeSummary};
use std::io::{Cursor, Write};
use std::process::{Command, Stdio};

fn run_inproc(input: &str, workers: usize) -> (String, ServeSummary) {
    let mut out = Vec::new();
    let summary = serve_lines(
        Cursor::new(input.to_string()),
        &mut out,
        &ServeOptions {
            workers,
            ..ServeOptions::default()
        },
    )
    .expect("serve_lines");
    (String::from_utf8(out).expect("utf8 output"), summary)
}

#[test]
fn serve_over_a_pipe_answers_a_mixed_stream_in_order() {
    let exe = env!("CARGO_BIN_EXE_plltool");
    let mut child = Command::new(exe)
        .args(["serve", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn plltool serve");

    let mut input = String::new();
    for i in 0..20 {
        let ratio = [0.08, 0.1, 0.12][i % 3];
        input.push_str(&format!(
            "{{\"id\":{i},\"command\":\"analyze\",\"params\":{{\"ratio\":{ratio}}}}}\n"
        ));
    }
    input.push_str("this line is not json\n");
    input.push_str("{\"id\":\"bad\",\"command\":\"analyze\",\"params\":{\"ratio\":-1}}\n");
    // At the sampling limit: the analysis degrades through the
    // PointQuality ladder but must still answer.
    input
        .push_str("{\"id\":\"adversarial\",\"command\":\"analyze\",\"params\":{\"ratio\":0.45}}\n");
    input.push_str("{\"id\":\"s\",\"command\":\"stats\"}\n");

    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("wait for serve");
    assert!(
        out.status.success(),
        "serve exited nonzero: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 24, "one response line per request:\n{stdout}");
    for (i, line) in lines.iter().enumerate().take(20) {
        assert!(
            line.starts_with(&format!("{{\"schema\":\"plltool/v1\",\"id\":{i},")),
            "response {i} out of order or unversioned: {line}"
        );
        assert!(line.contains("\"ok\":true"), "response {i} failed: {line}");
        htmpll::obs::validate_json(line).expect("response line is valid JSON");
    }
    assert!(
        lines[20].contains("\"ok\":false") && lines[20].contains("\"code\":\"bad_request\""),
        "malformed line must degrade to a structured error: {}",
        lines[20]
    );
    assert!(
        lines[21].contains("\"id\":\"bad\"") && lines[21].contains("\"code\":\"failed\""),
        "invalid design must fail structurally: {}",
        lines[21]
    );
    assert!(
        lines[22].contains("\"id\":\"adversarial\"")
            && lines[22].contains("\"ok\":true")
            && lines[22].contains("\"beyond_sampling_limit\":true"),
        "adversarial spec must complete with degradation flagged: {}",
        lines[22]
    );
    assert!(
        lines[23].contains("\"id\":\"s\"") && lines[23].contains("\"command\":\"stats\""),
        "stats response missing: {}",
        lines[23]
    );

    // The repeated specs must have run warm: the stats response carries
    // a nonzero response-cache hit count.
    let stats = htmpll::obs::parse_json(lines[23]).expect("stats line parses");
    let hits = stats
        .get("result")
        .and_then(|r| r.get("response_cache"))
        .and_then(|c| c.get("hits"))
        .and_then(|h| h.as_f64())
        .expect("response_cache.hits in stats");
    assert!(hits > 0.0, "expected warm-cache hits, stats: {}", lines[23]);

    // Layering invariant: the server and the one-shot CLI are thin
    // wrappers over the same request/response layer, so a served
    // response (minus its id member) is byte-identical to the same
    // spec's `--json` envelope.
    let json_path = std::env::temp_dir().join(format!("serve_vs_cli_{}.json", std::process::id()));
    let status = Command::new(exe)
        .args(["analyze", "--ratio", "0.08", "--json"])
        .arg(&json_path)
        .stdout(Stdio::null())
        .status()
        .expect("run one-shot analyze --json");
    assert!(status.success(), "one-shot analyze failed");
    let oneshot = std::fs::read_to_string(&json_path).expect("read --json file");
    let _ = std::fs::remove_file(&json_path);
    assert_eq!(
        lines[0].replacen("\"id\":0,", "", 1),
        oneshot.trim_end(),
        "served response must match the one-shot --json envelope byte for byte"
    );
}

#[test]
fn worker_count_never_changes_response_bytes() {
    let mut input = String::new();
    for (i, ratio) in [0.08, 0.1, 0.12, 0.2, 0.1].iter().enumerate() {
        input.push_str(&format!(
            "{{\"id\":{i},\"command\":\"analyze\",\"params\":{{\"ratio\":{ratio}}}}}\n"
        ));
    }
    input.push_str("{\"id\":\"b\",\"command\":\"bode\",\"params\":{\"ratio\":0.1,\"points\":9}}\n");
    input.push_str("{\"id\":\"t\",\"command\":\"step\",\"params\":{\"ratio\":0.15,\"points\":5,\"until\":20}}\n");
    input.push_str("{\"id\":\"p\",\"command\":\"spur\",\"params\":{\"ratio\":0.1}}\n");
    input.push_str("{\"id\":\"w\",\"command\":\"sweep\",\"params\":{\"from\":0.05,\"to\":0.15,\"points\":3}}\n");

    let (one, _) = run_inproc(&input, 1);
    let (four, _) = run_inproc(&input, 4);
    assert_eq!(
        one, four,
        "serve responses must be bitwise identical for 1 vs 4 workers"
    );
}

#[test]
fn thousand_request_stream_is_lossless_and_runs_warm() {
    let ratios = [0.08, 0.1, 0.12, 0.15, 0.2];
    let mut input = String::new();
    for i in 0..1000 {
        let r = ratios[i % ratios.len()];
        input.push_str(&format!(
            "{{\"id\":{i},\"command\":\"analyze\",\"params\":{{\"ratio\":{r}}}}}\n"
        ));
    }
    let (out, summary) = run_inproc(&input, 0);

    assert_eq!(summary.received, 1000);
    assert_eq!(summary.responded, 1000);
    assert_eq!(summary.shed, 0, "default queue bounds must not shed");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 1000);
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"schema\":\"plltool/v1\",\"id\":{i},")),
            "line {i} out of order: {line}"
        );
        assert!(line.contains("\"ok\":true"), "line {i} failed: {line}");
    }
    let hit_rate = summary.response_cache_hits as f64 / 1000.0;
    assert!(
        hit_rate > 0.5,
        "repeated-spec workload must run warm (hit rate {hit_rate:.2}): {summary:?}"
    );
}
