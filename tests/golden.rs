//! Golden regression values for the reproduction's headline numbers.
//!
//! These pin the quantitative results recorded in EXPERIMENTS.md so a
//! future change that silently alters the physics (sign conventions,
//! gain factors, normalizations) fails loudly rather than drifting.

use htmpll::core::{analyze, PllDesign, PllModel};
use htmpll::zdomain::reference_design_stability_limit;

fn report(ratio: f64) -> htmpll::core::AnalysisReport {
    analyze(
        &PllModel::builder(PllDesign::reference_design(ratio).unwrap())
            .build()
            .unwrap(),
    )
    .unwrap()
}

#[test]
fn golden_lti_phase_margin() {
    // atan(4) − atan(1/4) = 61.9275°, by construction of the shape.
    let r = report(0.1);
    assert!((r.phase_margin_lti_deg - 61.9275).abs() < 1e-3);
    assert!((r.omega_ug_lti - 1.0).abs() < 1e-6);
}

#[test]
fn golden_effective_margins() {
    // The Fig.-7 table (EXPERIMENTS.md).
    for (ratio, wug_eff, pm_eff) in [
        (0.05, 1.0139, 60.28),
        (0.10, 1.0533, 55.48),
        (0.20, 1.2170, 37.32),
    ] {
        let r = report(ratio);
        assert!(
            (r.omega_ug_eff / r.omega_ug_lti - wug_eff).abs() < 0.002,
            "ratio {ratio}: wug_eff {}",
            r.omega_ug_eff / r.omega_ug_lti
        );
        assert!(
            (r.phase_margin_eff_deg - pm_eff).abs() < 0.05,
            "ratio {ratio}: PM {}",
            r.phase_margin_eff_deg
        );
    }
}

#[test]
fn golden_sampling_stability_limit() {
    // Jury bisection on the Hein–Scott model: 0.2762 for this shape.
    let limit = reference_design_stability_limit(0.05, 0.6, 1e-4);
    assert!((limit - 0.2762).abs() < 0.002, "{limit}");
}

#[test]
fn golden_subharmonic_pole() {
    // At ratio 0.25 the dominant subharmonic pole: −0.2043 + j·(ω₀/2).
    use htmpll::core::dominant_poles;
    let model = PllModel::builder(PllDesign::reference_design(0.25).unwrap())
        .build()
        .unwrap();
    let w0 = model.design().omega_ref();
    let poles = dominant_poles(&model).unwrap();
    let edge = poles
        .iter()
        .find(|p| (p.im - 0.5 * w0).abs() < 1e-6 * w0)
        .expect("subharmonic pole");
    assert!((edge.re + 0.2043).abs() < 0.002, "{edge}");
}

#[test]
fn golden_h00_values() {
    // Spot values of the Fig.-6 curves (dB).
    let model = PllModel::builder(PllDesign::reference_design(0.1).unwrap())
        .build()
        .unwrap();
    let db = |w: f64| 20.0 * model.h00(w).abs().log10();
    assert!((db(0.5016) - 1.460).abs() < 0.01, "{}", db(0.5016));
    assert!((db(1.9876) + 3.990).abs() < 0.01, "{}", db(1.9876));
}

#[test]
fn golden_spur_closed_form() {
    // |A(jω₀)| at ratio 0.1: the leakage-spur transfer factor.
    use htmpll::core::LeakageSpurs;
    let model = PllModel::builder(PllDesign::reference_design(0.1).unwrap())
        .build()
        .unwrap();
    let i_leak = 1e-3 * model.design().icp();
    let s = LeakageSpurs::new(&model, i_leak);
    let t_ref = 1.0 / model.design().f_ref();
    // sideband = |A(j·10)|·θ_static; |A(j10)| for the reference shape:
    let a = model.open_loop().eval_jw(10.0).abs();
    assert!((a - 0.037151).abs() < 1e-4, "{a}");
    assert!((s.sideband(1).abs() - a * 1e-3 * t_ref).abs() < 1e-12);
}
