//! Transient cross-validation: the time-varying frequency-domain model,
//! the z-domain model and the behavioral simulator must all tell the
//! same story about a reference phase step.

use htmpll::core::{transient, PllDesign, PllModel};
use htmpll::sim::{PllSim, SimConfig, SimParams};
use htmpll::zdomain::CpPllZModel;

/// Simulate a reference phase step and return `(times, θ/step)` after
/// the step instant, plus the sample interval.
fn simulated_step(ratio: f64, periods: usize) -> (Vec<f64>, Vec<f64>, f64) {
    let design = PllDesign::reference_design(ratio).unwrap();
    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();
    let t_ref = params.t_ref;
    let step = 1e-3 * t_ref;
    let t_step = 20.0 * t_ref;
    let modulation = move |t: f64| if t >= t_step { step } else { 0.0 };

    let mut sim = PllSim::new(params, cfg);
    let _ = sim.run(t_step, &modulation); // pre-step segment (stays locked)
    let trace = sim.run(periods as f64 * t_ref, &modulation);
    let times: Vec<f64> = (0..trace.theta_vco.len())
        .map(|k| trace.t0 + k as f64 * trace.dt - t_step)
        .collect();
    let normalized: Vec<f64> = trace.theta_vco.iter().map(|v| v / step).collect();
    (times, normalized, trace.dt)
}

#[test]
fn htm_step_response_matches_simulation() {
    let ratio = 0.15;
    let (times, sim_y, _dt) = simulated_step(ratio, 80);
    let spr = SimConfig::default().samples_per_ref;
    let avg: Vec<f64> = sim_y
        .windows(spr)
        .map(|w| w.iter().sum::<f64>() / spr as f64)
        .collect();
    // Times of the averaged samples: centered on the averaging window.
    let avg_times: Vec<f64> = times
        .windows(spr)
        .map(|w| 0.5 * (w[0] + w[spr - 1]))
        .collect();

    let model = PllModel::builder(PllDesign::reference_design(ratio).unwrap())
        .build()
        .unwrap();
    // Compare past the first few periods: at earlier times the true
    // response depends on where within the sampling cycle the step
    // landed (genuinely time-varying behavior), while H₀,₀ predicts the
    // timing-averaged response.
    let design_t = 1.0 / model.design().f_ref();
    let picks: Vec<usize> = avg_times
        .iter()
        .enumerate()
        .filter(|(_, t)| **t > 3.5 * design_t && **t < 35.0)
        .step_by(avg_times.len() / 12)
        .map(|(i, _)| i)
        .collect();
    let ts: Vec<f64> = picks.iter().map(|&i| avg_times[i]).collect();
    let predicted = transient::step_response(&model, &ts);
    for (k, &i) in picks.iter().enumerate() {
        let s = avg[i];
        let p = predicted[k];
        assert!(
            (s - p).abs() < 0.05,
            "t={:.2}: sim {s:.4} vs htm {p:.4}",
            ts[k]
        );
    }
}

#[test]
fn zdomain_step_response_matches_simulation_at_sample_instants() {
    let ratio = 0.15;
    let (times, sim_y, dt) = simulated_step(ratio, 60);
    let design = PllDesign::reference_design(ratio).unwrap();
    let t_ref = 1.0 / design.f_ref();
    let zm = CpPllZModel::from_design(&design).unwrap();
    let z_step = zm.closed_loop().unwrap().step_response(50);

    // Sim samples at t = k·T (the reference-edge instants after the
    // step; the discrete model predicts exactly these).
    for k in 2..40usize {
        let target = k as f64 * t_ref;
        let idx = times
            .iter()
            .position(|&t| (t - target).abs() < 0.51 * dt)
            .expect("sample at kT");
        let s = sim_y[idx];
        // The discrete model's step index aligns with edges after the
        // step; allow a one-sample alignment slop by checking both.
        let best = (z_step[k.saturating_sub(1)] - s)
            .abs()
            .min((z_step[k] - s).abs());
        assert!(
            best < 0.05,
            "k={k}: sim {s:.4} vs z {:.4}/{:.4}",
            z_step[k - 1],
            z_step[k]
        );
    }
}

#[test]
fn fast_loop_overshoot_exceeds_lti_in_simulation() {
    // The ringing the LTI analysis cannot predict, observed directly in
    // the time domain.
    let (_, sim_y, _) = simulated_step(0.25, 120);
    let peak_sim = sim_y.iter().cloned().fold(0.0f64, f64::max);

    let design = PllDesign::reference_design(0.25).unwrap();
    let cl = design.open_loop_gain().feedback_unity().unwrap();
    let ts: Vec<f64> = (1..200).map(|k| 0.2 * k as f64).collect();
    let lti = htmpll::lti::response::step_response(&cl, &ts).unwrap();
    let peak_lti = lti.iter().cloned().fold(0.0f64, f64::max);

    assert!(
        peak_sim > peak_lti + 0.1,
        "sim peak {peak_sim:.3} vs LTI peak {peak_lti:.3}"
    );
}

#[test]
fn frequency_step_error_matches_simulation() {
    // A reference frequency step = a ramp in θ_ref: the simulated
    // tracking error (period-averaged) must follow the HTM
    // frequency-step error profile.
    use htmpll::core::transient;

    let ratio = 0.15;
    let design = PllDesign::reference_design(ratio).unwrap();
    let model = PllModel::builder(design.clone()).build().unwrap();
    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();
    let t_ref = params.t_ref;
    let slope = 2e-4; // dθ_ref/dt, dimensionless frequency offset
    let t_step = 20.0 * t_ref;
    let modulation = move |t: f64| {
        if t >= t_step {
            slope * (t - t_step)
        } else {
            0.0
        }
    };

    let mut sim = PllSim::new(params, cfg);
    let _ = sim.run(t_step, &modulation);
    let trace = sim.run(60.0 * t_ref, &modulation);
    let spr = cfg.samples_per_ref;

    // Period-averaged tracking error from the simulation.
    let err_samples: Vec<f64> = trace
        .theta_vco
        .iter()
        .enumerate()
        .map(|(k, th)| {
            let t = trace.t0 + k as f64 * trace.dt;
            modulation(t) - th
        })
        .collect();
    let avg: Vec<f64> = err_samples
        .windows(spr)
        .map(|w| w.iter().sum::<f64>() / spr as f64)
        .collect();
    let avg_times: Vec<f64> = (0..avg.len())
        .map(|k| trace.t0 + (k as f64 + 0.5 * (spr - 1) as f64) * trace.dt - t_step)
        .collect();

    // Compare at a handful of times past the timing-averaging window.
    let picks: Vec<usize> = avg_times
        .iter()
        .enumerate()
        .filter(|(_, t)| **t > 3.5 * t_ref && **t < 35.0)
        .step_by(avg_times.len() / 10)
        .map(|(i, _)| i)
        .collect();
    let ts: Vec<f64> = picks.iter().map(|&i| avg_times[i]).collect();
    let predicted = transient::frequency_step_error(&model, &ts);
    // Peak error scale for the relative comparison.
    let peak = predicted
        .iter()
        .fold(0.0f64, |a, &b| a.max(b.abs()))
        .max(1e-12);
    for (k, &i) in picks.iter().enumerate() {
        let s = avg[i] / slope;
        let p = predicted[k];
        assert!(
            (s - p).abs() < 0.08 * peak.max(s.abs()),
            "t={:.2}: sim {s:.4} vs htm {p:.4}",
            ts[k]
        );
    }
}
