//! Property-based tests (proptest) on the workspace's core data
//! structures and invariants.
//!
//! Gated behind the non-default `proptest` feature: the proptest crate
//! cannot be fetched in offline build environments. To run these tests,
//! restore `proptest` as a root dev-dependency (requires registry access)
//! and run `cargo test --features proptest --test property`.

#![cfg(feature = "proptest")]

use htmpll::htm::{HtmBlock, LtiHtm, MultiplierHtm, SamplerHtm, Truncation, VcoHtm};
use htmpll::lti::{Pfe, Tf};
use htmpll::num::lu::{inverse, Lu};
use htmpll::num::optim::{brent, lin_grid};
use htmpll::num::roots::find_roots;
use htmpll::num::special::{lattice_sum, lattice_sum_truncated};
use htmpll::num::{CMat, Complex, Poly};
use htmpll::spectral::{fft_any, goertzel, ifft_any};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    // proptest's native f64 range strategy: uniform over [start, end).
    range
}

fn complex_in_box(m: f64) -> impl Strategy<Value = Complex> {
    (finite_f64(-m..m), finite_f64(-m..m)).prop_map(|(re, im)| Complex::new(re, im))
}

proptest! {
    // ---------------- Complex field axioms ----------------

    #[test]
    fn complex_mul_commutes(a in complex_in_box(10.0), b in complex_in_box(10.0)) {
        prop_assert!((a * b - b * a).abs() < 1e-12);
    }

    #[test]
    fn complex_mul_distributes(a in complex_in_box(5.0), b in complex_in_box(5.0),
                               c in complex_in_box(5.0)) {
        prop_assert!(((a + b) * c - (a * c + b * c)).abs() < 1e-10);
    }

    #[test]
    fn complex_division_inverts(a in complex_in_box(10.0), b in complex_in_box(10.0)) {
        prop_assume!(b.abs() > 1e-6);
        prop_assert!(((a / b) * b - a).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn complex_conj_is_involution(a in complex_in_box(100.0)) {
        prop_assert_eq!(a.conj().conj(), a);
        prop_assert!((a * a.conj() - Complex::from_re(a.norm_sqr())).abs() < 1e-9 * (1.0 + a.norm_sqr()));
    }

    #[test]
    fn complex_exp_adds(a in complex_in_box(3.0), b in complex_in_box(3.0)) {
        let lhs = (a + b).exp();
        let rhs = a.exp() * b.exp();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn complex_polar_roundtrip(a in complex_in_box(50.0)) {
        prop_assume!(a.abs() > 1e-9);
        let (r, th) = a.to_polar();
        prop_assert!((Complex::from_polar(r, th) - a).abs() < 1e-10 * a.abs());
    }

    // ---------------- Polynomial ring axioms ----------------

    #[test]
    fn poly_mul_commutes(a in prop::collection::vec(finite_f64(-5.0..5.0), 0..6),
                         b in prop::collection::vec(finite_f64(-5.0..5.0), 0..6)) {
        // Summation order differs between the two products, so compare
        // coefficients approximately (last-ulp differences are expected).
        let p = Poly::new(a);
        let q = Poly::new(b);
        let pq = &p * &q;
        let qp = &q * &p;
        prop_assert_eq!(pq.degree(), qp.degree());
        for k in 0..=pq.degree() {
            prop_assert!((pq.coeff(k) - qp.coeff(k)).abs() <= 1e-10 * (1.0 + pq.coeff(k).abs()));
        }
    }

    #[test]
    fn poly_eval_is_ring_hom(a in prop::collection::vec(finite_f64(-3.0..3.0), 0..5),
                             b in prop::collection::vec(finite_f64(-3.0..3.0), 0..5),
                             x in finite_f64(-2.0..2.0)) {
        let p = Poly::new(a);
        let q = Poly::new(b);
        let sum = (&p + &q).eval(x);
        prop_assert!((sum - (p.eval(x) + q.eval(x))).abs() < 1e-9);
        let prod = (&p * &q).eval(x);
        prop_assert!((prod - p.eval(x) * q.eval(x)).abs() < 1e-7 * (1.0 + prod.abs()));
    }

    #[test]
    fn poly_div_rem_reconstructs(a in prop::collection::vec(finite_f64(-4.0..4.0), 1..7),
                                 b in prop::collection::vec(finite_f64(-4.0..4.0), 1..5)) {
        let p = Poly::new(a);
        let d = Poly::new(b);
        prop_assume!(!d.is_zero());
        prop_assume!(d.leading().abs() > 1e-3);
        let (q, r) = p.div_rem(&d);
        let back = &(&q * &d) + &r;
        // Condition-aware tolerance: a divisor with a tiny leading
        // coefficient produces huge quotient coefficients, and the
        // reconstruction error scales with |q|·|d|.
        let qmax = q.coeffs().iter().map(|c| c.abs()).fold(0.0, f64::max);
        let dmax = d.coeffs().iter().map(|c| c.abs()).fold(0.0, f64::max);
        let pmax = p.coeffs().iter().map(|c| c.abs()).fold(1.0, f64::max);
        let tol = 1e-10 * (pmax + qmax * dmax) * (p.degree() + 1) as f64;
        for k in 0..=p.degree().max(back.degree()) {
            prop_assert!(
                (back.coeff(k) - p.coeff(k)).abs() < tol,
                "k={}: {} vs {} (tol {})", k, back.coeff(k), p.coeff(k), tol
            );
        }
        prop_assert!(r.is_zero() || r.degree() < d.degree());
    }

    #[test]
    fn poly_derivative_is_linear(a in prop::collection::vec(finite_f64(-4.0..4.0), 0..6),
                                 b in prop::collection::vec(finite_f64(-4.0..4.0), 0..6),
                                 k in finite_f64(-3.0..3.0)) {
        let p = Poly::new(a);
        let q = Poly::new(b);
        let lhs = (&p + &q.scale(k)).derivative();
        let rhs = &p.derivative() + &q.derivative().scale(k);
        prop_assert_eq!(lhs.degree(), rhs.degree());
        for i in 0..=lhs.degree() {
            prop_assert!((lhs.coeff(i) - rhs.coeff(i)).abs() < 1e-9);
        }
    }

    // ---------------- Root finding ----------------

    #[test]
    fn roots_reconstruct_polynomial(roots in prop::collection::vec(finite_f64(-3.0..3.0), 1..6)) {
        // Keep roots separated so the reconstruction is well-conditioned.
        let mut rs = roots;
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rs.dedup_by(|a, b| (*a - *b).abs() < 0.2);
        let p = Poly::from_real_roots(&rs);
        let found = find_roots(&p).unwrap();
        prop_assert_eq!(found.len(), rs.len());
        for r in &rs {
            prop_assert!(
                found.iter().any(|z| (*z - Complex::from_re(*r)).abs() < 1e-5),
                "missing root {} in {:?}", r, found
            );
        }
    }

    #[test]
    fn root_residuals_small(coeffs in prop::collection::vec(finite_f64(-5.0..5.0), 2..7)) {
        let p = Poly::new(coeffs);
        prop_assume!(!p.is_zero() && p.degree() >= 1);
        prop_assume!(p.leading().abs() > 1e-3);
        for z in find_roots(&p).unwrap() {
            // Backward-error criterion: |p(z)| small against the
            // evaluation scale Σ|c_k|·|z|^k (an absolute bound is
            // unachievable for far-out roots of ill-scaled inputs).
            let eval_scale: f64 = p
                .coeffs()
                .iter()
                .enumerate()
                .map(|(k, c)| c.abs() * z.abs().powi(k as i32))
                .sum();
            prop_assert!(
                p.eval_complex(z).abs() < 1e-7 * eval_scale.max(1.0),
                "root {} residual {} vs scale {}", z, p.eval_complex(z).abs(), eval_scale
            );
        }
    }

    // ---------------- Linear algebra ----------------

    #[test]
    fn lu_solve_verifies(entries in prop::collection::vec(finite_f64(-2.0..2.0), 32),
                         rhs in prop::collection::vec(finite_f64(-2.0..2.0), 8)) {
        let n = 4;
        let a = CMat::from_fn(n, n, |i, j| {
            let base = entries[2 * (i * n + j)];
            let im = entries[2 * (i * n + j) + 1];
            // Diagonal dominance keeps the system well-conditioned.
            Complex::new(base + if i == j { 8.0 } else { 0.0 }, im)
        });
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(rhs[2 * i], rhs[2 * i + 1])).collect();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((*u - *v).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_roundtrip(entries in prop::collection::vec(finite_f64(-2.0..2.0), 50)) {
        let n = 5;
        let a = CMat::from_fn(n, n, |i, j| {
            Complex::new(
                entries[i * n + j] + if i == j { 10.0 } else { 0.0 },
                entries[(i * n + j + 13) % 50],
            )
        });
        let inv = inverse(&a).unwrap();
        prop_assert!((&a * &inv).max_diff(&CMat::identity(n)) < 1e-9);
        prop_assert!((&inv * &a).max_diff(&CMat::identity(n)) < 1e-9);
    }

    #[test]
    fn matmul_associative(x in prop::collection::vec(finite_f64(-1.0..1.0), 27)) {
        let m = |off: usize| CMat::from_fn(3, 3, |i, j| Complex::from_re(x[(off + i * 3 + j) % 27]));
        let (a, b, c) = (m(0), m(9), m(18));
        let lhs = &(&a * &b) * &c;
        let rhs = &a * &(&b * &c);
        prop_assert!(lhs.max_diff(&rhs) < 1e-10);
    }

    // ---------------- Lattice sums ----------------

    #[test]
    fn lattice_sum_matches_truncation(re in finite_f64(0.05..0.45), im in finite_f64(-0.45..0.45),
                                      order in 2usize..4) {
        let z = Complex::new(re, im);
        let closed = lattice_sum(z, 1.0, order);
        let brute = lattice_sum_truncated(z, 1.0, order, 20_000);
        prop_assert!((closed - brute).abs() < 1e-3 * (1.0 + closed.abs()),
            "order {}: {} vs {}", order, closed, brute);
    }

    #[test]
    fn lattice_sum_periodicity(re in finite_f64(0.05..0.5), im in finite_f64(-0.5..0.5),
                               order in 1usize..4) {
        let z = Complex::new(re, im);
        let a = lattice_sum(z, 1.0, order);
        let b = lattice_sum(z + Complex::from_im(1.0), 1.0, order);
        prop_assert!((a - b).abs() < 1e-8 * (1.0 + a.abs()));
    }

    // ---------------- FFT ----------------

    #[test]
    fn fft_roundtrip_any_length(data in prop::collection::vec(finite_f64(-10.0..10.0), 2..80)) {
        let x: Vec<Complex> = data.chunks(2)
            .map(|c| Complex::new(c[0], c.get(1).copied().unwrap_or(0.0)))
            .collect();
        let y = ifft_any(&fft_any(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_parseval_any_length(data in prop::collection::vec(finite_f64(-10.0..10.0), 3..60)) {
        let x: Vec<Complex> = data.iter().map(|&v| Complex::from_re(v)).collect();
        let y = fft_any(&x);
        let te: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let fe: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((te - fe).abs() < 1e-8 * (1.0 + te));
    }

    #[test]
    fn goertzel_matches_dft_bin(data in prop::collection::vec(finite_f64(-5.0..5.0), 8..64),
                                bin in 0usize..8) {
        let n = data.len();
        let theta = 2.0 * std::f64::consts::PI * bin as f64 / n as f64;
        let g = goertzel(&data, theta);
        let x: Vec<Complex> = data.iter().map(|&v| Complex::from_re(v)).collect();
        let spec = fft_any(&x);
        let reference = spec[bin % n];
        prop_assert!((g - reference).abs() < 1e-7 * (1.0 + reference.abs()));
    }

    // ---------------- Transfer functions & PFE ----------------

    #[test]
    fn tf_feedback_identity(num in prop::collection::vec(finite_f64(-3.0..3.0), 1..3),
                            den in prop::collection::vec(finite_f64(-3.0..3.0), 2..4)) {
        let d = Poly::new(den);
        prop_assume!(!d.is_zero() && d.degree() >= 1 && d.leading().abs() > 1e-2);
        let g = Tf::new(Poly::new(num), d).unwrap();
        let cl = g.feedback_unity().unwrap();
        let s = Complex::new(0.3, 0.9);
        let gv = g.eval(s);
        prop_assume!((Complex::ONE + gv).abs() > 1e-3);
        let expect = gv / (Complex::ONE + gv);
        prop_assert!((cl.eval(s) - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn pfe_reconstructs_separated_poles(poles in prop::collection::vec(finite_f64(-5.0..-0.2), 1..5),
                                        gain in finite_f64(0.1..3.0)) {
        let mut ps = poles;
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ps.dedup_by(|a, b| (*a - *b).abs() < 0.3);
        let tf = Tf::new(Poly::constant(gain), Poly::from_real_roots(&ps)).unwrap();
        let pfe = Pfe::expand(&tf, 1e-6).unwrap();
        for &(re, im) in &[(0.5, 0.5), (1.0, -2.0)] {
            let s = Complex::new(re, im);
            let a = tf.eval(s);
            prop_assert!((pfe.eval(s) - a).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    // ---------------- HTM structure ----------------

    #[test]
    fn lti_htm_is_diagonal(wc in finite_f64(0.2..5.0), w in finite_f64(0.01..3.0), k in 1usize..4) {
        let blk = LtiHtm::new(Tf::first_order_lowpass(wc), 2.0);
        let t = Truncation::new(k);
        let h = blk.htm(Complex::from_im(w), t);
        for n in t.harmonics() {
            for m in t.harmonics() {
                if n != m {
                    prop_assert_eq!(h.band(n, m), Complex::ZERO);
                }
            }
        }
    }

    #[test]
    fn multiplier_htm_is_toeplitz(c0 in finite_f64(-2.0..2.0), c1 in finite_f64(-2.0..2.0),
                                  k in 1usize..4) {
        let blk = MultiplierHtm::from_fourier(
            vec![Complex::from_re(c1), Complex::from_re(c0), Complex::from_re(c1)],
            1.0,
        );
        let t = Truncation::new(k);
        let h = blk.htm(Complex::ZERO, t);
        for n in t.harmonics() {
            for m in t.harmonics() {
                if let (Some(_), Some(_)) = (t.index_of(n - 1), t.index_of(m - 1)) {
                    prop_assert_eq!(h.band(n, m), h.band(n - 1, m - 1));
                }
            }
        }
    }

    #[test]
    fn sampler_htm_rank_one(w0 in finite_f64(0.5..20.0), k in 1usize..4) {
        let blk = SamplerHtm::new(w0);
        let t = Truncation::new(k);
        let h = blk.htm(Complex::from_im(0.3), t);
        // All 2×2 minors vanish.
        for n in t.harmonics().skip(1) {
            for m in t.harmonics().skip(1) {
                let det = h.band(n, m) * h.band(n - 1, m - 1) - h.band(n, m - 1) * h.band(n - 1, m);
                prop_assert!(det.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn series_composition_matches_operator_order(w in finite_f64(0.05..2.0)) {
        // (VCO ∘ sampler) as matrices equals evaluating blocks in order.
        let w0 = 4.0;
        let t = Truncation::new(3);
        let s = Complex::from_im(w);
        let pfd = SamplerHtm::new(w0);
        let vco = VcoHtm::time_invariant(1.5, w0);
        let manual = &vco.htm(s, t) * &pfd.htm(s, t);
        let composed = htmpll::htm::series(&[&pfd, &vco], s, t);
        prop_assert!(manual.as_matrix().max_diff(composed.as_matrix()) < 1e-13);
    }

    // ---------------- Scalar root refinement ----------------

    #[test]
    fn brent_finds_planted_root(root in finite_f64(-5.0..5.0), scale in finite_f64(0.5..3.0)) {
        let f = move |x: f64| scale * (x - root) * (1.0 + 0.1 * (x - root).powi(2));
        let r = brent(f, root - 2.0, root + 2.0, 1e-13, 200).unwrap();
        prop_assert!((r - root).abs() < 1e-9);
    }

    #[test]
    fn lin_grid_monotone(a in finite_f64(-10.0..10.0), span in finite_f64(0.1..10.0), n in 2usize..50) {
        let g = lin_grid(a, a + span, n);
        prop_assert_eq!(g.len(), n);
        for w in g.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }
}

// Additional property tests over the analysis layers.

proptest! {
    #[test]
    fn lattice_derivative_matches_finite_difference(
        re in finite_f64(0.1..0.4), im in finite_f64(-0.4..0.4), order in 1usize..3
    ) {
        use htmpll::num::special::lattice_sum;
        let z = Complex::new(re, im);
        let h = 1e-6;
        let fd = (lattice_sum(z + Complex::from_re(h), 1.0, order)
            - lattice_sum(z - Complex::from_re(h), 1.0, order))
            / (2.0 * h);
        let exact = -(order as f64) * lattice_sum(z, 1.0, order + 1);
        prop_assert!((fd - exact).abs() < 1e-4 * (1.0 + exact.abs()),
            "fd {} vs exact {}", fd, exact);
    }

    #[test]
    fn pade_is_all_pass_and_stable(tau in finite_f64(0.05..3.0), order in 1usize..7) {
        use htmpll::lti::pade_delay;
        let d = pade_delay(tau, order).unwrap();
        for w in [0.1, 1.0, 10.0] {
            prop_assert!((d.eval_jw(w).abs() - 1.0).abs() < 1e-9);
        }
        for p in d.poles().unwrap() {
            prop_assert!(p.re < 0.0, "unstable pole {}", p);
        }
    }

    #[test]
    fn jury_matches_roots_on_random_polys(
        coeffs in prop::collection::vec(finite_f64(-1.5..1.5), 2..6)
    ) {
        use htmpll::num::roots::find_roots;
        use htmpll::zdomain::jury_stable;
        let p = Poly::new(coeffs);
        prop_assume!(!p.is_zero() && p.degree() >= 1);
        prop_assume!(p.leading().abs() > 0.05);
        let roots = find_roots(&p).unwrap();
        // Skip near-marginal cases where both methods are tolerance-bound.
        prop_assume!(roots.iter().all(|z| (z.abs() - 1.0).abs() > 1e-3));
        let by_roots = roots.iter().all(|z| z.abs() < 1.0);
        prop_assert_eq!(jury_stable(&p).unwrap(), by_roots);
    }

    #[test]
    fn effective_gain_conjugate_symmetry(ratio in finite_f64(0.05..0.3), w in finite_f64(0.05..2.0)) {
        use htmpll::core::{EffectiveGain, PllDesign};
        let d = PllDesign::reference_design(ratio).unwrap();
        let lam = EffectiveGain::new(&d.open_loop_gain(), d.omega_ref()).unwrap();
        let a = lam.eval(Complex::from_im(w));
        let b = lam.eval(Complex::from_im(-w));
        prop_assert!((a.conj() - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn closed_loop_smw_equals_dense_randomized(
        ratio in finite_f64(0.05..0.25), w in finite_f64(0.05..2.0), k in 2usize..6
    ) {
        use htmpll::core::{PllDesign, PllModel};
        let m = PllModel::builder(PllDesign::reference_design(ratio).unwrap()).build().unwrap();
        let t = Truncation::new(k);
        let s = Complex::from_im(w);
        let fast = m.closed_loop_htm(s, t);
        let dense = m.closed_loop_htm_dense(s, t).unwrap();
        prop_assert!(fast.as_matrix().max_diff(dense.as_matrix()) < 1e-9);
    }

    #[test]
    fn impulse_invariant_matches_time_samples(
        a in finite_f64(0.3..4.0), t in finite_f64(0.1..1.0), k in 0usize..10
    ) {
        use htmpll::zdomain::impulse_invariant;
        let p = Tf::from_coeffs(vec![1.0], vec![a, 1.0]).unwrap();
        let g = impulse_invariant(&p, t).unwrap();
        let series = g.impulse_response(k + 1);
        let expect = (-a * t * k as f64).exp();
        prop_assert!((series[k] - expect).abs() < 1e-9 * (1.0 + expect));
    }

    #[test]
    fn noise_shapes_nonnegative(w in finite_f64(0.001..100.0), lvl in finite_f64(1e-15..1e-6)) {
        use htmpll::core::NoiseShape;
        let shapes = [
            NoiseShape::White { level: lvl },
            NoiseShape::PowerLaw { level_at_ref: lvl, w_ref: 1.0, exponent: 2 },
            NoiseShape::Leeson { floor: lvl, flicker_corner: 0.1, half_bw: 1.0 },
        ];
        for s in shapes {
            let v = s.psd(w);
            prop_assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    fn window_gains_bounded(n in 8usize..512) {
        use htmpll::spectral::Window;
        for w in [Window::Rectangular, Window::Hann, Window::Hamming, Window::BlackmanHarris] {
            let cg = w.coherent_gain(n);
            let pg = w.power_gain(n);
            prop_assert!(cg > 0.0 && cg <= 1.0 + 1e-12);
            prop_assert!(pg > 0.0 && pg <= 1.0 + 1e-12);
            prop_assert!(w.enbw_bins(n) >= 1.0 - 1e-9);
        }
    }
}

proptest! {
    #[test]
    fn eigenvalue_trace_invariant(entries in prop::collection::vec(finite_f64(-2.0..2.0), 32)) {
        use htmpll::num::eigenvalues;
        let n = 4;
        let a = CMat::from_fn(n, n, |i, j| {
            Complex::new(entries[2 * (i * n + j)], entries[2 * (i * n + j) + 1])
        });
        let evs = eigenvalues(&a).unwrap();
        prop_assert_eq!(evs.len(), n);
        let tr: Complex = (0..n).map(|i| a[(i, i)]).sum();
        let sum: Complex = evs.iter().copied().sum();
        prop_assert!((tr - sum).abs() < 1e-8 * (1.0 + tr.abs()),
            "trace {} vs eig sum {}", tr, sum);
    }

    #[test]
    fn eigenvalue_det_invariant(entries in prop::collection::vec(finite_f64(-2.0..2.0), 18)) {
        use htmpll::num::{eigenvalues, Lu};
        let n = 3;
        let a = CMat::from_fn(n, n, |i, j| {
            Complex::new(
                entries[2 * (i * n + j)] + if i == j { 3.0 } else { 0.0 },
                entries[2 * (i * n + j) + 1],
            )
        });
        let evs = eigenvalues(&a).unwrap();
        let det = Lu::factor(&a).unwrap().det();
        let prod: Complex = evs.iter().copied().product();
        prop_assert!((det - prod).abs() < 1e-7 * (1.0 + det.abs()),
            "det {} vs eig product {}", det, prod);
    }

    #[test]
    fn similarity_preserves_eigenvalues(entries in prop::collection::vec(finite_f64(-1.5..1.5), 18)) {
        use htmpll::num::eig::hessenberg;
        use htmpll::num::eigenvalues;
        let n = 3;
        let a = CMat::from_fn(n, n, |i, j| {
            Complex::new(entries[2 * (i * n + j)], entries[2 * (i * n + j) + 1])
        });
        let mut e1 = eigenvalues(&a).unwrap();
        let mut e2 = eigenvalues(&hessenberg(&a).unwrap()).unwrap();
        let key = |z: &Complex| (z.re, z.im);
        e1.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
        e2.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
        for (x, y) in e1.iter().zip(&e2) {
            prop_assert!((*x - *y).abs() < 1e-7 * (1.0 + x.abs()));
        }
    }
}

proptest! {
    #[test]
    fn period_map_is_linear_under_linear_law(
        ratio in finite_f64(0.05..0.2), a in finite_f64(-2e-3..2e-3), b in finite_f64(-2e-3..2e-3)
    ) {
        use htmpll::core::PllDesign;
        use htmpll::sim::{PeriodMap, PulseLaw, SimParams};
        let params = SimParams::from_design(&PllDesign::reference_design(ratio).unwrap());
        let run = |amp: f64| {
            let mut m = PeriodMap::new(&params, PulseLaw::Linear);
            m.run(40, |k| amp * ((k as f64) * 0.37).sin())
        };
        let ya = run(a);
        let yb = run(b);
        let yab = run(a + b);
        for ((x, y), z) in ya.iter().zip(&yb).zip(&yab) {
            prop_assert!((x + y - z).abs() < 1e-12 * (1.0 + z.abs()),
                "superposition violated: {} + {} vs {}", x, y, z);
        }
    }

    #[test]
    fn expm_inverse_property(entries in prop::collection::vec(finite_f64(-0.8..0.8), 18)) {
        use htmpll::num::mat::expm;
        let n = 3;
        let a = CMat::from_fn(n, n, |i, j| {
            Complex::new(entries[2 * (i * n + j)], entries[2 * (i * n + j) + 1])
        });
        let e = expm(&a).unwrap();
        let einv = expm(&a.scale(Complex::from_re(-1.0))).unwrap();
        prop_assert!((&e * &einv).max_diff(&CMat::identity(n)) < 1e-9);
    }

    #[test]
    fn tf_estimate_recovers_random_fir(taps in prop::collection::vec(finite_f64(-1.0..1.0), 1..5)) {
        use htmpll::spectral::tf_estimate;
        // Deterministic noise through a random FIR filter.
        let mut state = 0xabcdef12345u64;
        let x: Vec<f64> = (0..1 << 13)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 32) as u32 as f64) / (u32::MAX as f64) - 0.5
            })
            .collect();
        let mut y = vec![0.0; x.len()];
        for k in taps.len()..x.len() {
            y[k] = taps.iter().enumerate().map(|(j, &t)| t * x[k - j]).sum();
        }
        let est = tf_estimate(&x, &y, 1.0, 512);
        for bin in est.iter().step_by(41) {
            let z = Complex::cis(-2.0 * std::f64::consts::PI * bin.frequency);
            let expect: Complex = taps
                .iter()
                .enumerate()
                .map(|(j, &t)| z.powi(j as i32).scale(t))
                .sum();
            prop_assume!(expect.abs() > 0.05); // skip near-nulls of the FIR
            prop_assert!(
                (bin.h - expect).abs() < 0.1 * (1.0 + expect.abs()),
                "f={}: {} vs {}", bin.frequency, bin.h, expect
            );
        }
    }
}
