//! Cross-stack differential verification, exercised through the facade.
//!
//! The quick corpus must reconcile the λ(s), z-domain, and time-domain
//! stacks with zero mismatches, and the report digest must be identical
//! across repeated runs and thread budgets — the corpus is the contract
//! that the three models describe the same physics.

use htmpll::par::ThreadBudget;
use htmpll::prelude::*;

#[test]
fn quick_corpus_has_no_cross_stack_mismatches() {
    let report = run_corpus("quick", ThreadBudget::Fixed(1)).expect("quick corpus runs");
    assert_eq!(
        report.mismatches(),
        0,
        "cross-stack mismatches:\n{}",
        report.render_table()
    );
    // Every scenario must contribute checks; an empty scenario would mean
    // a stack silently dropped out of the reconciliation.
    for s in &report.scenarios {
        assert!(
            !s.checks.is_empty(),
            "scenario {} ran no checks",
            s.scenario
        );
    }
    assert!(report.total_checks() >= 20, "corpus too thin");
}

#[test]
fn report_digest_is_deterministic_across_thread_budgets() {
    let r1 = run_corpus("quick", ThreadBudget::Fixed(1)).expect("threads=1");
    let r4 = run_corpus("quick", ThreadBudget::Fixed(4)).expect("threads=4");
    assert_eq!(r1.digest(), r4.digest(), "digest varies with thread count");
    assert_eq!(
        r1.to_json(),
        r4.to_json(),
        "report varies with thread count"
    );
}

#[test]
fn unknown_corpus_is_rejected() {
    assert!(run_corpus("no-such-corpus", ThreadBudget::Fixed(1)).is_err());
}
