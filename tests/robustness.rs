//! Adversarial robustness suite: the numerical core must never panic
//! through its public APIs, no matter how hostile the input — on-pole
//! frequency points, singular and near-singular closed-loop matrices,
//! NaN/∞ injection, degenerate designs, and 100+ seeds of random
//! fuzzing through the vendored xoshiro PRNG. Everything here is
//! deterministic: fixed seeds, no wall-clock, no ambient randomness.

use htmpll::core::{
    analyze_with, PllDesign, PllModel, PointQuality, SweepCache, SweepSpec, MAX_AUTO_TRUNCATION,
};
use htmpll::htm::{Htm, Truncation};
use htmpll::lti::Tf;
use htmpll::num::rng::Rng;
use htmpll::num::{
    solve_robust, BandLu, BandMat, CMat, Complex, FullPivLu, LuError, RobustLu, SolveStage,
};
use htmpll::par::ThreadBudget;

fn model(ratio: f64) -> PllModel {
    PllModel::builder(PllDesign::reference_design(ratio).unwrap())
        .build()
        .unwrap()
}

fn c(re: f64, im: f64) -> Complex {
    Complex::new(re, im)
}

/// Random complex matrix with entries spanning many orders of
/// magnitude — the kind of dynamic range a sweep near a closed-loop
/// pole actually produces.
fn random_matrix(rng: &mut Rng, n: usize, log_scale: f64) -> CMat {
    let scale = 10f64.powf(log_scale);
    let data: Vec<Complex> = (0..n * n)
        .map(|_| c(rng.gaussian() * scale, rng.gaussian() * scale))
        .collect();
    CMat::from_rows(n, n, &data)
}

// ---------------------------------------------------------------------
// On-pole sweeps: the open-loop HTM diverges exactly at s = j·m·ω₀.
// ---------------------------------------------------------------------

#[test]
fn on_pole_sweep_completes_with_partial_results() {
    let m = model(0.2);
    let w0 = m.design().omega_ref();
    // Two poisoned points (the aliased-integrator poles at ω₀ and 2ω₀)
    // surrounded by perfectly ordinary frequencies.
    let grid = vec![0.05 * w0, 0.3 * w0, w0, 0.44 * w0, 2.0 * w0, 0.1 * w0];
    let spec = SweepSpec::new(grid.clone()).with_threads(1usize);
    let out = m.closed_loop_htm_grid_robust(&spec, &SweepCache::new());

    assert_eq!(out.len(), grid.len(), "no point may abort the sweep");
    for (i, p) in out.points.iter().enumerate() {
        let on_pole = i == 2 || i == 4;
        if on_pole {
            assert!(
                !p.quality.is_usable(),
                "point {i} sits on an aliased-integrator pole, got {:?}",
                p.quality
            );
            assert!(p.value.is_none());
        } else {
            assert!(
                p.quality.is_usable(),
                "ordinary point {i} must stay usable, got {:?}",
                p.quality
            );
            let htm = p.value.as_ref().expect("usable point carries a value");
            assert!(htm.as_matrix().is_finite());
        }
    }
    let s = out.summary();
    assert_eq!(s.failed, 2);
    assert_eq!(s.total(), grid.len());
}

#[test]
fn strict_sweep_errors_cleanly_on_pole_instead_of_panicking() {
    let m = model(0.2);
    let w0 = m.design().omega_ref();
    let spec = SweepSpec::new(vec![0.1 * w0, w0]).with_threads(1usize);
    let err = m
        .closed_loop_htm_grid_cached(&spec, &SweepCache::new())
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("grid point 1"),
        "error must name the failing point: {msg}"
    );
}

// ---------------------------------------------------------------------
// Singular and near-singular I + G̃.
// ---------------------------------------------------------------------

#[test]
fn exactly_singular_closed_loop_is_perturbed_not_fatal() {
    // G̃ = −I makes I + G̃ the zero matrix: singular at every step.
    let trunc = Truncation::new(3);
    let g = Htm::identity(trunc, 1.0).scale(-Complex::ONE);
    let (_, closed, report) = g.closed_loop_factored_robust().unwrap();
    assert!(report.perturbed);
    assert_eq!(report.accepted_stage(), SolveStage::Tikhonov);
    assert!(closed.as_matrix().is_finite());
}

#[test]
fn near_singular_matrices_solve_finitely_across_scales() {
    // A rank-deficient-to-working-precision matrix at many scales: two
    // identical rows separated by a relative 1e-15 perturbation.
    for &log_scale in &[-12.0, -6.0, 0.0, 6.0, 12.0] {
        let scale = 10f64.powf(log_scale);
        let a = CMat::from_rows(
            3,
            3,
            &[
                c(scale, 0.0),
                c(2.0 * scale, 0.0),
                c(3.0 * scale, 0.0),
                c(scale * (1.0 + 1e-15), 0.0),
                c(2.0 * scale, 0.0),
                c(3.0 * scale, 0.0),
                c(0.0, scale),
                c(scale, 0.0),
                c(0.0, 0.0),
            ],
        );
        let lu = RobustLu::factor(&a).unwrap();
        let b = vec![c(scale, 0.0), c(scale, 0.0), c(0.0, scale)];
        let x = lu.solve(&b).unwrap();
        assert!(
            x.value.iter().all(|z| z.re.is_finite() && z.im.is_finite()),
            "scale 1e{log_scale}: non-finite solution"
        );
        let report = lu.report();
        assert!(report.cond_estimate.is_finite());
        assert!(!report.stages_tried.is_empty());
    }
}

// ---------------------------------------------------------------------
// NaN/∞ injection: every public entry point must return an error, not
// propagate poison or panic.
// ---------------------------------------------------------------------

#[test]
fn nan_and_inf_matrices_are_rejected() {
    let mut a = CMat::identity(3);
    a[(1, 1)] = c(f64::NAN, 0.0);
    assert_eq!(RobustLu::factor(&a).unwrap_err(), LuError::NonFinite);
    assert_eq!(FullPivLu::factor(&a).unwrap_err(), LuError::NonFinite);

    let mut b = CMat::identity(3);
    b[(0, 2)] = c(0.0, f64::INFINITY);
    assert_eq!(RobustLu::factor(&b).unwrap_err(), LuError::NonFinite);
    assert_eq!(
        solve_robust(&b, &[Complex::ONE; 3]).unwrap_err(),
        LuError::NonFinite
    );
}

#[test]
fn nan_rhs_is_rejected_after_a_good_factorization() {
    let a = CMat::identity(3);
    let lu = RobustLu::factor(&a).unwrap();
    let bad = vec![Complex::ONE, c(f64::NAN, 0.0), Complex::ONE];
    assert_eq!(lu.solve(&bad).unwrap_err(), LuError::NonFinite);
    let short = vec![Complex::ONE; 2];
    assert_eq!(lu.solve(&short).unwrap_err(), LuError::DimensionMismatch);
}

#[test]
fn non_finite_laplace_points_fail_with_a_reason() {
    let m = model(0.2);
    let cache = SweepCache::new();
    let trunc = Truncation::new(2);
    for s in [
        c(f64::NAN, 0.0),
        c(0.0, f64::NAN),
        c(f64::INFINITY, 1.0),
        c(1.0, f64::NEG_INFINITY),
    ] {
        let err = cache.dense_robust(&m, s, trunc).unwrap_err();
        assert!(
            err.contains("non-finite"),
            "s = {s}: reason must mention non-finiteness, got {err}"
        );
    }
}

// ---------------------------------------------------------------------
// Degenerate designs.
// ---------------------------------------------------------------------

#[test]
fn zero_bandwidth_loop_filter_never_panics() {
    // Z_LF(s) ≡ 0: the loop is broken open, the closed-loop HTM is the
    // identity. Every layer must take this in stride.
    let design = PllDesign::builder()
        .f_ref(1.0)
        .icp(1.0)
        .kvco(1.0)
        .divider(1.0)
        .filter(htmpll::core::LoopFilter::Custom(Tf::constant(0.0)))
        .build();
    let Ok(design) = design else {
        // A validating rejection is an equally acceptable non-panic.
        return;
    };
    let Ok(m) = PllModel::builder(design).build() else {
        return;
    };
    let w0 = m.design().omega_ref();
    let cache = SweepCache::new();
    for w in [0.01 * w0, 0.25 * w0, 0.45 * w0] {
        match cache.dense_robust(&m, Complex::from_im(w), Truncation::new(2)) {
            Ok(d) => assert!(d.htm.as_matrix().is_finite()),
            Err(reason) => assert!(!reason.is_empty()),
        }
        let h = m.h00(w);
        assert!(h.re.is_finite() || h.re.is_nan()); // defined either way, no panic
    }
}

#[test]
fn extreme_truncation_orders_stay_usable() {
    let m = model(0.1);
    let w0 = m.design().omega_ref();
    let cache = SweepCache::new();
    for k in [0usize, 1, MAX_AUTO_TRUNCATION] {
        let d = cache
            .dense_robust(&m, Complex::from_im(0.3 * w0), Truncation::new(k))
            .unwrap_or_else(|e| panic!("K = {k} failed: {e}"));
        assert!(d.quality.is_usable());
        assert!(d.htm.as_matrix().is_finite());
    }
}

// ---------------------------------------------------------------------
// Seeded fuzzing: ≥100 deterministic seeds through the vendored
// xoshiro PRNG. The contract under test is "never panic, never return
// poisoned values without an error".
// ---------------------------------------------------------------------

#[test]
fn hundred_seed_matrix_fuzz_never_panics() {
    for seed in 0..100u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let n = 2 + (rng.next_u64() % 5) as usize; // 2..=6
        let log_scale = rng.range(-8.0, 8.0);
        let mut a = random_matrix(&mut rng, n, log_scale);

        // Every fifth seed: exact singularity (duplicate a row).
        if seed % 5 == 0 {
            for j in 0..n {
                let v = a[(0, j)];
                a[(n - 1, j)] = v;
            }
        }
        // Every seventh seed: poison one entry.
        let poisoned = seed % 7 == 0;
        if poisoned {
            let i = (rng.next_u64() % n as u64) as usize;
            let j = (rng.next_u64() % n as u64) as usize;
            a[(i, j)] = c(f64::NAN, 0.0);
        }

        let b: Vec<Complex> = (0..n).map(|_| c(rng.gaussian(), rng.gaussian())).collect();
        match RobustLu::factor(&a) {
            Err(e) => {
                if poisoned {
                    assert_eq!(e, LuError::NonFinite, "seed {seed}");
                }
            }
            Ok(lu) => {
                assert!(!poisoned, "seed {seed}: NaN matrix must not factor");
                match lu.solve(&b) {
                    Ok(x) => {
                        assert!(
                            x.value.iter().all(|z| z.re.is_finite() && z.im.is_finite()),
                            "seed {seed}: Ok solve returned non-finite entries"
                        );
                        assert!(x.residual.is_finite() || x.residual.is_nan());
                    }
                    Err(e) => assert_ne!(e, LuError::NotSquare, "seed {seed}"),
                }
                let report = lu.report();
                if report.perturbed {
                    assert_eq!(report.accepted_stage(), SolveStage::Tikhonov, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn seeded_design_sweeps_never_panic() {
    // 32 random loop designs × 5 random frequencies each (with a
    // guaranteed on-pole probe), all through the graceful grid.
    for seed in 100..132u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let ratio = rng.range(0.02, 0.48);
        let m = model(ratio);
        let w0 = m.design().omega_ref();
        let mut grid: Vec<f64> = (0..4).map(|_| rng.range(1e-3, 4.9) * w0).collect();
        grid.push(w0); // always probe the pole itself
        let spec = SweepSpec::new(grid.clone()).with_threads(1usize);
        let out = m.closed_loop_htm_grid_robust(&spec, &SweepCache::new());
        assert_eq!(out.len(), grid.len(), "seed {seed}");
        for (p, &w) in out.points.iter().zip(&grid) {
            match (&p.quality, &p.value) {
                (PointQuality::Failed { reason }, None) => {
                    assert!(!reason.is_empty(), "seed {seed} ω = {w}")
                }
                (q, Some(htm)) => {
                    assert!(q.is_usable(), "seed {seed} ω = {w}: value with {q:?}");
                    assert!(htm.as_matrix().is_finite(), "seed {seed} ω = {w}");
                }
                (q, None) => panic!("seed {seed} ω = {w}: no value but quality {q:?}"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Verdict determinism: quality grades are part of the thread-count
// bitwise-identity contract, not just the values.
// ---------------------------------------------------------------------

#[test]
fn verdicts_and_values_bitwise_identical_across_thread_counts() {
    let m = model(0.25);
    let w0 = m.design().omega_ref();
    // Ordinary, near-pole, and exactly-on-pole points mixed together.
    let grid = vec![
        0.07 * w0,
        w0 * (1.0 - 1e-9),
        w0,
        0.33 * w0,
        2.0 * w0,
        0.45 * w0,
    ];
    let run = |threads: usize| {
        let spec = SweepSpec::new(grid.clone()).with_threads(threads);
        m.closed_loop_htm_grid_robust(&spec, &SweepCache::new())
    };
    let one = run(1);
    for threads in [2, 4] {
        let many = run(threads);
        assert_eq!(one.len(), many.len());
        for (i, (a, b)) in one.points.iter().zip(&many.points).enumerate() {
            assert_eq!(
                a.quality, b.quality,
                "point {i} verdict @ {threads} threads"
            );
            assert_eq!(
                a.cond.to_bits(),
                b.cond.to_bits(),
                "point {i} cond @ {threads} threads"
            );
            assert_eq!(
                a.residual.to_bits(),
                b.residual.to_bits(),
                "point {i} residual @ {threads} threads"
            );
            match (&a.value, &b.value) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    let (mx, my) = (x.as_matrix(), y.as_matrix());
                    for r in 0..mx.rows() {
                        for cidx in 0..mx.cols() {
                            assert_eq!(
                                mx[(r, cidx)].re.to_bits(),
                                my[(r, cidx)].re.to_bits(),
                                "point {i} entry ({r},{cidx}) @ {threads} threads"
                            );
                            assert_eq!(
                                mx[(r, cidx)].im.to_bits(),
                                my[(r, cidx)].im.to_bits(),
                                "point {i} entry ({r},{cidx}) @ {threads} threads"
                            );
                        }
                    }
                }
                _ => panic!("point {i}: value presence differs across thread counts"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Banded LU vs dense LU: the structured kernel must agree with the
// dense reference on random banded complex systems across 24 decades
// of scale, and must never accept a factorization it cannot defend.
// ---------------------------------------------------------------------

#[test]
fn banded_lu_matches_dense_lu_across_24_decades() {
    // log10 scales −12..=+12 inclusive: 24 decades of dynamic range.
    for seed in 0..120u64 {
        let mut rng = Rng::seed_from_u64(0xBA2DEDu64 ^ seed);
        let n = 4 + (rng.next_u64() % 13) as usize; // 4..=16
        let b = (rng.next_u64() % 4) as usize; // 0..=3
        let log_scale = -12.0 + (seed % 25) as f64; // −12..=+12
        let scale = 10f64.powf(log_scale);
        let a = BandMat::from_fn(n, b, |i, j| {
            let _ = (i, j);
            c(rng.gaussian() * scale, rng.gaussian() * scale)
        });
        let rhs: Vec<Complex> = (0..n)
            .map(|_| c(rng.gaussian() * scale, rng.gaussian() * scale))
            .collect();

        let dense = a.to_dense();
        let reference = match FullPivLu::factor(&dense) {
            Ok(lu) => match lu.solve(&rhs) {
                Ok(x) => x,
                Err(_) => continue, // singular draw: nothing to compare
            },
            Err(_) => continue,
        };
        let ref_norm: f64 = reference.iter().map(|z| z.abs()).fold(0.0, f64::max);

        // Pure banded factorization, when it accepts the matrix.
        if let Ok(blu) = BandLu::factor(&a) {
            if blu.pivot_growth() < 1e8 {
                let x = blu.solve(&rhs).unwrap();
                let diff: f64 = x
                    .iter()
                    .zip(&reference)
                    .map(|(p, q)| (*p - *q).abs())
                    .fold(0.0, f64::max);
                assert!(
                    diff <= 1e-8 * ref_norm.max(f64::MIN_POSITIVE),
                    "seed {seed} (n={n} b={b} scale=1e{log_scale}): \
                     banded vs dense diff {diff:.3e} vs norm {ref_norm:.3e}"
                );
            }
        }

        // The gated ladder entry must agree regardless of which rung
        // accepted, and must report the Banded rung as first evidence.
        let r = RobustLu::factor_banded(&a).unwrap();
        assert_eq!(
            r.report().stages_tried[0],
            SolveStage::Banded,
            "seed {seed}"
        );
        let x = r.solve(&rhs).unwrap();
        if !r.report().perturbed {
            let diff: f64 = x
                .value
                .iter()
                .zip(&reference)
                .map(|(p, q)| (*p - *q).abs())
                .fold(0.0, f64::max);
            assert!(
                diff <= 1e-6 * ref_norm.max(f64::MIN_POSITIVE),
                "seed {seed} (n={n} b={b} scale=1e{log_scale}): \
                 ladder vs dense diff {diff:.3e} vs norm {ref_norm:.3e}"
            );
        }
        assert!(
            x.value.iter().all(|z| z.re.is_finite() && z.im.is_finite()),
            "seed {seed}: ladder returned non-finite entries"
        );
    }
}

// ---------------------------------------------------------------------
// Whole-analysis quality roll-up.
// ---------------------------------------------------------------------

#[test]
fn analysis_quality_summary_is_consistent() {
    for ratio in [0.05, 0.25, 0.45] {
        let m = model(ratio);
        let report = analyze_with(&m, ThreadBudget::Fixed(1)).unwrap();
        let q = &report.quality;
        assert_eq!(
            q.exact + q.refined + q.perturbed + q.failed,
            q.total(),
            "ratio {ratio}"
        );
        assert!(q.total() > 0, "ratio {ratio}: summary must cover points");
        assert!(
            q.worst_cond.is_finite() || q.total() == q.failed,
            "ratio {ratio}"
        );
    }
}
