//! Integration tests for deadlines and cancellation across the stack:
//! the partial-grid determinism contract (cancellation decides *whether*
//! a point computes, never *what*), thread-count invariance of the
//! completed points, and the serve front-end's structured retryable
//! `code:deadline` responses under a tight `--deadline-ms`.

use htmpll::core::{PllDesign, PllModel, SweepCache, SweepSpec};
use htmpll::htm::Truncation;
use htmpll::par::Deadline;
use std::io::Write;
use std::process::{Command, Stdio};

fn model(ratio: f64) -> PllModel {
    PllModel::builder(PllDesign::reference_design(ratio).expect("design"))
        .build()
        .expect("model")
}

/// A sweep cancelled mid-grid returns a partial `GridOutcome` whose
/// completed points are bitwise identical to the uncancelled run — for
/// one worker and for several. The set of *which* points complete may
/// differ with thread count (chunks race the budget), but the values
/// never do.
#[test]
fn cancelled_sweep_partials_are_bitwise_identical_for_1_and_n_threads() {
    let m = model(0.2);
    let base = SweepSpec::log(0.1, 2.0, 16)
        .expect("grid")
        .with_truncation(Truncation::new(3));
    let full = m.closed_loop_htm_grid_robust(&base.clone().with_threads(1), &SweepCache::new());
    assert_eq!(full.summary().failed, 0, "uncancelled run completes");

    for threads in [1usize, 4] {
        let spec = base
            .clone()
            .with_threads(threads)
            .with_deadline(Deadline::after_checks(5));
        let out = m.closed_loop_htm_grid_robust(&spec, &SweepCache::new());
        assert_eq!(out.len(), 16);
        let done = out.points.iter().filter(|p| p.value.is_some()).count();
        assert!(
            done > 0 && done < 16,
            "{threads} threads: {done} of 16 completed"
        );
        for (p, f) in out.points.iter().zip(&full.points) {
            match &p.value {
                Some(h) => {
                    let fh = f.value.as_ref().expect("full run has every point");
                    assert_eq!(
                        h.as_matrix().max_diff(fh.as_matrix()),
                        0.0,
                        "{threads} threads: completed point differs from uncancelled run"
                    );
                }
                None => assert!(p.is_deadline_exceeded(), "{:?}", p.quality),
            }
        }
        assert_eq!(out.summary().failed, 16 - done);
    }
}

/// An immediately-expired deadline still yields a well-formed outcome:
/// every point carries the deadline verdict, none a stale value.
#[test]
fn fully_expired_deadline_fails_every_point_gracefully() {
    let m = model(0.15);
    let spec = SweepSpec::log(0.1, 1.0, 6)
        .expect("grid")
        .with_truncation(Truncation::new(2))
        .with_deadline(Deadline::after_checks(0));
    let out = m.closed_loop_htm_grid_robust(&spec, &SweepCache::new());
    assert_eq!(out.len(), 6);
    assert!(out.points.iter().all(|p| p.is_deadline_exceeded()));
    assert_eq!(out.summary().failed, 6);
}

/// `plltool serve --deadline-ms` over a real pipe: a heavyweight sweep
/// under a 1 ms budget answers with a structured retryable
/// `code:deadline` error (or a degraded partial) instead of hanging,
/// and the process exits cleanly.
#[test]
fn serve_deadline_ms_answers_instead_of_hanging() {
    let exe = env!("CARGO_BIN_EXE_plltool");
    let mut child = Command::new(exe)
        .args(["serve", "--deadline-ms", "1", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn plltool serve");
    {
        let stdin = child.stdin.as_mut().expect("stdin");
        for i in 0..4 {
            writeln!(
                stdin,
                "{{\"id\":{i},\"command\":\"sweep\",\"params\":{{\"from\":0.05,\"to\":0.3,\"points\":60}}}}"
            )
            .expect("write request");
        }
    }
    let out = child.wait_with_output().expect("serve run");
    assert!(out.status.success(), "serve exited nonzero");
    let text = String::from_utf8(out.stdout).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "every request answered: {text}");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"schema\":\"plltool/v1\",\"id\":{i},")),
            "in-order ids: {line}"
        );
        // Under a 1 ms budget the 60-ratio sweep either errs with a
        // retryable deadline or returns a degraded partial result.
        let deadline_err =
            line.contains("\"code\":\"deadline\"") && line.contains("\"retryable\":true");
        let degraded = line.contains("\"degradation\":[");
        assert!(
            deadline_err || degraded,
            "expected deadline error or degraded partial: {line}"
        );
    }
}
