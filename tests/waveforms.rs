//! Sample-by-sample waveform validation: the closed-loop HTM predicts
//! the **entire periodic steady-state waveform** (all sidebands), not
//! just scalar transfer magnitudes. Synthesize it and hold it against
//! the raw simulator trace.

use htmpll::core::{PllDesign, PllModel};
use htmpll::htm::{tone_response, Truncation};
use htmpll::num::Complex;
use htmpll::sim::{PllSim, SimConfig, SimParams};

#[test]
fn htm_synthesized_waveform_matches_simulator_trace() {
    let ratio = 0.2;
    let design = PllDesign::reference_design(ratio).unwrap();
    let model = PllModel::builder(design.clone()).build().unwrap();
    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();
    let t_ref = params.t_ref;

    // Stimulus: a small reference phase tone, commensurate with the
    // sample grid so the steady state is strictly periodic over the
    // record.
    let dt = t_ref / cfg.samples_per_ref as f64;
    let w = {
        let samples_per_cycle = ((2.0 * std::f64::consts::PI / 0.9) / dt).round();
        2.0 * std::f64::consts::PI / (samples_per_cycle * dt)
    };
    let amp = 2e-4 * t_ref;
    let modulation = move |t: f64| amp * (w * t).sin();

    let mut sim = PllSim::new(params, cfg);
    let _ = sim.run(400.0 * t_ref, &modulation); // settle to periodic SS
    let trace = sim.run(60.0 * t_ref, &modulation);

    // HTM synthesis: input sin(ωt) has positive-frequency amplitude
    // amp/(2j) in band 0; the output's analytic half is the HTM column.
    let htm = model.closed_loop_htm(Complex::from_im(w), Truncation::new(24));
    let u = Complex::from_re(amp) / Complex::new(0.0, 2.0);
    let spec = tone_response(&htm, w, 0, u);

    let ts: Vec<f64> = (0..trace.theta_vco.len())
        .map(|k| trace.t0 + k as f64 * trace.dt)
        .collect();
    let predicted = spec.waveform_real(&ts);

    // Pointwise comparison across ~1900 samples: the HTM comb must
    // reproduce the simulated waveform including its once-per-period
    // ripple, to within the truncation + pulse-width budget.
    let rms_sim = (trace.theta_vco.iter().map(|v| v * v).sum::<f64>() / ts.len() as f64).sqrt();
    let rms_err = (trace
        .theta_vco
        .iter()
        .zip(&predicted)
        .map(|(s, p)| (s - p) * (s - p))
        .sum::<f64>()
        / ts.len() as f64)
        .sqrt();
    assert!(
        rms_err < 0.05 * rms_sim,
        "waveform RMS error {rms_err:.3e} vs signal RMS {rms_sim:.3e}"
    );

    // And the ripple is genuinely there: the waveform is NOT the pure
    // baseband sinusoid (the LTI picture); sidebands carry visible power.
    let baseband_only: Vec<f64> = ts
        .iter()
        .map(|&t| 2.0 * (spec.amplitude(0) * Complex::cis(w * t)).re)
        .collect();
    let rms_ripple = (trace
        .theta_vco
        .iter()
        .zip(&baseband_only)
        .map(|(s, p)| (s - p) * (s - p))
        .sum::<f64>()
        / ts.len() as f64)
        .sqrt();
    assert!(
        rms_ripple > 3.0 * rms_err,
        "sideband ripple {rms_ripple:.3e} should dominate the residual {rms_err:.3e}"
    );
}
