//! End-to-end tests of the event-timeline tracing pipeline: target
//! coverage, single-thread determinism, exporter round-trips, and
//! thread-count stability of the aggregate metrics.
//!
//! Every test here mutates process-global obs state (filter, trace
//! session, registry), so they all serialize through [`obs_lock`].

use htmpll::core::{KernelPolicy, PllDesign, PllModel, SweepCache, SweepSpec};
use htmpll::htm::Truncation;
use htmpll::obs;
use htmpll::par::ThreadBudget;
use std::sync::{Mutex, MutexGuard};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn model() -> PllModel {
    PllModel::builder(PllDesign::reference_design(0.1).expect("reference design"))
        .build()
        .expect("model builds")
}

/// Runs the reference workload — a dense-kernel closed-loop sweep plus a
/// robust grid with one on-pole point — under a trace session and
/// returns the timeline. The workload is deterministic: the grids depend
/// only on the design.
fn traced_sweep(threads: usize) -> obs::Trace {
    // `trace` (not `debug`): the per-point cache/dispatch instants
    // asserted below are the deepest opt-in tier.
    obs::override_filter("trace");
    obs::reset();
    obs::trace_start(1 << 16);
    let m = model();
    let w0 = m.design().omega_ref();
    let trunc = Truncation::new(3);
    let spec = SweepSpec::log(1e-2 * w0, 0.49 * w0, 24)
        .expect("grid")
        .with_truncation(trunc)
        .with_kernel(KernelPolicy::Dense)
        .with_threads(ThreadBudget::Fixed(threads));
    let cache = SweepCache::new();
    m.closed_loop_htm_grid_cached(&spec, &cache)
        .expect("sweep completes");
    let robust_spec = SweepSpec::new(vec![0.2 * w0, w0, 0.45 * w0])
        .with_truncation(trunc)
        .with_threads(ThreadBudget::Fixed(threads));
    let _ = m.closed_loop_htm_grid_robust(&robust_spec, &cache);
    obs::trace_stop()
}

/// Counter/quantile aggregates that must not depend on the thread count.
fn stable_aggregates() -> Vec<(String, u64, Option<f64>, Option<f64>)> {
    obs::snapshot()
        .iter()
        .filter(|s| {
            s.key.starts_with("core.robust.")
                || s.key == "num.lu.dim"
                || s.key == "par.tasks"
                || s.key.starts_with("core.sweep.dense_cache.")
        })
        .map(|s| {
            // Timing metrics are excluded; `num.lu.dim` observes matrix
            // dimensions, which are value-deterministic.
            if s.key == "num.lu.dim" {
                (s.key.clone(), s.count, s.p50, s.p99)
            } else {
                (s.key.clone(), s.count, None, None)
            }
        })
        .collect()
}

#[test]
fn trace_covers_every_pipeline_layer() {
    let _guard = obs_lock();
    let trace = traced_sweep(2);
    obs::override_filter("off");
    assert!(trace.dropped == 0, "capacity 65536 must not shed");
    let cats: std::collections::BTreeSet<&str> = trace.events.iter().map(|e| e.cat).collect();
    for cat in ["core", "htm", "num", "par"] {
        assert!(cats.contains(cat), "missing target {cat} in {cats:?}");
    }
    // Structured attribution events at the hot decision points.
    let names: Vec<&str> = trace.events.iter().map(|e| e.name.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with("cache{dense,miss")),
        "cache miss instants missing"
    );
    assert!(
        names.iter().any(|n| n.starts_with("dispatch{")),
        "kernel dispatch instants missing"
    );
    assert!(
        names.iter().any(|n| n.starts_with("quality{")),
        "verdict instants missing (robust grid has an on-pole point)"
    );
}

#[test]
fn single_thread_trace_is_deterministic() {
    let _guard = obs_lock();
    let a = traced_sweep(1);
    let b = traced_sweep(1);
    obs::override_filter("off");
    let shape = |t: &obs::Trace| -> Vec<(obs::TracePhase, &str, String)> {
        t.events
            .iter()
            .map(|e| (e.phase, e.cat, e.name.clone()))
            .collect()
    };
    assert_eq!(
        shape(&a),
        shape(&b),
        "same workload at 1 thread must produce the same event sequence"
    );
}

#[test]
fn chrome_export_parses_back_with_matching_event_count() {
    let _guard = obs_lock();
    let trace = traced_sweep(1);
    obs::override_filter("off");
    let json = obs::chrome_trace_json(&trace);
    let doc = obs::parse_json(&json).expect("exporter emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.events.len());
    // Spot-check the schema of the first event.
    let first = &events[0];
    for field in ["name", "cat", "ph", "ts", "pid", "tid"] {
        assert!(first.get(field).is_some(), "missing field {field}");
    }
}

#[test]
fn flamegraph_folded_round_trips() {
    let _guard = obs_lock();
    let trace = traced_sweep(1);
    obs::override_filter("off");
    let folded = obs::flamegraph_folded(&trace);
    assert!(!folded.is_empty());
    let mut total_ns = 0u64;
    let mut saw_core_frame = false;
    for line in folded.lines() {
        let (stack, ns) = line.rsplit_once(' ').expect("`stack ns` shape");
        assert!(!stack.is_empty());
        total_ns += ns.parse::<u64>().expect("integer self-time");
        if stack.split(';').any(|f| f.starts_with("core.")) {
            saw_core_frame = true;
        }
    }
    assert!(total_ns > 0, "spans must accumulate self time");
    assert!(saw_core_frame, "sweep frames missing:\n{folded}");
}

#[test]
fn aggregates_are_thread_count_stable() {
    let _guard = obs_lock();
    let _ = traced_sweep(1);
    let single = stable_aggregates();
    obs::override_filter("off");
    let _ = traced_sweep(2);
    let multi = stable_aggregates();
    obs::override_filter("off");
    assert!(
        single.iter().any(|(k, c, ..)| k == "num.lu.dim" && *c > 0),
        "workload must factor matrices: {single:?}"
    );
    assert_eq!(
        single, multi,
        "counts and value-quantiles must not depend on the thread count"
    );
}
