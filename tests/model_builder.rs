//! `PllModelBuilder` contract: every construction path (bare, delayed,
//! time-varying VCO, and their combination), every validation error,
//! and exact equivalence with the deprecated one-shot constructors.

use htmpll::core::{CoreError, PllDesign, PllModel, MAX_AUTO_TRUNCATION};
use htmpll::htm::Truncation;
use htmpll::num::Complex;

fn design() -> PllDesign {
    PllDesign::reference_design(0.1).unwrap()
}

fn isf(design: &PllDesign) -> Vec<Complex> {
    let v0 = design.v0();
    vec![
        Complex::from_re(0.25 * v0),
        Complex::from_re(v0),
        Complex::from_re(0.25 * v0),
    ]
}

#[test]
fn bare_builder_is_time_invariant() {
    let m = PllModel::builder(design()).build().unwrap();
    assert!(m.is_time_invariant());
}

#[test]
fn builder_combines_delay_and_isf() {
    // The legacy constructors could express a delayed loop OR a
    // time-varying VCO, never both; the builder chains them.
    let d = design();
    let tau = 0.02 / d.omega_ref();
    let m = PllModel::builder(d.clone())
        .loop_delay(tau, 3)
        .vco_isf(isf(&d))
        .build()
        .unwrap();
    assert!(!m.is_time_invariant());
    // The delay must actually be folded into λ: extra phase lag at the
    // top of the band compared to the undelayed time-varying model.
    let plain = PllModel::builder(d.clone())
        .vco_isf(isf(&d))
        .build()
        .unwrap();
    let w = 0.4 * d.omega_ref();
    let s = Complex::from_im(w);
    let lag = m.lambda().eval(s).arg() - plain.lambda().eval(s).arg();
    assert!(lag.abs() > 1e-6, "delay left λ unchanged");
}

#[test]
fn builder_rejects_bad_isf() {
    for bad in [0usize, 2, 4] {
        let err = PllModel::builder(design())
            .vco_isf(vec![Complex::ONE; bad])
            .build()
            .unwrap_err();
        match err {
            CoreError::InvalidParameter { name, value } => {
                assert_eq!(name, "vco_isf length");
                assert_eq!(value, bad as f64);
            }
            other => panic!("unexpected error: {other}"),
        }
    }
}

#[test]
fn builder_rejects_bad_delay() {
    for bad in [-1e-9, f64::NAN, f64::INFINITY] {
        let err = PllModel::builder(design())
            .loop_delay(bad, 3)
            .build()
            .unwrap_err();
        match err {
            CoreError::InvalidParameter { name, .. } => assert_eq!(name, "loop delay tau"),
            other => panic!("unexpected error: {other}"),
        }
    }
}

#[test]
fn zero_delay_is_accepted() {
    let m = PllModel::builder(design())
        .loop_delay(0.0, 2)
        .build()
        .unwrap();
    assert!(m.is_time_invariant());
}

#[test]
#[allow(deprecated)]
fn deprecated_constructors_match_builder_bitwise() {
    let d = design();
    let pairs: [(PllModel, PllModel); 3] = [
        (
            PllModel::new(d.clone()).unwrap(),
            PllModel::builder(d.clone()).build().unwrap(),
        ),
        (
            PllModel::with_loop_delay(d.clone(), 0.01 / d.omega_ref(), 4).unwrap(),
            PllModel::builder(d.clone())
                .loop_delay(0.01 / d.omega_ref(), 4)
                .build()
                .unwrap(),
        ),
        (
            PllModel::with_vco_isf(d.clone(), isf(&d)).unwrap(),
            PllModel::builder(d.clone())
                .vco_isf(isf(&d))
                .build()
                .unwrap(),
        ),
    ];
    for (legacy, built) in &pairs {
        for i in 1..=16 {
            let w = 0.03 * i as f64 * legacy.design().omega_ref();
            let a = legacy.h00(w);
            let b = built.h00(w);
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "h00 re at {w}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "h00 im at {w}");
        }
    }
}

#[test]
fn auto_truncation_resolves_and_clamps() {
    let m = PllModel::builder(design()).build().unwrap();
    // A loose tolerance resolves to a usable small order…
    let loose = m.resolve_truncation(Truncation::auto(1e-2));
    assert!(loose.order() >= 1);
    assert!(loose.order() <= MAX_AUTO_TRUNCATION);
    // …an absurdly tight one hits the matrix-dimension clamp instead of
    // requesting a 100k-harmonic matrix.
    let tight = m.resolve_truncation(Truncation::auto(1e-300));
    assert_eq!(tight.order(), MAX_AUTO_TRUNCATION);
    // A fixed Truncation passes through untouched.
    let fixed = m.resolve_truncation(Truncation::new(9));
    assert_eq!(fixed.order(), 9);
    // And the spec-typed entry points still accept a bare Truncation.
    let h = m.closed_loop_htm(Complex::from_im(0.5), Truncation::new(3));
    assert_eq!(h.as_matrix().rows(), 7);
}
