//! `PllModelBuilder` contract: every construction path (bare, delayed,
//! time-varying VCO, and their combination), every validation error,
//! and the model-fingerprint identity used for cross-request caching.

use htmpll::core::{CoreError, PllDesign, PllModel, MAX_AUTO_TRUNCATION};
use htmpll::htm::Truncation;
use htmpll::num::Complex;

fn design() -> PllDesign {
    PllDesign::reference_design(0.1).unwrap()
}

fn isf(design: &PllDesign) -> Vec<Complex> {
    let v0 = design.v0();
    vec![
        Complex::from_re(0.25 * v0),
        Complex::from_re(v0),
        Complex::from_re(0.25 * v0),
    ]
}

#[test]
fn bare_builder_is_time_invariant() {
    let m = PllModel::builder(design()).build().unwrap();
    assert!(m.is_time_invariant());
}

#[test]
fn builder_combines_delay_and_isf() {
    // The legacy constructors could express a delayed loop OR a
    // time-varying VCO, never both; the builder chains them.
    let d = design();
    let tau = 0.02 / d.omega_ref();
    let m = PllModel::builder(d.clone())
        .loop_delay(tau, 3)
        .vco_isf(isf(&d))
        .build()
        .unwrap();
    assert!(!m.is_time_invariant());
    // The delay must actually be folded into λ: extra phase lag at the
    // top of the band compared to the undelayed time-varying model.
    let plain = PllModel::builder(d.clone())
        .vco_isf(isf(&d))
        .build()
        .unwrap();
    let w = 0.4 * d.omega_ref();
    let s = Complex::from_im(w);
    let lag = m.lambda().eval(s).arg() - plain.lambda().eval(s).arg();
    assert!(lag.abs() > 1e-6, "delay left λ unchanged");
}

#[test]
fn builder_rejects_bad_isf() {
    for bad in [0usize, 2, 4] {
        let err = PllModel::builder(design())
            .vco_isf(vec![Complex::ONE; bad])
            .build()
            .unwrap_err();
        match err {
            CoreError::InvalidParameter { name, value } => {
                assert_eq!(name, "vco_isf length");
                assert_eq!(value, bad as f64);
            }
            other => panic!("unexpected error: {other}"),
        }
    }
}

#[test]
fn builder_rejects_bad_delay() {
    for bad in [-1e-9, f64::NAN, f64::INFINITY] {
        let err = PllModel::builder(design())
            .loop_delay(bad, 3)
            .build()
            .unwrap_err();
        match err {
            CoreError::InvalidParameter { name, .. } => assert_eq!(name, "loop delay tau"),
            other => panic!("unexpected error: {other}"),
        }
    }
}

#[test]
fn zero_delay_is_accepted() {
    let m = PllModel::builder(design())
        .loop_delay(0.0, 2)
        .build()
        .unwrap();
    assert!(m.is_time_invariant());
}

#[test]
fn fingerprint_identifies_model_structure() {
    let d = design();
    // Identical build recipes agree — the fingerprint is a pure function
    // of the model's defining coefficients, so two independently built
    // models may share one `SweepCache`.
    let a = PllModel::builder(d.clone()).build().unwrap();
    let b = PllModel::builder(d.clone()).build().unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());

    // Any structural change — crossover ratio, loop delay, or a
    // time-varying VCO — must move the fingerprint, otherwise cached
    // factorizations would leak across distinct models.
    let other = PllModel::builder(PllDesign::reference_design(0.2).unwrap())
        .build()
        .unwrap();
    let delayed = PllModel::builder(d.clone())
        .loop_delay(0.01 / d.omega_ref(), 4)
        .build()
        .unwrap();
    let varying = PllModel::builder(d.clone())
        .vco_isf(isf(&d))
        .build()
        .unwrap();
    let fps = [
        a.fingerprint(),
        other.fingerprint(),
        delayed.fingerprint(),
        varying.fingerprint(),
    ];
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len() {
            assert_ne!(fps[i], fps[j], "models {i} and {j} collide");
        }
    }
}

#[test]
fn auto_truncation_resolves_and_clamps() {
    let m = PllModel::builder(design()).build().unwrap();
    // A loose tolerance resolves to a usable small order…
    let loose = m.resolve_truncation(Truncation::auto(1e-2));
    assert!(loose.order() >= 1);
    assert!(loose.order() <= MAX_AUTO_TRUNCATION);
    // …an absurdly tight one hits the matrix-dimension clamp instead of
    // requesting a 100k-harmonic matrix.
    let tight = m.resolve_truncation(Truncation::auto(1e-300));
    assert_eq!(tight.order(), MAX_AUTO_TRUNCATION);
    // A fixed Truncation passes through untouched.
    let fixed = m.resolve_truncation(Truncation::new(9));
    assert_eq!(fixed.order(), 9);
    // And the spec-typed entry points still accept a bare Truncation.
    let h = m.closed_loop_htm(Complex::from_im(0.5), Truncation::new(3));
    assert_eq!(h.as_matrix().rows(), 7);
}
