//! Contract tests for the streaming design-space explorer: the front
//! is a true Pareto set, invariant to candidate evaluation order, and
//! bitwise identical for any worker-thread count and block partition —
//! plus a seeded 10⁴-candidate smoke whose digest is pinned, so any
//! change to candidate generation, screening, or merge order shows up
//! as a CI diff rather than a silent result shift.

use htmpll::core::{
    explore, DesignParams, DesignPoint, ExploreSpec, ParetoFront, SweepCache, EXPLORE_BLOCK,
};
use htmpll::num::rng::Rng;
use htmpll::par::ThreadBudget;

/// A synthetic objective-space corpus: no analysis involved, so the
/// front-maintenance properties are tested in isolation at scale.
fn synthetic_points(n: usize, seed: u64) -> Vec<DesignPoint> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| DesignPoint {
            params: DesignParams {
                ratio: rng.range(0.02, 0.45),
                spread: rng.range(1.5, 8.0),
                icp_scale: rng.range(0.25, 4.0),
                divider: (8.0 + (rng.uniform() * 500.0).floor()),
            },
            pm_eff_deg: rng.range(20.0, 80.0),
            bandwidth_3db: rng.range(1e5, 1e7),
            peaking_db: rng.range(0.0, 6.0),
            spur_dbc: rng.range(-90.0, -50.0),
            lock_time_s: rng.range(1e-6, 1e-4),
        })
        .collect()
}

fn assert_fronts_identical(a: &[DesignPoint], b: &[DesignPoint], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: front sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.params.key(), y.params.key(), "{what}: params differ");
        for (u, v, name) in [
            (x.pm_eff_deg, y.pm_eff_deg, "pm_eff_deg"),
            (x.bandwidth_3db, y.bandwidth_3db, "bandwidth_3db"),
            (x.peaking_db, y.peaking_db, "peaking_db"),
            (x.spur_dbc, y.spur_dbc, "spur_dbc"),
            (x.lock_time_s, y.lock_time_s, "lock_time_s"),
        ] {
            assert_eq!(u.to_bits(), v.to_bits(), "{what}: {name}: {u} vs {v}");
        }
    }
}

#[test]
fn front_members_are_mutually_non_dominated() {
    let points = synthetic_points(2000, 11);
    let mut front = ParetoFront::new(points.len());
    for p in &points {
        front.insert(*p);
    }
    let members = front.points();
    assert!(!members.is_empty());
    for (i, a) in members.iter().enumerate() {
        for (j, b) in members.iter().enumerate() {
            if i != j {
                assert!(
                    !a.dominates(b),
                    "front member {i} dominates member {j}: {a:?} vs {b:?}"
                );
            }
        }
    }
    // And every point left out is dominated by (or duplicates) some
    // member — the front really is the non-dominated set.
    for p in &points {
        let in_front = members.iter().any(|m| m.params.key() == p.params.key());
        if !in_front {
            assert!(
                members.iter().any(|m| m.dominates(p)),
                "excluded point is not dominated: {p:?}"
            );
        }
    }
}

#[test]
fn front_is_invariant_to_insertion_order() {
    let points = synthetic_points(1500, 23);
    let cap = points.len(); // never hit, so no capacity pruning
    let forward = {
        let mut f = ParetoFront::new(cap);
        for p in &points {
            f.insert(*p);
        }
        f.into_sorted()
    };
    let reverse = {
        let mut f = ParetoFront::new(cap);
        for p in points.iter().rev() {
            f.insert(*p);
        }
        f.into_sorted()
    };
    let interleaved = {
        // Even indices first, then odd — a third, unrelated order.
        let mut f = ParetoFront::new(cap);
        for p in points.iter().step_by(2) {
            f.insert(*p);
        }
        for p in points.iter().skip(1).step_by(2) {
            f.insert(*p);
        }
        f.into_sorted()
    };
    assert_fronts_identical(&forward, &reverse, "forward vs reverse");
    assert_fronts_identical(&forward, &interleaved, "forward vs interleaved");
}

#[test]
fn merged_worker_fronts_match_sequential_insertion() {
    // Simulates the block merge: split the stream into chunks of
    // arbitrary sizes, build a per-chunk front, merge in block order —
    // must equal one front fed sequentially.
    let points = synthetic_points(1200, 31);
    let cap = points.len();
    let mut sequential = ParetoFront::new(cap);
    for p in &points {
        sequential.insert(*p);
    }
    for chunk in [64usize, 200, 512] {
        let mut merged = ParetoFront::new(cap);
        for block in points.chunks(chunk) {
            let mut local = ParetoFront::new(cap);
            for p in block {
                local.insert(*p);
            }
            merged.merge(&local);
        }
        assert_fronts_identical(
            &sequential.clone().into_sorted(),
            &merged.into_sorted(),
            &format!("chunk size {chunk}"),
        );
    }
}

/// A screening-heavy spec: the closed-form spur and margin gates kill
/// most candidates cheaply, keeping the multi-block end-to-end runs
/// affordable in debug builds.
fn tight_spec(candidates: usize) -> ExploreSpec {
    ExploreSpec {
        candidates,
        seed: 1,
        min_pm_deg: 55.0,
        max_spur_dbc: -72.0,
        front_cap: 128,
        refine_rounds: 0,
        ..ExploreSpec::default()
    }
}

#[test]
fn thread_count_does_not_change_the_front_across_blocks() {
    // More candidates than one block, so different thread counts really
    // do partition the work differently.
    let mut spec = tight_spec(3 * EXPLORE_BLOCK);
    let mut runs = Vec::new();
    for threads in [1usize, 2, 4] {
        spec.threads = ThreadBudget::Fixed(threads);
        runs.push(explore(&spec, &SweepCache::new()).unwrap());
    }
    for r in &runs[1..] {
        assert_eq!(runs[0].digest, r.digest);
        assert_fronts_identical(&runs[0].front, &r.front, "thread counts");
    }
    assert_eq!(runs[0].evaluated, spec.candidates);
}

#[test]
fn seeded_smoke_pins_front_digest() {
    let report = explore(&tight_spec(10_000), &SweepCache::new()).unwrap();
    assert_eq!(report.evaluated, 10_000);
    assert_eq!(report.failed, 0, "no candidate may fail outright");
    assert!(report.front.len() > 3, "front too small to be meaningful");
    assert!(
        report.screened_out * 2 > report.evaluated,
        "tight spec should screen out most candidates ({} of {})",
        report.screened_out,
        report.evaluated
    );
    // The determinism fingerprint: candidate generation, screening,
    // evaluation, and merge must reproduce this exactly on every
    // platform. Update deliberately if the algorithm changes.
    assert_eq!(report.digest, "6e946b5e03575e04");
}
