//! Property test pinning the paper's eq.-37 identity: for random
//! strictly-proper open-loop gains `A(s)`, the truncated alias sum
//! `Σ_{|m|≤M} A(s + jmω₀)` converges to the exact lattice-sum closed
//! form at the analytic tail rate `O(1/M^{d−1})` (relative degree `d`),
//! including at points within `1e-3·ω₀` of the band edges `±ω₀/2` where
//! the evaluation grid is worst-conditioned.

use htmpll::core::EffectiveGain;
use htmpll::lti::Tf;
use htmpll::num::rng::Rng;
use htmpll::num::{Complex, Poly};

/// A random stable strictly-proper transfer function with relative
/// degree ≥ 2 (so the symmetric alias sum has an `O(1/M^{d−1})` tail)
/// and poles separated well beyond the PFE cluster tolerance.
fn random_strictly_proper(rng: &mut Rng) -> (Tf, f64) {
    let n_poles = 2 + (rng.next_u64() % 3) as usize; // 2..=4
    let mut roots = Vec::new();
    let mut p = -rng.range(0.05, 0.4);
    for _ in 0..n_poles {
        roots.push(p);
        p -= rng.range(0.3, 1.5);
    }
    let den = Poly::from_real_roots(&roots);
    let num_deg = (rng.next_u64() as usize) % (n_poles - 1); // ≤ n_poles − 2
    let mut coeffs: Vec<f64> = (0..=num_deg).map(|_| rng.range(-2.0, 2.0)).collect();
    if coeffs.last().unwrap().abs() < 0.1 {
        *coeffs.last_mut().unwrap() = 0.5;
    }
    let a = Tf::new(Poly::new(coeffs), den).expect("strictly proper by construction");
    let omega0 = rng.range(1.0, 10.0);
    (a, omega0)
}

#[test]
fn eq37_truncated_sum_converges_at_analytic_tail_rate() {
    let mut rng = Rng::seed_from_u64(0x3741_e937);
    for case in 0..20 {
        let (a, omega0) = random_strictly_proper(&mut rng);
        let lam = EffectiveGain::new(&a, omega0).expect("effective gain");
        let d = a.relative_degree() as f64;
        let c = (a.num().leading() / a.den().leading()).abs();
        // High-frequency asymptote A ≈ c·s^{−d} ⇒ two-sided tail bound
        // 2c/((d−1)·ω₀^d·M^{d−1}), the same estimate suggest_truncation
        // inverts.
        let tail = |m: f64| 2.0 * c / ((d - 1.0) * omega0.powf(d) * m.powf(d - 1.0));
        let probes = [
            0.137 * omega0,
            -0.271 * omega0,
            omega0 / 2.0 - 1e-3 * omega0,
            -(omega0 / 2.0) + 1e-3 * omega0,
            omega0 / 2.0 - 1e-4 * omega0,
            -(omega0 / 2.0) + 2e-4 * omega0,
        ];
        for &w in &probes {
            let s = Complex::from_im(w);
            let exact = lam.eval(s);
            assert!(exact.is_finite(), "case {case} w={w}: exact {exact}");
            let scale = 1.0 + exact.abs();
            let m0 = 400usize;
            let e1 = (lam.eval_truncated(s, m0) - exact).abs();
            let e2 = (lam.eval_truncated(s, 2 * m0) - exact).abs();
            let e4 = (lam.eval_truncated(s, 4 * m0) - exact).abs();
            // The truncation error sits under the analytic tail bound
            // (headroom for the sub-asymptotic part of A).
            assert!(
                e1 <= 10.0 * tail(m0 as f64) + 1e-12 * scale,
                "case {case} w={w}: e1 {e1} vs tail bound {}",
                tail(m0 as f64)
            );
            // Monotone convergence as M doubles ...
            assert!(e2 <= e1 + 1e-13 * scale, "case {case} w={w}: {e1} -> {e2}");
            assert!(e4 <= e2 + 1e-13 * scale, "case {case} w={w}: {e2} -> {e4}");
            // ... at no slower than the analytic rate: quadrupling M must
            // at least halve an error that is above rounding noise.
            if e1 > 1e-9 * scale {
                assert!(
                    e1 / e4 > 2.0,
                    "case {case} w={w}: e1 {e1} / e4 {e4} below O(1/M) rate"
                );
            }
        }
    }
}
