//! Determinism contract of the parallel sweep engine: every grid entry
//! point must produce **bitwise-identical** results for any thread
//! count, because each point is evaluated by a pure function and placed
//! by index — the partition of work across workers never touches the
//! arithmetic.

use htmpll::core::{
    analyze_with, bode_grid, AnalysisReport, LeakageSpurs, NoiseModel, PllDesign, PllModel,
    SweepCache, SweepSpec,
};
use htmpll::htm::Truncation;
use htmpll::lti::bode_sweep;
use htmpll::num::Complex;
use htmpll::par::ThreadBudget;

fn model(ratio: f64) -> PllModel {
    PllModel::builder(PllDesign::reference_design(ratio).unwrap())
        .build()
        .unwrap()
}

fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
}

fn assert_reports_identical(a: &AnalysisReport, b: &AnalysisReport) {
    assert_bits(a.omega_ug_lti, b.omega_ug_lti, "omega_ug_lti");
    assert_bits(a.phase_margin_lti_deg, b.phase_margin_lti_deg, "pm_lti");
    assert_bits(a.omega_ug_eff, b.omega_ug_eff, "omega_ug_eff");
    assert_bits(a.phase_margin_eff_deg, b.phase_margin_eff_deg, "pm_eff");
    assert_bits(a.peaking_db, b.peaking_db, "peaking_db");
    assert_bits(a.peaking_lti_db, b.peaking_lti_db, "peaking_lti_db");
    match (a.bandwidth_3db, b.bandwidth_3db) {
        (Some(x), Some(y)) => assert_bits(x, y, "bandwidth_3db"),
        (x, y) => assert_eq!(x, y, "bandwidth_3db presence"),
    }
    assert_eq!(a.nyquist_stable, b.nyquist_stable);
    assert_eq!(a.beyond_sampling_limit, b.beyond_sampling_limit);
}

#[test]
fn analysis_identical_across_thread_counts() {
    // Slow, fast, and beyond-the-sampling-limit loops: every branch of
    // the analysis must be thread-count-invariant.
    for ratio in [0.05, 0.25, 0.4] {
        let m = model(ratio);
        let one = analyze_with(&m, ThreadBudget::Fixed(1)).unwrap();
        for threads in [2, 4, 7] {
            let n = analyze_with(&m, ThreadBudget::Fixed(threads)).unwrap();
            assert_reports_identical(&one, &n);
        }
    }
}

#[test]
fn lambda_grid_identical_across_thread_counts() {
    let m = model(0.2);
    let base = SweepSpec::log(1e-3, 4.9, 257).unwrap();
    let one = m.lambda().eval_grid(&base.clone().with_threads(1));
    for threads in [2, 3, 8] {
        let n = m.lambda().eval_grid(&base.clone().with_threads(threads));
        assert_eq!(one.len(), n.len());
        for (a, b) in one.iter().zip(&n) {
            assert_bits(a.re, b.re, "lambda re");
            assert_bits(a.im, b.im, "lambda im");
        }
    }
}

#[test]
fn h00_and_bode_identical_across_thread_counts() {
    let m = model(0.15);
    let base = SweepSpec::log(1e-2, 3.0, 101).unwrap();
    let seq = m.h00_grid(&base.clone().with_threads(1));
    let par = m.h00_grid(&base.clone().with_threads(4));
    for (a, b) in seq.iter().zip(&par) {
        assert_bits(a.re, b.re, "h00 re");
        assert_bits(a.im, b.im, "h00 im");
    }
    // Bode assembly (including the sequential phase unwrap) matches the
    // legacy sequential sweep exactly.
    let spec = base.with_threads(4);
    let parallel = bode_grid(|w| m.h00(w), &spec);
    let sequential = bode_sweep(|w| m.h00(w), spec.grid.points());
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_bits(p.mag_db, s.mag_db, "bode mag");
        assert_bits(p.phase_deg, s.phase_deg, "bode phase");
    }
}

#[test]
fn dense_htm_grid_identical_across_thread_counts() {
    let m = model(0.3);
    let base = SweepSpec::log(0.1, 2.0, 9)
        .unwrap()
        .with_truncation(Truncation::new(5));
    let one = m
        .closed_loop_htm_grid(&base.clone().with_threads(1))
        .unwrap();
    let four = m
        .closed_loop_htm_grid(&base.clone().with_threads(4))
        .unwrap();
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.as_matrix().max_diff(b.as_matrix()), 0.0);
    }
}

#[test]
fn noise_and_spur_grids_identical_across_thread_counts() {
    let m = model(0.1);
    let n = NoiseModel::new(&m, 8);
    let rp = |_: f64| 1e-12;
    let vp = |f: f64| 1e-12 / (1.0 + f * f);
    let base = SweepSpec::log(1e-3, 4.0, 129).unwrap();
    let seq = n.output_psd_grid(&base.clone().with_threads(1), &rp, &vp);
    let par = n.output_psd_grid(&base.with_threads(5), &rp, &vp);
    for (a, b) in seq.iter().zip(&par) {
        assert_bits(*a, *b, "noise psd");
    }

    let spurs = LeakageSpurs::new(&m, 1e-3 * m.design().icp());
    let one = spurs.scan(12, ThreadBudget::Fixed(1));
    let four = spurs.scan(12, ThreadBudget::Fixed(4));
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.k, b.k);
        assert_bits(a.level_dbc, b.level_dbc, "spur dbc");
        assert_bits(a.sideband.re, b.sideband.re, "spur re");
    }
}

#[test]
fn cache_hits_return_the_first_evaluation_bitwise() {
    let m = model(0.25);
    let cache = SweepCache::new();
    let spec = SweepSpec::log(0.2, 1.8, 7)
        .unwrap()
        .with_truncation(Truncation::new(4))
        .with_threads(4);
    let cold = m.closed_loop_htm_grid_cached(&spec, &cache).unwrap();
    let warm = m.closed_loop_htm_grid_cached(&spec, &cache).unwrap();
    assert_eq!(cache.dense_entries(), 7);
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(a.as_matrix().max_diff(b.as_matrix()), 0.0);
    }
    // λ memo: repeated queries at one point stay bitwise-stable.
    let s = Complex::from_im(0.9);
    let first = cache.lambda(m.lambda(), s);
    for _ in 0..3 {
        let again = cache.lambda(m.lambda(), s);
        assert_bits(first.re, again.re, "cached lambda re");
        assert_bits(first.im, again.im, "cached lambda im");
    }
    assert_eq!(cache.lambda_entries(), 1);
}

#[test]
fn analyze_matches_explicit_auto_budget() {
    // `analyze` is `analyze_with(Auto)`; whatever Auto resolves to on
    // this machine, the result must equal the explicit 1-thread run.
    let m = model(0.2);
    let auto = htmpll::core::analyze(&m).unwrap();
    let one = analyze_with(&m, ThreadBudget::Fixed(1)).unwrap();
    assert_reports_identical(&auto, &one);
}
