//! Validation of the §3.3 time-varying-VCO machinery against the
//! behavioral simulator — the experiment the paper itself skipped
//! (its §5 uses a time-invariant VCO).
//!
//! The simulator modulates the VCO gain over its cycle,
//! `K(Φ) = K_vco·(1 + a₁·cos(2πΦ))`; with `N = 1` and the loop locked,
//! the paper's ISF model maps this to the Fourier coefficients
//! `v₀ = K_vco/ω₀`, `v_{±1} = v₀·a₁/2` of `v(t)` — the inputs to
//! `PllModel::with_vco_isf`.

use htmpll::core::{PllDesign, PllModel};
use htmpll::num::Complex;
use htmpll::sim::{measure_band_transfer, measure_h00, MeasureOptions, SimConfig, SimParams};

fn tv_setup(ratio: f64, a1: f64) -> (PllModel, SimParams) {
    let design = PllDesign::reference_design(ratio).unwrap();
    let v0 = design.v0();
    let model = PllModel::builder(design.clone())
        .vco_isf(vec![
            Complex::from_re(0.5 * a1 * v0),
            Complex::from_re(v0),
            Complex::from_re(0.5 * a1 * v0),
        ])
        .build()
        .unwrap();
    let mut params = SimParams::from_design(&design);
    params.isf_cosine = vec![a1];
    (model, params)
}

/// The time-varying λ (truncated Ṽ column sum) against the simulated
/// baseband transfer.
#[test]
fn tv_vco_h00_matches_simulation() {
    let (model, params) = tv_setup(0.15, 0.6);
    let cfg = SimConfig::default();
    let opts = MeasureOptions {
        amplitude_frac: 2e-4,
        settle_cycles: 16,
        measure_cycles: 24,
    };
    let trunc = htmpll::htm::Truncation::new(30);
    for &w in &[0.4, 1.0, 2.0] {
        let m = measure_h00(&params, &cfg, w, &opts);
        let predict = model
            .closed_loop_htm(Complex::from_im(m.omega), trunc)
            .band(0, 0);
        let err = (m.h - predict).abs() / predict.abs();
        assert!(
            err < 0.05,
            "w={w}: sim {} vs htm {predict} (err {err:.4})",
            m.h
        );
    }
}

/// The ISF's ±1 harmonics open extra band-conversion paths; their
/// measured amplitudes must track the TV model and *differ* from the
/// time-invariant model's.
#[test]
fn tv_vco_band_conversion_matches_model() {
    let ratio = 0.15;
    let a1 = 0.6;
    let (model, params) = tv_setup(ratio, a1);
    let ti_model = PllModel::builder(PllDesign::reference_design(ratio).unwrap())
        .build()
        .unwrap();
    let cfg = SimConfig::default();
    let opts = MeasureOptions {
        amplitude_frac: 2e-4,
        settle_cycles: 16,
        measure_cycles: 24,
    };
    let w = 0.7;
    let trunc = htmpll::htm::Truncation::new(30);
    for band in [1i64, -1] {
        let m = measure_band_transfer(&params, &cfg, w, band, &opts);
        let htm = model
            .closed_loop_htm(Complex::from_im(m.omega), trunc)
            .band(band, 0);
        let ti = ti_model
            .closed_loop_htm(Complex::from_im(m.omega), trunc)
            .band(band, 0);
        let err = (m.h - htm).abs() / htm.abs();
        assert!(
            err < 0.07,
            "band {band}: sim {} vs tv-htm {htm} (err {err:.4})",
            m.h
        );
        // The TV path must be a materially better prediction than the
        // TI one.
        let err_ti = (m.h - ti).abs() / m.h.abs();
        assert!(
            err_ti > 3.0 * err,
            "band {band}: TI model should be much worse ({err_ti:.4} vs {err:.4})"
        );
    }
}

/// Sanity: with a zero ISF modulation the TV-configured simulator
/// reduces exactly to the time-invariant one.
#[test]
fn zero_isf_modulation_is_time_invariant() {
    let design = PllDesign::reference_design(0.1).unwrap();
    let mut params = SimParams::from_design(&design);
    params.isf_cosine = vec![0.0, 0.0];
    let m = measure_h00(
        &params,
        &SimConfig::default(),
        0.8,
        &MeasureOptions::default(),
    );
    let model = PllModel::builder(design).build().unwrap();
    let predict = model.h00(m.omega);
    assert!((m.h - predict).abs() < 0.02 * predict.abs());
}
