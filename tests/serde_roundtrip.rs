//! Round-trip tests for the optional `serde` feature
//! (`cargo test --features serde --test serde_roundtrip`).

#![cfg(feature = "serde")]

use htmpll::core::{analyze, AnalysisReport, NoiseShape, PllDesign, PllModel};
use htmpll::lti::Tf;
use htmpll::num::{Complex, Poly};
use htmpll::sim::{SimConfig, SimParams};

#[test]
fn complex_and_poly_roundtrip() {
    let z = Complex::new(1.25, -3.5);
    let back: Complex = serde_json::from_str(&serde_json::to_string(&z).unwrap()).unwrap();
    assert_eq!(z, back);

    let p = Poly::new(vec![1.0, -2.5, 0.125]);
    let back: Poly = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
    assert_eq!(p, back);
}

#[test]
fn tf_roundtrip_preserves_response() {
    let tf = Tf::from_coeffs(vec![1.0, 0.5], vec![2.0, 1.0, 0.25]).unwrap();
    let back: Tf = serde_json::from_str(&serde_json::to_string(&tf).unwrap()).unwrap();
    let s = Complex::new(0.3, 1.1);
    assert!((tf.eval(s) - back.eval(s)).abs() < 1e-15);
}

#[test]
fn design_roundtrip_preserves_analysis() {
    let design = PllDesign::reference_design(0.15).unwrap();
    let json = serde_json::to_string(&design).unwrap();
    let back: PllDesign = serde_json::from_str(&json).unwrap();
    assert_eq!(design, back);
    // The restored design analyzes identically.
    let a = analyze(&PllModel::builder(design).build().unwrap()).unwrap();
    let b = analyze(&PllModel::builder(back).build().unwrap()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn report_and_config_roundtrip() {
    let report: AnalysisReport = analyze(
        &PllModel::builder(PllDesign::reference_design(0.1).unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    let back: AnalysisReport =
        serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
    assert_eq!(report, back);

    let cfg = SimConfig::default();
    let back: SimConfig = serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
    assert_eq!(cfg.samples_per_ref, back.samples_per_ref);

    let params = SimParams::from_design(&PllDesign::reference_design(0.1).unwrap());
    let back: SimParams = serde_json::from_str(&serde_json::to_string(&params).unwrap()).unwrap();
    assert_eq!(params.t_ref, back.t_ref);
    assert_eq!(params.filter, back.filter);

    let shape = NoiseShape::Sum(vec![
        NoiseShape::White { level: 1e-12 },
        NoiseShape::Leeson {
            floor: 1e-13,
            flicker_corner: 0.1,
            half_bw: 2.0,
        },
    ]);
    let back: NoiseShape = serde_json::from_str(&serde_json::to_string(&shape).unwrap()).unwrap();
    assert_eq!(shape, back);
}
