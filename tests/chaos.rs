//! Chaos-harness integration tests. These live in their own test
//! binary: [`run_chaos`] installs a process-global fault plan for its
//! faulted legs, which must never overlap other fault-sensitive tests.
//!
//! [`run_chaos`]: htmpll::service::run_chaos

use htmpll::service::{build_corpus, default_plan, run_chaos, ChaosOptions};

/// The acceptance gate: the default seeded plan over the seeded corpus
/// produces zero invariant violations — the process survives every
/// injected pivot failure, handler panic, malformed envelope, and
/// cache-eviction storm; responses stay in order; output is
/// thread-count invariant; unfaulted requests match the fault-free
/// baseline byte-for-byte.
#[test]
fn default_plan_replay_has_zero_violations() {
    let report = run_chaos(&ChaosOptions {
        requests: 24,
        ..ChaosOptions::default()
    })
    .expect("chaos run");
    assert!(
        report.ok(),
        "invariant violations:\n{}",
        report.render_table()
    );
    assert_eq!(report.corpus_lines, 24);
    assert!(
        report.faulted_requests > 0,
        "the default plan must select some victims"
    );
    assert!(
        report.compared > 0,
        "the default plan must leave some requests clean to compare"
    );
}

/// A plan that only corrupts envelopes (no scoped value faults): every
/// non-corrupted line must match the baseline, and the corrupted set is
/// predicted exactly by the plan.
#[test]
fn malformed_only_plan_keeps_every_other_line_identical() {
    let report = run_chaos(&ChaosOptions {
        requests: 16,
        workers: 3,
        plan: Some("seed=7;serve.malformed=every:5".to_string()),
        ..ChaosOptions::default()
    })
    .expect("chaos run");
    assert!(report.ok(), "{}", report.render_table());
    assert_eq!(report.faulted_requests, 0);
    assert_eq!(report.compared + report.malformed_injected, 16);
}

/// The corpus itself is deterministic and mixes the shapes the harness
/// depends on: JSON requests with line-index ids, malformed-but-JSON
/// lines, raw garbage, and exact duplicates of earlier specs.
#[test]
fn corpus_is_deterministic_and_mixed() {
    let a = build_corpus(40);
    let b = build_corpus(40);
    assert_eq!(a, b);
    assert_eq!(a.len(), 40);
    assert!(a.iter().any(|l| !l.starts_with('{')), "raw garbage present");
    assert!(a.iter().any(|l| l.contains("\"command\":\"nonsense\"")));
    // Line 7 duplicates line 0's spec under a different id.
    assert_eq!(
        a[0].replace("\"id\":0", ""),
        a[7].replace("\"id\":7", ""),
        "duplicate pair shares the canonical spec"
    );
    // The default plan is stable for a given seed.
    assert_eq!(default_plan(42), default_plan(42));
    assert_ne!(default_plan(42), default_plan(43));
}
