//! SIMD backend equivalence, exercised through the facade.
//!
//! The dispatch contract in `htmpll_num::simd` promises that every
//! vector backend is **bitwise identical** to the scalar reference,
//! lane for lane, on any input — including non-finite values,
//! denormals, signed zeros, and slice lengths that straddle the vector
//! width. These tests drive each kernel through `*_with` at
//! `SimdLevel::Scalar` and at the detected hardware level and compare
//! bit patterns, then flip the *global* backend around full
//! transforms and the cross-stack corpus to prove the digest never
//! moves.
//!
//! On a host without AVX2/NEON the hardware level degrades to
//! `Scalar` and the comparisons hold trivially — the tests then
//! document a scalar-only host rather than failing.

use htmpll::num::rng::Rng;
use htmpll::num::simd::{self, SimdLevel};
use htmpll::num::special::lattice_poly;
use htmpll::num::Complex;
use htmpll::par::ThreadBudget;
use htmpll::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that flip the process-global SIMD level; the
/// per-kernel tests use explicit `*_with` levels and never touch it.
static GLOBAL_LEVEL: Mutex<()> = Mutex::new(());

fn global_level_guard() -> MutexGuard<'static, ()> {
    GLOBAL_LEVEL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Adversarial scalars: signed zeros, infinities, NaN, denormals, and
/// extreme magnitudes — the values where FMA contraction or a
/// reassociated reduction would betray itself first.
const ADVERSARIAL: [f64; 14] = [
    0.0,
    -0.0,
    1.0,
    -1.0,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::MIN_POSITIVE,
    f64::MIN_POSITIVE / 2.0,
    -f64::MIN_POSITIVE / 4.0,
    1e300,
    -1e300,
    1e-300,
    std::f64::consts::PI,
];

/// Lengths that cover empty input, sub-width tails, exact vector
/// widths (2, 4, 8) and misaligned overhangs on either backend.
const LENGTHS: [usize; 9] = [0, 1, 2, 3, 4, 5, 8, 17, 33];

/// A plane of `len` values: random fill with adversarial scalars
/// planted on a stride so every test length sees some of them.
fn plane(len: usize, rng: &mut Rng, salt: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            if i % 3 == salt % 3 {
                ADVERSARIAL[(i + salt) % ADVERSARIAL.len()]
            } else {
                rng.range(-10.0, 10.0)
            }
        })
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: lane {i}: {x:?} vs {y:?}");
    }
}

fn assert_complex_bits_eq(a: &[Complex], b: &[Complex], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            (x.re.to_bits(), x.im.to_bits()),
            (y.re.to_bits(), y.im.to_bits()),
            "{what}: lane {i}: {x:?} vs {y:?}"
        );
    }
}

/// The multiplier / divisor constants each kernel runs under: both
/// Smith branches, a zero (the NaN-fill path), an infinity, and a NaN.
fn scalar_constants() -> Vec<Complex> {
    vec![
        Complex::new(1.5, -0.25),         // |re| >= |im|
        Complex::new(0.1, -2.0),          // |re| < |im|
        Complex::ZERO,                    // caxpy skip / cdiv NaN-fill
        Complex::new(f64::INFINITY, 1.0), // overflow propagation
        Complex::new(f64::NAN, 0.5),      // NaN propagation
        Complex::new(-0.0, 0.0),          // signed-zero multiplier
    ]
}

#[test]
fn caxpy_kernels_bitwise_match_scalar() {
    let hw = simd::hardware_level();
    let mut rng = Rng::seed_from_u64(0xCA5CADE);
    for &len in &LENGTHS {
        for (ci, m) in scalar_constants().into_iter().enumerate() {
            let dst_re = plane(len, &mut rng, ci);
            let dst_im = plane(len, &mut rng, ci + 1);
            let src_re = plane(len, &mut rng, ci + 2);
            let src_im = plane(len, &mut rng, ci + 3);
            for masked in [false, true] {
                let (mut a_re, mut a_im) = (dst_re.clone(), dst_im.clone());
                let (mut b_re, mut b_im) = (dst_re.clone(), dst_im.clone());
                if masked {
                    simd::caxpy_sub_masked_with(
                        SimdLevel::Scalar,
                        &mut a_re,
                        &mut a_im,
                        &src_re,
                        &src_im,
                        m,
                    );
                    simd::caxpy_sub_masked_with(hw, &mut b_re, &mut b_im, &src_re, &src_im, m);
                } else {
                    simd::caxpy_sub_with(
                        SimdLevel::Scalar,
                        &mut a_re,
                        &mut a_im,
                        &src_re,
                        &src_im,
                        m,
                    );
                    simd::caxpy_sub_with(hw, &mut b_re, &mut b_im, &src_re, &src_im, m);
                }
                let what = format!("caxpy_sub(masked={masked}) len={len} m={m}");
                assert_bits_eq(&a_re, &b_re, &what);
                assert_bits_eq(&a_im, &b_im, &what);
            }
        }
    }
}

#[test]
fn masked_caxpy_skips_signed_zeros_but_not_nan() {
    // The zero-skip semantics are part of the bitwise contract: ±0
    // sources leave dst untouched, NaN sources must still compute.
    let hw = simd::hardware_level();
    let src_re = [0.0, -0.0, f64::NAN, 0.0, 1.0];
    let src_im = [0.0, 0.0, 0.0, f64::NAN, -0.0];
    let m = Complex::new(2.0, -1.0);
    for level in [SimdLevel::Scalar, hw] {
        let mut dst_re = [1.0; 5];
        let mut dst_im = [1.0; 5];
        simd::caxpy_sub_masked_with(level, &mut dst_re, &mut dst_im, &src_re, &src_im, m);
        assert_eq!(dst_re[0], 1.0, "{level:?}: +0/+0 must skip");
        assert_eq!(dst_re[1], 1.0, "{level:?}: -0/+0 must skip");
        assert!(dst_re[2].is_nan(), "{level:?}: NaN source must compute");
        assert!(dst_im[3].is_nan(), "{level:?}: NaN source must compute");
        assert_ne!(dst_re[4], 1.0, "{level:?}: nonzero source must compute");
    }
}

#[test]
fn cdiv_assign_bitwise_matches_scalar() {
    let hw = simd::hardware_level();
    let mut rng = Rng::seed_from_u64(0xD1F1DE);
    for &len in &LENGTHS {
        for (ci, d) in scalar_constants().into_iter().enumerate() {
            let dst_re = plane(len, &mut rng, ci);
            let dst_im = plane(len, &mut rng, ci + 4);
            let (mut a_re, mut a_im) = (dst_re.clone(), dst_im.clone());
            let (mut b_re, mut b_im) = (dst_re, dst_im);
            simd::cdiv_assign_with(SimdLevel::Scalar, &mut a_re, &mut a_im, d);
            simd::cdiv_assign_with(hw, &mut b_re, &mut b_im, d);
            let what = format!("cdiv_assign len={len} d={d}");
            assert_bits_eq(&a_re, &b_re, &what);
            assert_bits_eq(&a_im, &b_im, &what);
        }
    }
}

#[test]
fn butterfly_bitwise_matches_scalar() {
    let hw = simd::hardware_level();
    let mut rng = Rng::seed_from_u64(0xBF11);
    for &len in &LENGTHS {
        let u_re0 = plane(len, &mut rng, 0);
        let u_im0 = plane(len, &mut rng, 1);
        let v_re0 = plane(len, &mut rng, 2);
        let v_im0 = plane(len, &mut rng, 3);
        let w_re = plane(len, &mut rng, 4);
        let w_im = plane(len, &mut rng, 5);
        let (mut au_re, mut au_im) = (u_re0.clone(), u_im0.clone());
        let (mut av_re, mut av_im) = (v_re0.clone(), v_im0.clone());
        let (mut bu_re, mut bu_im) = (u_re0, u_im0);
        let (mut bv_re, mut bv_im) = (v_re0, v_im0);
        simd::butterfly_with(
            SimdLevel::Scalar,
            &mut au_re,
            &mut au_im,
            &mut av_re,
            &mut av_im,
            &w_re,
            &w_im,
        );
        simd::butterfly_with(
            hw, &mut bu_re, &mut bu_im, &mut bv_re, &mut bv_im, &w_re, &w_im,
        );
        let what = format!("butterfly len={len}");
        assert_bits_eq(&au_re, &bu_re, &what);
        assert_bits_eq(&au_im, &bu_im, &what);
        assert_bits_eq(&av_re, &bv_re, &what);
        assert_bits_eq(&av_im, &bv_im, &what);
    }
}

#[test]
fn lambda_term_acc_bitwise_matches_scalar() {
    let hw = simd::hardware_level();
    let mut rng = Rng::seed_from_u64(0x1A77);
    for &len in &LENGTHS {
        for order in [1usize, 2, 3, 6] {
            let poly = lattice_poly(order);
            let factor = Complex::new(std::f64::consts::PI, 0.0).powi(order as i32);
            let coeff = Complex::new(rng.range(-2.0, 2.0), rng.range(-2.0, 2.0));
            let c_re = plane(len, &mut rng, order);
            let c_im = plane(len, &mut rng, order + 1);
            let acc_re0 = plane(len, &mut rng, order + 2);
            let acc_im0 = plane(len, &mut rng, order + 3);
            let (mut a_re, mut a_im) = (acc_re0.clone(), acc_im0.clone());
            let (mut b_re, mut b_im) = (acc_re0, acc_im0);
            simd::lambda_term_acc_with(
                SimdLevel::Scalar,
                &mut a_re,
                &mut a_im,
                &c_re,
                &c_im,
                &poly,
                factor,
                coeff,
            );
            simd::lambda_term_acc_with(
                hw, &mut b_re, &mut b_im, &c_re, &c_im, &poly, factor, coeff,
            );
            let what = format!("lambda_term_acc len={len} order={order}");
            assert_bits_eq(&a_re, &b_re, &what);
            assert_bits_eq(&a_im, &b_im, &what);
        }
    }
}

#[test]
fn interleaved_kernels_bitwise_match_scalar() {
    let hw = simd::hardware_level();
    let mut rng = Rng::seed_from_u64(0x1EAF);
    for &len in &LENGTHS {
        let d_re = plane(len, &mut rng, 0);
        let d_im = plane(len, &mut rng, 1);
        let x: Vec<Complex> = plane(len, &mut rng, 2)
            .into_iter()
            .zip(plane(len, &mut rng, 3))
            .map(|(re, im)| Complex::new(re, im))
            .collect();
        let out0: Vec<Complex> = plane(len, &mut rng, 4)
            .into_iter()
            .zip(plane(len, &mut rng, 5))
            .map(|(re, im)| Complex::new(re, im))
            .collect();

        let mut a = out0.clone();
        let mut b = out0.clone();
        simd::band_diag_madd_with(SimdLevel::Scalar, &mut a, &d_re, &d_im, &x);
        simd::band_diag_madd_with(hw, &mut b, &d_re, &d_im, &x);
        assert_complex_bits_eq(&a, &b, &format!("band_diag_madd len={len}"));

        for c in scalar_constants() {
            let x_re = plane(len, &mut rng, 6);
            let x_im = plane(len, &mut rng, 7);
            let o_re0 = plane(len, &mut rng, 8);
            let o_im0 = plane(len, &mut rng, 9);
            let (mut ar, mut ai) = (o_re0.clone(), o_im0.clone());
            let (mut br, mut bi) = (o_re0, o_im0);
            simd::cmul_bcast_add_with(SimdLevel::Scalar, &mut ar, &mut ai, c, &x_re, &x_im);
            simd::cmul_bcast_add_with(hw, &mut br, &mut bi, c, &x_re, &x_im);
            assert_bits_eq(&ar, &br, &format!("cmul_bcast_add re len={len} c={c}"));
            assert_bits_eq(&ai, &bi, &format!("cmul_bcast_add im len={len} c={c}"));
        }

        let mut a = out0.clone();
        let mut b = out0;
        simd::cmul_pairwise_with(SimdLevel::Scalar, &mut a, &x);
        simd::cmul_pairwise_with(hw, &mut b, &x);
        assert_complex_bits_eq(&a, &b, &format!("cmul_pairwise len={len}"));
    }
}

#[test]
fn fft_bitwise_invariant_under_backend() {
    let _g = global_level_guard();
    let hw = simd::hardware_level();
    let mut rng = Rng::seed_from_u64(0xFF7);
    for n in [64usize, 256, 1024] {
        let x: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0)))
            .collect();
        let prev = simd::set_active_level(SimdLevel::Scalar);
        let mut a = x.clone();
        htmpll::spectral::fft::fft(&mut a).expect("power of two");
        simd::set_active_level(hw);
        let mut b = x;
        htmpll::spectral::fft::fft(&mut b).expect("power of two");
        simd::set_active_level(prev);
        assert_complex_bits_eq(&a, &b, &format!("fft n={n}"));
    }
}

#[test]
fn xcheck_digest_invariant_under_backend_and_threads() {
    // The strongest end-to-end claim: the whole quick corpus — λ(s)
    // grids, banded/dense closed-loop solves, spectral estimates, the
    // behavioral simulator — digests to the same bits with SIMD forced
    // off and at the hardware level, at 1 and at 2 worker threads.
    let _g = global_level_guard();
    let hw = simd::hardware_level();
    let prev = simd::set_active_level(SimdLevel::Scalar);
    let scalar_1 = run_corpus("quick", ThreadBudget::Fixed(1)).expect("scalar threads=1");
    let scalar_2 = run_corpus("quick", ThreadBudget::Fixed(2)).expect("scalar threads=2");
    simd::set_active_level(hw);
    let hw_1 = run_corpus("quick", ThreadBudget::Fixed(1)).expect("hw threads=1");
    let hw_2 = run_corpus("quick", ThreadBudget::Fixed(2)).expect("hw threads=2");
    simd::set_active_level(prev);
    assert_eq!(scalar_1.digest(), scalar_2.digest(), "scalar: thread count");
    assert_eq!(hw_1.digest(), hw_2.digest(), "{hw:?}: thread count");
    assert_eq!(
        scalar_1.digest(),
        hw_1.digest(),
        "digest must not depend on the SIMD backend (hardware {hw:?})"
    );
    assert_eq!(scalar_1.mismatches(), 0);
}

#[test]
fn detection_reports_a_supported_level() {
    let level = simd::hardware_level();
    assert!(level.supported(), "hardware level {level:?} not runnable");
    assert!(!level.name().is_empty());
    // The active level is always clamped to hardware capability.
    let active = simd::active_level();
    assert!(active.supported());
}
