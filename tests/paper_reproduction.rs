//! Integration tests: the paper's core claims, end to end.
//!
//! Each test ties at least two workspace crates together and checks one
//! of the DATE-2003 paper's experimental claims at the system level.

use htmpll::core::{analyze, PllDesign, PllModel};
use htmpll::htm::Truncation;
use htmpll::num::Complex;
use htmpll::sim::{measure_h00, MeasureOptions, SimConfig, SimParams};
use htmpll::zdomain::{reference_design_stability_limit, CpPllZModel};

/// Paper §5 / Fig. 6: HTM closed-loop prediction vs time-marching
/// simulation, "within 2 %", across ratios and frequencies.
#[test]
fn htm_vs_simulation_agreement() {
    for &ratio in &[0.1, 0.2] {
        let design = PllDesign::reference_design(ratio).unwrap();
        let model = PllModel::builder(design.clone()).build().unwrap();
        let params = SimParams::from_design(&design);
        let cfg = SimConfig::default();
        for &w in &[0.4, 1.0, 2.0] {
            let m = measure_h00(&params, &cfg, w, &MeasureOptions::default());
            let predict = model.h00(m.omega);
            let err = (m.h - predict).abs() / predict.abs();
            assert!(
                err < 0.03,
                "ratio {ratio}, w {w}: sim {h} vs htm {predict} (err {err:.4})",
                h = m.h
            );
        }
    }
}

/// Fig. 6 qualitative shape: as ω_UG/ω₀ grows, the effective bandwidth
/// shifts right and passband-edge peaking worsens.
#[test]
fn fig6_shape_bandwidth_and_peaking() {
    // Peaking is flat (slightly dipping) for very slow loops and blows
    // up approaching the sampling stability limit — the paper's Fig.-6
    // claim concerns the fast-loop regime, so start the sweep at 0.1.
    let ratios = [0.1, 0.2, 0.25];
    let reports: Vec<_> = ratios
        .iter()
        .map(|&r| {
            let m = PllModel::builder(PllDesign::reference_design(r).unwrap())
                .build()
                .unwrap();
            analyze(&m).unwrap()
        })
        .collect();
    // "The effective bandwidth shifts to the right": every fast loop's
    // −3 dB point sits well above the LTI prediction (which is
    // ratio-independent for this fixed shape). The crossing itself is
    // not monotone point-to-point because the band-edge notch moves;
    // the monotone quantity is ω_UG,eff, asserted in the Fig.-7 test.
    let lti_model = PllModel::builder(PllDesign::reference_design(0.01).unwrap())
        .build()
        .unwrap();
    let bw_lti = htmpll::lti::bandwidth_3db(|w| lti_model.h00_lti(w), 1e-4, 1e-4, 100.0)
        .expect("LTI bandwidth");
    for (r, rep) in ratios.iter().zip(&reports) {
        let bw = rep.bandwidth_3db.expect("bandwidth");
        assert!(
            bw > 1.1 * bw_lti,
            "ratio {r}: bandwidth {bw} not right-shifted vs LTI {bw_lti}"
        );
    }
    // "Peaking at the passband's edge becomes worse."
    for pair in reports.windows(2) {
        assert!(
            pair[1].peaking_db > pair[0].peaking_db,
            "peaking must worsen: {} then {}",
            pair[0].peaking_db,
            pair[1].peaking_db
        );
    }
}

/// Fig. 7 shape: ω_UG,eff/ω_UG ≥ 1 and grows; the phase margin of λ
/// degrades rapidly while the LTI line stays flat.
#[test]
fn fig7_shape_effective_margins() {
    let ratios = [0.05, 0.1, 0.15, 0.2, 0.25];
    let reports: Vec<_> = ratios
        .iter()
        .map(|&r| {
            let m = PllModel::builder(PllDesign::reference_design(r).unwrap())
                .build()
                .unwrap();
            analyze(&m).unwrap()
        })
        .collect();
    for (r, rep) in ratios.iter().zip(&reports) {
        assert!(
            rep.omega_ug_eff >= 0.999 * rep.omega_ug_lti,
            "ratio {r}: eff crossover below LTI"
        );
        assert!((rep.phase_margin_lti_deg - reports[0].phase_margin_lti_deg).abs() < 1e-6);
    }
    for pair in reports.windows(2) {
        assert!(pair[1].phase_margin_eff_deg < pair[0].phase_margin_eff_deg);
        assert!(
            pair[1].omega_ug_eff / pair[1].omega_ug_lti
                >= pair[0].omega_ug_eff / pair[0].omega_ug_lti - 1e-9
        );
    }
    // The paper's calibration point: around ω_UG/ω₀ = 0.1 the margin is
    // already visibly (≳5 %) worse than the LTI prediction.
    let at_01 = &reports[1];
    assert!(
        at_01.phase_margin_degradation_rel() > 0.05,
        "degradation at 0.1: {}",
        at_01.phase_margin_degradation_rel()
    );
}

/// The HTM strip-Nyquist verdict and the Hein–Scott z-domain Jury
/// verdict describe the same sampled system: their stability boundaries
/// must coincide.
#[test]
fn htm_and_zdomain_stability_boundaries_agree() {
    let z_limit = reference_design_stability_limit(0.05, 0.6, 1e-3);
    // HTM verdicts straddle the z-domain boundary.
    let below = analyze(
        &PllModel::builder(PllDesign::reference_design(z_limit - 0.01).unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    let above = analyze(
        &PllModel::builder(PllDesign::reference_design(z_limit + 0.01).unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    assert!(
        below.nyquist_stable,
        "HTM should agree stable below {z_limit}"
    );
    assert!(
        !above.nyquist_stable,
        "HTM should agree unstable above {z_limit}"
    );
}

/// The z-domain closed-loop response at the sampling instants agrees
/// with the HTM baseband response at low frequencies (both models track
/// DC perfectly and roll off together in-band).
#[test]
fn zdomain_and_htm_responses_agree_in_band() {
    let design = PllDesign::reference_design(0.1).unwrap();
    let model = PllModel::builder(design.clone()).build().unwrap();
    let zm = CpPllZModel::from_design(&design).unwrap();
    for &w in &[0.01, 0.05, 0.2] {
        let h_htm = model.h00(w);
        let h_z = zm.h_sampled(w).unwrap();
        assert!(
            (h_htm - h_z).abs() < 0.05 * h_htm.abs(),
            "w={w}: htm {h_htm} vs z {h_z}"
        );
    }
}

/// LTI limit: for a very slow loop every model in the workspace
/// collapses to the textbook answer.
#[test]
fn all_models_collapse_in_the_slow_loop_limit() {
    let design = PllDesign::reference_design(0.01).unwrap();
    let model = PllModel::builder(design.clone()).build().unwrap();
    let zm = CpPllZModel::from_design(&design).unwrap();
    for &w in &[0.1, 0.5, 1.0] {
        let lti = model.h00_lti(w);
        let htm = model.h00(w);
        let z = zm.h_sampled(w).unwrap();
        assert!(
            (htm - lti).abs() < 0.03 * lti.abs(),
            "w={w}: {htm} vs {lti}"
        );
        assert!((z - lti).abs() < 0.05 * lti.abs(), "w={w}: {z} vs {lti}");
    }
}

/// The rank-one (Sherman–Morrison) closed form and the dense LU path
/// agree on the full closed-loop HTM, for both time-invariant and
/// time-varying VCOs — paper eq. 31–34 against eq. 28.
#[test]
fn closed_forms_match_dense_inversion() {
    let design = PllDesign::reference_design(0.2).unwrap();
    let v0 = design.v0();
    let models = [
        PllModel::builder(design.clone()).build().unwrap(),
        PllModel::builder(design)
            .vco_isf(vec![
                Complex::new(0.3 * v0, 0.1 * v0),
                Complex::from_re(v0),
                Complex::new(0.3 * v0, -0.1 * v0),
            ])
            .build()
            .unwrap(),
    ];
    let t = Truncation::new(7);
    for model in &models {
        for &(re, im) in &[(0.0, 0.35), (0.01, 1.2)] {
            let s = Complex::new(re, im);
            let fast = model.closed_loop_htm(s, t);
            let dense = model.closed_loop_htm_dense(s, t).unwrap();
            assert!(fast.as_matrix().max_diff(dense.as_matrix()) < 1e-10);
        }
    }
}

/// Truncation convergence: the HTM-element estimate of H₀,₀ approaches
/// the exact lattice-sum value as the truncation order grows.
#[test]
fn truncation_convergence_to_exact_lambda() {
    let model = PllModel::builder(PllDesign::reference_design(0.15).unwrap())
        .build()
        .unwrap();
    let w = 0.7;
    let exact = model.h00(w);
    let mut last_err = f64::INFINITY;
    for k in [5usize, 20, 80] {
        let htm = model.closed_loop_htm(Complex::from_im(w), Truncation::new(k));
        let err = (htm.band(0, 0) - exact).abs();
        assert!(
            err < last_err + 1e-12,
            "K={k}: err {err} vs previous {last_err}"
        );
        last_err = err;
    }
    assert!(last_err < 5e-3 * exact.abs());
}

/// Third-order loop filter end to end: the HTM prediction built from a
/// generic filter transfer function must match the behavioral simulator
/// (which integrates the same filter in state-space form).
#[test]
fn third_order_filter_htm_vs_simulation() {
    use htmpll::core::LoopFilter;
    use htmpll::lti::ChargePumpFilter3;

    // Third-order filter with the same zero/pole backbone as the
    // reference design, plus a smoothing section well above crossover.
    let base = htmpll::lti::ChargePumpFilter2::from_pole_zero(0.25, 4.0, 1.0).unwrap();
    // Light smoothing section: 2 % capacitive loading, pole at 50 rad/s
    // (50× the crossover) so the loop stays essentially the reference
    // design.
    let filt = ChargePumpFilter3::new(base.r(), base.c1(), base.c2(), 1.0, 0.02).unwrap();
    let ratio = 0.1;
    let omega0 = 1.0 / ratio;
    let design = PllDesign::builder()
        .f_ref(omega0 / (2.0 * std::f64::consts::PI))
        .icp(PllDesign::reference_design(ratio).unwrap().icp())
        .kvco(1.0)
        .divider(1.0)
        .filter(LoopFilter::ThirdOrder(filt))
        .build()
        .unwrap();
    let model = PllModel::builder(design.clone()).build().unwrap();
    let params = SimParams::from_design(&design);
    for &w in &[0.4, 1.1] {
        let m = measure_h00(
            &params,
            &SimConfig::default(),
            w,
            &MeasureOptions::default(),
        );
        let predict = model.h00(m.omega);
        let err = (m.h - predict).abs() / predict.abs();
        assert!(
            err < 0.03,
            "w={w}: sim {} vs htm {predict} (err {err:.4})",
            m.h
        );
    }
}

/// Exact delay HTM block vs the Padé-rationalized model: the dense
/// closed loop built with `DelayHtm` must agree with the rank-one
/// closed form of `PllModel::with_loop_delay`.
#[test]
fn delay_block_dense_path_matches_pade_rank_one() {
    use htmpll::htm::{DelayHtm, HtmBlock, LtiHtm, SamplerHtm, VcoHtm};

    let design = PllDesign::reference_design(0.15).unwrap();
    let w0 = design.omega_ref();
    let tau = 0.2 / design.f_ref(); // 0.2·T of loop latency
    let pade_model = PllModel::builder(design.clone())
        .loop_delay(tau, 6)
        .build()
        .unwrap();

    let pfd = SamplerHtm::new(w0);
    let lf = LtiHtm::new(design.loop_filter_tf(), w0);
    let vco = VcoHtm::time_invariant(design.v0(), w0);
    let delay = DelayHtm::new(tau, w0);
    let err_at = |k: usize, w: f64| {
        let t = Truncation::new(k);
        let s = Complex::from_im(w);
        let g = &(&(&vco.htm(s, t) * &delay.htm(s, t)) * &lf.htm(s, t)) * &pfd.htm(s, t);
        let dense = g.closed_loop().unwrap();
        let fast = pade_model.closed_loop_htm(s, t);
        dense.as_matrix().max_diff(fast.as_matrix())
    };
    for &w in &[0.3, 1.0] {
        // The two paths agree down to the Padé-vs-exact-delay floor in
        // the high aliases (|u|τ past the approximant order), ~1e−3 for
        // order 6 at this τ; λ-truncation differences sit below that.
        for k in [10usize, 40] {
            let err = err_at(k, w);
            assert!(err < 5e-3, "w={w}, K={k}: dense-vs-pade err {err}");
        }
    }
}

/// Noise folding end to end: drive the simulator with white reference
/// edge jitter and compare the measured output phase PSD against the
/// HTM-shaped prediction `|H₀,₀(jω)|²·S_in` across the loop band.
#[test]
fn jitter_psd_matches_htm_shaping() {
    use htmpll::sim::PllSim;
    use htmpll::spectral::{welch, Window};

    let design = PllDesign::reference_design(0.15).unwrap();
    let model = PllModel::builder(design.clone()).build().unwrap();
    let t_ref = 1.0 / design.f_ref();
    let jitter_rms = 1e-4 * t_ref;
    let cfg = SimConfig {
        ref_jitter_rms: jitter_rms,
        ..SimConfig::default()
    };
    let mut sim = PllSim::new(SimParams::from_design(&design), cfg);
    let _ = sim.run(300.0 * t_ref, &|_| 0.0);
    let trace = sim.run(6000.0 * t_ref, &|_| 0.0);
    let psd = welch(&trace.theta_vco, 1.0 / trace.dt, 4096, Window::Hann).expect("psd");

    // White edge jitter sampled once per T: one-sided input PSD 2σ²T.
    let s_in = 2.0 * jitter_rms * jitter_rms * t_ref;
    let band = |f_lo: f64, f_hi: f64| -> (f64, f64) {
        let mut meas = 0.0;
        let mut pred = 0.0;
        let mut n = 0usize;
        for &(f, p) in &psd {
            if f >= f_lo && f <= f_hi {
                meas += p;
                pred += model.h00(2.0 * std::f64::consts::PI * f).norm_sqr() * s_in;
                n += 1;
            }
        }
        (meas / n as f64, pred / n as f64)
    };
    // Three bands spanning in-band, the peaking region, and the rolloff.
    for (lo, hi) in [(0.01, 0.05), (0.12, 0.25), (0.3, 0.45)] {
        let (meas, pred) = band(lo, hi);
        let ratio = meas / pred;
        assert!(
            (0.6..1.7).contains(&ratio),
            "band {lo}-{hi} Hz: measured {meas:.3e} vs predicted {pred:.3e} (×{ratio:.2})"
        );
    }
}

/// Fractional-N: a MASH-driven divider locks the loop to (N+frac)·f_ref
/// with the sigma-delta quantization noise shaped up in frequency and
/// cut by the closed loop.
#[test]
fn fractional_n_locks_and_shapes_noise() {
    use htmpll::sim::{Mash111, PllSim};
    use htmpll::spectral::{welch, Window};

    let base = PllDesign::reference_design(0.1).unwrap();
    let n_int = 256.0;
    let design = PllDesign::builder()
        .f_ref(base.f_ref())
        .icp(base.icp() * n_int)
        .kvco(base.kvco())
        .divider(n_int)
        .filter(base.filter().clone())
        .build()
        .unwrap();
    let mut mash = Mash111::new(0.37, 1 << 20, 0x9e37).unwrap();
    let mut params = SimParams::from_design(&design);
    params.div_sequence = Some(mash.sequence(1 << 14));
    params.f_center = (n_int + mash.realized_fraction()) * design.f_ref();

    let t_ref = params.t_ref;
    let mut sim = PllSim::new(params.clone(), SimConfig::default());
    let _ = sim.run(400.0 * t_ref, &|_| 0.0);
    let trace = sim.run(3000.0 * t_ref, &|_| 0.0);

    // Exact fractional lock: θ (referenced to integer N) ramps at frac/N.
    let n_s = trace.theta_vco.len();
    let drift = (trace.theta_vco[n_s - 1] - trace.theta_vco[0]) / (n_s as f64 * trace.dt);
    let expect = mash.realized_fraction() / n_int;
    assert!(
        (drift - expect).abs() < 0.05 * expect,
        "{drift} vs {expect}"
    );

    // Detrended PSD shows the shaped-noise rise: ≥ factor 100 from the
    // 0.02 band to the 0.1 band (ideal third-order shaping: 625).
    let centered = trace.detrended_theta();
    let psd = welch(&centered, 1.0 / trace.dt, 2048, Window::Hann).expect("psd");
    let f_ref = 1.0 / t_ref;
    let band = |lo: f64, hi: f64| {
        let sel: Vec<f64> = psd
            .iter()
            .filter(|(f, _)| *f > lo * f_ref && *f < hi * f_ref)
            .map(|&(_, p)| p)
            .collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    let low = band(0.015, 0.025);
    let high = band(0.08, 0.12);
    assert!(
        high / low > 100.0,
        "shaped-noise rise too weak: {low:.3e} → {high:.3e} ({}×)",
        high / low
    );
}

/// The analytic leakage-spur closed form `θ̃_k = −A(jkω₀)·θ_static`
/// (core::spurs) against the measured spur line in the simulated phase
/// PSD — agreement to ~1 %.
#[test]
fn leakage_spur_prediction_matches_sim() {
    use htmpll::core::LeakageSpurs;
    use htmpll::sim::PllSim;
    use htmpll::spectral::{band_power, periodogram, Window};

    for &ratio in &[0.1, 0.2] {
        let d = PllDesign::reference_design(ratio).unwrap();
        let model = PllModel::builder(d.clone()).build().unwrap();
        let mut params = SimParams::from_design(&d);
        params.leakage = 1e-3 * params.i_cp;
        let t_ref = params.t_ref;
        let mut sim = PllSim::new(params.clone(), SimConfig::default());
        let _ = sim.run(500.0 * t_ref, &|_| 0.0);
        let trace = sim.run(2048.0 * t_ref, &|_| 0.0);
        let mean = trace.theta_vco.iter().sum::<f64>() / trace.theta_vco.len() as f64;
        let centered: Vec<f64> = trace.theta_vco.iter().map(|v| v - mean).collect();
        let psd = periodogram(&centered, 1.0 / trace.dt, Window::Hann).expect("psd");
        let f_ref = 1.0 / t_ref;
        let measured = band_power(&psd, 0.97 * f_ref, 1.03 * f_ref);
        let predicted = LeakageSpurs::new(&model, params.leakage).line_power(1);
        let err = (measured / predicted - 1.0).abs();
        assert!(
            err < 0.05,
            "ratio {ratio}: sim {measured:.4e} vs predicted {predicted:.4e} (err {err:.3})"
        );
    }
}

/// Generalized-Nyquist reduction: the PLL open-loop HTM's eigenvalue
/// spectrum contains exactly one nonzero locus, and it equals the
/// (truncated) effective gain λ(jω) — the matrix-level fact behind the
/// paper's scalar closed forms.
#[test]
fn open_loop_htm_eigenvalues_reduce_to_lambda() {
    use htmpll::htm::{HtmBlock, LtiHtm, SamplerHtm, VcoHtm};

    let design = PllDesign::reference_design(0.2).unwrap();
    let model = PllModel::builder(design.clone()).build().unwrap();
    let w0 = design.omega_ref();
    let t = Truncation::new(8);
    let pfd = SamplerHtm::new(w0);
    let lf = LtiHtm::new(design.loop_filter_tf(), w0);
    let vco = VcoHtm::time_invariant(design.v0(), w0);
    for &w in &[0.3, 1.0, 2.0] {
        let s = Complex::from_im(w);
        let g = &(&vco.htm(s, t) * &lf.htm(s, t)) * &pfd.htm(s, t);
        let evs = g.eigenvalues().unwrap();
        let lambda_truncated: Complex = model.v_column(s, t).iter().copied().sum();
        let nonzero: Vec<_> = evs
            .iter()
            .filter(|e| e.abs() > 1e-8 * (1.0 + lambda_truncated.abs()))
            .collect();
        assert_eq!(nonzero.len(), 1, "w={w}: {evs:?}");
        assert!(
            (*nonzero[0] - lambda_truncated).abs() < 1e-8 * (1.0 + lambda_truncated.abs()),
            "w={w}: eig {} vs λ {lambda_truncated}",
            nonzero[0]
        );
    }
}

/// VCO-noise validation: drive the simulator's oscillator with white FM
/// noise (Brownian phase) and compare the closed-loop output phase PSD
/// against the noise model's VCO path (high-pass `|1 − H₀,₀|²` shaping
/// plus folding).
#[test]
fn vco_noise_psd_matches_htm_shaping() {
    use htmpll::core::NoiseModel;
    use htmpll::sim::PllSim;
    use htmpll::spectral::{welch, Window};

    let design = PllDesign::reference_design(0.1).unwrap();
    let model = PllModel::builder(design.clone()).build().unwrap();
    let t_ref = 1.0 / design.f_ref();
    let s_ff = 1e-7; // one-sided white-FM PSD, Hz²/Hz
    let cfg = SimConfig {
        vco_fm_psd: s_ff,
        ..SimConfig::default()
    };
    let mut sim = PllSim::new(SimParams::from_design(&design), cfg);
    let _ = sim.run(300.0 * t_ref, &|_| 0.0);
    let trace = sim.run(6000.0 * t_ref, &|_| 0.0);
    let psd = welch(&trace.theta_vco, 1.0 / trace.dt, 4096, Window::Hann).expect("psd");

    // Free-running VCO phase in time units: Brownian of rate S/2
    // (cycles²/s) scaled by (T/N)² ⇒ S_θ(ω) = (T/N)²·S/ω².
    let n_div = design.divider();
    let vco_shape = move |w: f64| (t_ref / n_div).powi(2) * s_ff / (w * w).max(1e-12);
    let noise = NoiseModel::new(&model, 8);

    let band = |f_lo: f64, f_hi: f64| -> (f64, f64) {
        let mut meas = 0.0;
        let mut pred = 0.0;
        let mut n = 0usize;
        for &(f, p) in &psd {
            if f >= f_lo && f <= f_hi {
                meas += p;
                pred += noise.output_psd(2.0 * std::f64::consts::PI * f, &|_| 0.0, &vco_shape);
                n += 1;
            }
        }
        (meas / n as f64, pred / n as f64)
    };
    // In-band (loop suppresses), near crossover, and pass-through region.
    for (lo, hi) in [(0.02, 0.06), (0.12, 0.2), (0.3, 0.45)] {
        let (meas, pred) = band(lo, hi);
        let ratio = meas / pred;
        assert!(
            (0.6..1.7).contains(&ratio),
            "band {lo}-{hi} Hz: measured {meas:.3e} vs predicted {pred:.3e} (×{ratio:.2})"
        );
    }
}

/// Broadband measurement: one simulator run driven by a dense random
/// multisine recovers the entire `H₀,₀(jω)` curve at once via the H1
/// cross-spectral estimator, matching the HTM prediction wherever
/// coherence is high.
#[test]
fn broadband_tf_estimate_matches_htm() {
    use htmpll::sim::PllSim;
    use htmpll::spectral::tf_estimate;

    let design = PllDesign::reference_design(0.1).unwrap();
    let model = PllModel::builder(design.clone()).build().unwrap();
    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();
    let t_ref = params.t_ref;
    let dt = t_ref / cfg.samples_per_ref as f64;

    // Dense deterministic multisine on even bins of a 4096-sample block
    // (128 reference periods, so ω₀ sits at bin 128): all tones below
    // 0.45·ω₀ keeps their ±ω₀ band images OFF the tone set — otherwise
    // the images alias onto other tones and bias the estimate (genuine
    // LPTV physics, not an estimator artifact).
    let block = 4096usize;
    let tones: Vec<(f64, f64)> = (1..=28)
        .map(|i| {
            let k = 2 * i;
            let w = 2.0 * std::f64::consts::PI * k as f64 / (block as f64 * dt);
            let phase = (k as f64 * 2.399963).rem_euclid(2.0 * std::f64::consts::PI);
            (w, phase)
        })
        .filter(|(w, _)| *w < 0.45 * design.omega_ref())
        .collect();
    let amp = 1e-4 * t_ref / (tones.len() as f64).sqrt();
    let tones_cl = tones.clone();
    let modulation = move |t: f64| {
        tones_cl
            .iter()
            .map(|&(w, ph)| amp * (w * t + ph).sin())
            .sum::<f64>()
    };

    let mut sim = PllSim::new(params, cfg);
    let _ = sim.run(300.0 * t_ref, &modulation);
    let trace = sim.run((8 * block) as f64 * dt, &modulation);
    let stim: Vec<f64> = (0..trace.theta_vco.len())
        .map(|k| modulation(trace.t0 + k as f64 * trace.dt))
        .collect();
    let est = tf_estimate(&stim, &trace.theta_vco, 1.0 / trace.dt, block);

    // Evaluate only at the *exact* tone bins: neighbors of a tone are
    // coherent through window leakage but carry the neighbor's H.
    let mut checked = 0usize;
    for bin in &est {
        let w = 2.0 * std::f64::consts::PI * bin.frequency;
        let is_tone = tones.iter().any(|&(tw, _)| (tw - w).abs() < 1e-9 * tw);
        if !is_tone {
            continue;
        }
        assert!(
            bin.coherence > 0.99,
            "tone bin f={} incoherent",
            bin.frequency
        );
        let predict = model.h00(w);
        let err = (bin.h - predict).abs() / predict.abs();
        assert!(
            err < 0.05,
            "f={:.4}: est {} vs htm {predict} (err {err:.4})",
            bin.frequency,
            bin.h
        );
        checked += 1;
    }
    assert!(checked >= 20, "only {checked} tone bins evaluated");
}
